"""Tests for the aggregated public API surface."""

import pytest

import repro


class TestLazyExports:
    def test_version(self):
        assert repro.__version__

    def test_core_symbols_accessible(self):
        for name in ("Circuit", "GateType", "ProposedFlow", "FlowConfig",
                     "load_circuit", "run_table1", "TechParams",
                     "evaluate_scan_power", "generate_tests"):
            assert getattr(repro, name) is not None

    def test_dir_includes_api(self):
        names = dir(repro)
        assert "ProposedFlow" in names
        assert "parse_bench" in names

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.does_not_exist

    def test_quickstart_surface_works_together(self):
        """The README quickstart, in miniature."""
        circuit = repro.load_circuit("s27")
        result = repro.ProposedFlow(repro.FlowConfig(seed=1)).run(circuit)
        assert "s27" in result.summary()

    def test_all_listed_symbols_resolve(self):
        from repro import _api
        for name in _api.__all__:
            assert getattr(repro, name) is not None, name


class TestCampaignServiceFacade:
    """PR-7 public surface: campaigns, queue, service, runtime."""

    def test_campaign_symbols_accessible(self):
        for name in ("CampaignSpec", "CampaignJob", "CampaignResult",
                     "ResultCache", "load_spec", "run_campaign",
                     "WorkQueue", "run_worker", "ArtifactService",
                     "ServiceServer", "run_server"):
            assert getattr(repro, name) is not None, name

    def test_runtime_symbols_accessible(self):
        for name in ("RuntimeOptions", "session_defaults",
                     "set_session_defaults", "using"):
            assert getattr(repro, name) is not None, name

    def test_facade_quickstart_works_together(self):
        """The README service quickstart, in miniature (no sockets)."""
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            spec = repro.CampaignSpec(
                circuits=("s27",), name="facade",
                base={"observability_samples": 16, "ivc_trials": 2,
                      "ivc_noise_samples": 2})
            result = repro.run_campaign(spec, cache_dir=tmp)
            assert result.n_executed == 1
            service = repro.ArtifactService(repro.ResultCache(tmp))
            assert service.cache.get(
                result.records[0].cache_key) is not None

    def test_using_scopes_runtime_options(self):
        with repro.using(stream_budget=42):
            assert repro.session_defaults().stream_budget == 42
        assert repro.session_defaults().stream_budget is None
