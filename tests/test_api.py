"""Tests for the aggregated public API surface."""

import pytest

import repro


class TestLazyExports:
    def test_version(self):
        assert repro.__version__

    def test_core_symbols_accessible(self):
        for name in ("Circuit", "GateType", "ProposedFlow", "FlowConfig",
                     "load_circuit", "run_table1", "TechParams",
                     "evaluate_scan_power", "generate_tests"):
            assert getattr(repro, name) is not None

    def test_dir_includes_api(self):
        names = dir(repro)
        assert "ProposedFlow" in names
        assert "parse_bench" in names

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.does_not_exist

    def test_quickstart_surface_works_together(self):
        """The README quickstart, in miniature."""
        circuit = repro.load_circuit("s27")
        result = repro.ProposedFlow(repro.FlowConfig(seed=1)).run(circuit)
        assert "s27" in result.summary()

    def test_all_listed_symbols_resolve(self):
        from repro import _api
        for name in _api.__all__:
            assert getattr(repro, name) is not None, name
