"""Tests for FindControlledInputPattern (the paper's central algorithm)."""

import pytest

from repro.core.find_pattern import find_controlled_input_pattern
from repro.leakage.observability import monte_carlo_observability
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType, X
from repro.simulation.eval3 import simulate_comb3


def blockable_circuit() -> Circuit:
    """One transitioning flop, fully blockable through PI 'a'."""
    c = Circuit("blockable")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("q", GateType.DFF, ("d",))
    c.add_gate("g1", GateType.NAND, ("q", "a"))
    c.add_gate("g2", GateType.NOR, ("g1", "b"))
    c.add_gate("d", GateType.NOT, ("g2",))
    c.add_output("g2")
    c.validate()
    return c


def unblockable_circuit() -> Circuit:
    """The flop drives an XOR first: impossible to block there."""
    c = Circuit("unblockable")
    c.add_input("a")
    c.add_gate("q", GateType.DFF, ("d",))
    c.add_gate("x", GateType.XOR, ("q", "a"))
    c.add_gate("g", GateType.NAND, ("x", "a"))
    c.add_gate("d", GateType.NOT, ("g",))
    c.add_output("g")
    c.validate()
    return c


class TestValidation:
    def test_stray_lines_rejected(self, s27_mapped):
        with pytest.raises(ValueError, match="not combinational inputs"):
            find_controlled_input_pattern(
                s27_mapped, {"nonexistent"}, set())

    def test_overlap_rejected(self, s27_mapped):
        q = s27_mapped.dff_outputs[0]
        with pytest.raises(ValueError, match="cannot be transition"):
            find_controlled_input_pattern(s27_mapped, {q}, {q})


class TestBlocking:
    def test_blocks_at_first_gate(self):
        c = blockable_circuit()
        result = find_controlled_input_pattern(
            c, controlled={"a", "b"}, transition_sources={"q"})
        assert result.blocked_gates == ["g1"]
        assert result.assignment.get("a") == 0  # NAND controlling value
        assert result.tns == {"q"}
        assert not result.failed_gates

    def test_unblockable_transition_spreads_then_blocks(self):
        c = unblockable_circuit()
        result = find_controlled_input_pattern(
            c, controlled={"a"}, transition_sources={"q"})
        # The XOR propagates; blocking happens at the NAND via a=0.
        assert "x" in result.tns
        assert "g" in result.blocked_gates
        assert result.assignment == {"a": 0}

    def test_no_sources_no_work(self, s27_mapped):
        controlled = set(s27_mapped.inputs) | set(s27_mapped.dff_outputs)
        result = find_controlled_input_pattern(
            s27_mapped, controlled, transition_sources=set())
        assert result.assignment == {}
        assert result.blocked_gates == []
        assert result.tns == set()


class TestSoundness:
    """The central invariant: any line that ends up with a *binary*
    value in the result is genuinely constant during shift — i.e. its
    value does not depend on the transitioning pseudo-inputs."""

    @pytest.mark.parametrize("muxed_count", [0, 1, 2])
    def test_binary_lines_independent_of_sources(self, s27_mapped,
                                                 muxed_count):
        q_lines = s27_mapped.dff_outputs
        controlled = set(s27_mapped.inputs) | set(q_lines[:muxed_count])
        sources = set(q_lines[muxed_count:])
        result = find_controlled_input_pattern(
            s27_mapped, controlled, sources)

        # Re-simulate in 3-valued logic with sources X: every binary
        # line of the result must re-derive to the same binary value.
        check = simulate_comb3(s27_mapped, result.assignment)
        for line, value in result.values.items():
            if value != X:
                assert check[line] == value, line

    def test_assignment_within_controlled(self, s27_mapped):
        controlled = set(s27_mapped.inputs)
        sources = set(s27_mapped.dff_outputs)
        result = find_controlled_input_pattern(
            s27_mapped, controlled, sources)
        assert set(result.assignment) <= controlled

    def test_blocked_gate_outputs_are_constant(self, toy_mapped):
        controlled = set(toy_mapped.inputs)
        sources = set(toy_mapped.dff_outputs)
        result = find_controlled_input_pattern(
            toy_mapped, controlled, sources)
        for gate_out in result.blocked_gates:
            assert result.values[gate_out] != X, gate_out
            assert gate_out not in result.tns

    def test_failed_gate_outputs_transition(self, toy_mapped):
        controlled = set(toy_mapped.inputs)
        sources = set(toy_mapped.dff_outputs)
        result = find_controlled_input_pattern(
            toy_mapped, controlled, sources)
        for gate_out in result.failed_gates:
            assert gate_out in result.tns


class TestDirectiveEffect:
    def test_observability_changes_choices(self, s27_mapped, library):
        controlled = set(s27_mapped.inputs)
        sources = set(s27_mapped.dff_outputs)
        undirected = find_controlled_input_pattern(
            s27_mapped, controlled, sources, observability=None,
            library=library)
        obs = monte_carlo_observability(s27_mapped, 512, seed=0,
                                        library=library)
        directed = find_controlled_input_pattern(
            s27_mapped, controlled, sources, observability=obs,
            library=library)
        # Both fully handle the transition set on this circuit (no
        # failures); the directive may legitimately change which and how
        # many gates end up blocked.
        assert not directed.failed_gates
        assert not undirected.failed_gates
        assert directed.tns == sources
        assert undirected.tns == sources
        assert set(directed.assignment) <= controlled

    def test_deterministic(self, toy_mapped):
        controlled = set(toy_mapped.inputs)
        sources = set(toy_mapped.dff_outputs)
        a = find_controlled_input_pattern(toy_mapped, controlled, sources)
        b = find_controlled_input_pattern(toy_mapped, controlled, sources)
        assert a.assignment == b.assignment
        assert a.blocked_gates == b.blocked_gates
