"""Tests for the observability-directed justification engine."""

import itertools

import pytest

from repro.core.justify import Justifier
from repro.errors import JustificationError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType, X
from repro.simulation.eval2 import comb_input_lines, simulate_comb
from repro.simulation.eval3 import simulate_comb3


def fresh_state(circuit, controllable=None):
    values = {line: X for line in circuit.lines()}
    controllable = controllable if controllable is not None \
        else set(comb_input_lines(circuit))
    return values, controllable


class TestSupport:
    def test_support_computation(self, s27_mapped):
        values, controllable = fresh_state(s27_mapped)
        engine = Justifier(s27_mapped, values, controllable)
        for line in s27_mapped.topo_order():
            assert engine.has_support(line)

    def test_no_support_behind_uncontrollable(self):
        c = Circuit("iso")
        c.add_input("a")
        c.add_gate("q", GateType.DFF, ("d",))
        c.add_gate("iso", GateType.NOT, ("q",))
        c.add_gate("d", GateType.NAND, ("a", "iso"))
        c.add_output("d")
        c.validate()
        values, _ = fresh_state(c)
        engine = Justifier(c, values, {"a"})  # q NOT controllable
        assert not engine.has_support("iso")
        assert engine.has_support("d")


class TestJustifySimple:
    def test_direct_input(self, s27_mapped):
        values, controllable = fresh_state(s27_mapped)
        engine = Justifier(s27_mapped, values, controllable)
        result = engine.justify("G0", 1)
        assert result.success
        assert values["G0"] == 1

    def test_already_satisfied(self, s27_mapped):
        values, controllable = fresh_state(s27_mapped)
        values["G0"] = 1
        engine = Justifier(s27_mapped, values, controllable)
        result = engine.justify("G0", 1)
        assert result.success
        assert result.decisions == {}

    def test_contradiction_fails_fast(self, s27_mapped):
        values, controllable = fresh_state(s27_mapped)
        values["G0"] = 0
        engine = Justifier(s27_mapped, values, controllable)
        assert not engine.justify("G0", 1).success

    def test_bad_target_value(self, s27_mapped):
        values, controllable = fresh_state(s27_mapped)
        engine = Justifier(s27_mapped, values, controllable)
        with pytest.raises(JustificationError):
            engine.justify("G0", X)


class TestJustifyInternal:
    @pytest.mark.parametrize("target", [0, 1])
    def test_internal_objectives_verified_by_simulation(
            self, s27_mapped, target):
        """Whatever justify claims, a full 2-valued simulation with the
        decided inputs (arbitrary values elsewhere) must agree."""
        for line in s27_mapped.topo_order():
            values, controllable = fresh_state(s27_mapped)
            engine = Justifier(s27_mapped, values, controllable,
                               max_backtracks=100)
            result = engine.justify(line, target)
            if not result.success:
                continue
            free = [i for i in comb_input_lines(s27_mapped)
                    if values[i] == X]
            for combo in itertools.product((0, 1),
                                           repeat=min(len(free), 4)):
                full = {i: values[i] for i in comb_input_lines(s27_mapped)
                        if values[i] != X}
                for i, bit in zip(free, combo):
                    full[i] = bit
                for i in free[len(combo):]:
                    full[i] = 0
                sim = simulate_comb(s27_mapped, full)
                assert sim[line] == target, line

    def test_failure_restores_state(self):
        """On failure the three-valued state must be exactly restored."""
        c = Circuit("conflict")
        c.add_input("a")
        c.add_gate("n", GateType.NOT, ("a",))
        c.add_gate("y", GateType.AND, ("a", "n"))  # y == 0 always
        c.add_output("y")
        c.validate()
        values, controllable = fresh_state(c)
        engine = Justifier(c, values, controllable)
        snapshot = dict(values)
        result = engine.justify("y", 1)
        assert not result.success
        assert values == snapshot

    def test_success_state_consistent_with_implication(self, s27_mapped):
        values, controllable = fresh_state(s27_mapped)
        engine = Justifier(s27_mapped, values, controllable)
        target_line = s27_mapped.topo_order()[-1]
        result = engine.justify(target_line, 0)
        if result.success:
            assigned = {line: v for line, v in values.items()
                        if line in controllable and v != X}
            expected = simulate_comb3(s27_mapped, assigned)
            assert values == expected

    def test_respects_controllable_set(self):
        """Objectives depending only on uncontrollable sources fail."""
        c = Circuit("unc")
        c.add_input("a")
        c.add_gate("q", GateType.DFF, ("d",))
        c.add_gate("m", GateType.NOT, ("q",))
        c.add_gate("d", GateType.NAND, ("a", "m"))
        c.add_output("d")
        c.validate()
        values, _ = fresh_state(c)
        engine = Justifier(c, values, {"a"})
        assert not engine.justify("m", 1).success
        # but a NAND-0 objective via the controllable side works:
        assert engine.justify("d", 1).success


class TestObservabilityDirective:
    def _two_path_circuit(self):
        """Both inputs can justify y=1 through a NAND-0; the directive
        must pick the one the observability table prefers."""
        c = Circuit("choice")
        c.add_input("cheap")
        c.add_input("costly")
        c.add_gate("y", GateType.NAND, ("cheap", "costly"))
        c.add_output("y")
        c.validate()
        return c

    def test_zero_objective_prefers_max_observability(self):
        c = self._two_path_circuit()
        obs = {"cheap": +50.0, "costly": -50.0}
        values, controllable = fresh_state(c)
        engine = Justifier(c, values, controllable, observability=obs)
        # Setting y=1 needs one input at 0; directive: max obs first.
        result = engine.justify("y", 1)
        assert result.success
        assert values["cheap"] == 0
        assert values["costly"] == X

    def test_one_objective_prefers_min_observability(self):
        c = Circuit("or_choice")
        c.add_input("p")
        c.add_input("q")
        c.add_gate("y", GateType.NOR, ("p", "q"))
        c.add_output("y")
        c.validate()
        obs = {"p": +10.0, "q": -10.0}
        values, controllable = fresh_state(c)
        engine = Justifier(c, values, controllable, observability=obs)
        # y=0 needs one NOR input at 1 (controlling): min obs first -> q.
        result = engine.justify("y", 0)
        assert result.success
        assert values["q"] == 1
        assert values["p"] == X

    def test_no_directive_uses_structural_order(self):
        c = self._two_path_circuit()
        values, controllable = fresh_state(c)
        engine = Justifier(c, values, controllable, observability=None)
        result = engine.justify("y", 1)
        assert result.success
        # structural order: (level, name): "cheap" < "costly"
        assert values["cheap"] == 0
