"""Tests for the AddMUX procedure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchgen.generator import generate_from_stats
from repro.benchgen.iscas89 import Iscas89Stats
from repro.core.addmux import add_mux
from repro.errors import ScanError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.scan.mux import MuxPlan, insert_muxes
from repro.techmap.mapper import technology_map
from repro.timing.delay import LibraryDelay
from repro.timing.sta import run_sta


class TestAddMux:
    def test_requires_flops(self, c17, library):
        with pytest.raises(ScanError):
            add_mux(c17, library)

    def test_unknown_method(self, s27_mapped, library):
        with pytest.raises(ValueError):
            add_mux(s27_mapped, library, method="quantum")

    def test_partitions_pseudo_inputs(self, s27_mapped, library):
        result = add_mux(s27_mapped, library)
        all_q = set(s27_mapped.dff_outputs)
        assert set(result.muxable) | set(result.rejected) == all_q
        assert not set(result.muxable) & set(result.rejected)

    def test_records_decision_inputs(self, s27_mapped, library):
        result = add_mux(s27_mapped, library)
        for q in s27_mapped.dff_outputs:
            assert q in result.slack_ps
            assert result.mux_delay_ps[q] > 0

    def test_coverage_metric(self, s27_mapped, library):
        result = add_mux(s27_mapped, library)
        assert result.coverage == pytest.approx(
            len(result.muxable) / 3)

    def test_margin_reduces_coverage(self, toy_mapped, library):
        loose = add_mux(toy_mapped, library, margin_ps=0.0)
        tight = add_mux(toy_mapped, library, margin_ps=1e6)
        assert len(tight.muxable) <= len(loose.muxable)
        # An absurd margin rejects every pseudo-input with comb fanout.
        assert not tight.muxable

    def test_plan_filters_to_muxable(self, s27_mapped, library):
        result = add_mux(s27_mapped, library)
        ties = {q: 0 for q in s27_mapped.dff_outputs}
        plan = result.plan(ties)
        assert set(plan.tie_values) == set(result.muxable)


class TestTimingNeutrality:
    def test_accepted_muxes_leave_critical_delay_unchanged(
            self, toy_mapped, library):
        """The paper's core claim: inserting every accepted MUX at once
        keeps the critical path delay identical."""
        result = add_mux(toy_mapped, library)
        assert result.muxable  # the toy circuit must have slack somewhere
        baseline = run_sta(
            toy_mapped, LibraryDelay(toy_mapped, library)).critical_delay
        assert baseline == pytest.approx(result.baseline_delay_ps)
        plan = MuxPlan(tie_values={q: 0 for q in result.muxable})
        rewritten = insert_muxes(toy_mapped, plan)
        after = run_sta(
            rewritten, LibraryDelay(rewritten, library)).critical_delay
        assert after == pytest.approx(baseline)

    def test_rejected_critical_input_would_slow_circuit(self, library):
        """A pseudo-input on the critical path must be rejected, and
        physically inserting a MUX there must lengthen the clock."""
        c = Circuit("critical_q")
        c.add_input("a")
        c.add_gate("q0", GateType.DFF, ("d0",))
        c.add_gate("q1", GateType.DFF, ("d1",))
        # q0 feeds a deep chain (critical); q1 a single gate (slack).
        prev = "q0"
        for i in range(6):
            c.add_gate(f"c{i}", GateType.NOT, (prev,))
            prev = f"c{i}"
        c.add_gate("d0", GateType.NAND, (prev, "a"))
        c.add_gate("d1", GateType.NOR, ("q1", "a"))
        c.add_output(prev)
        c.validate()

        result = add_mux(c, library)
        assert "q0" in result.rejected
        assert result.rejected["q0"] == "critical"
        assert "q1" in result.muxable

        slowed = insert_muxes(c, MuxPlan(tie_values={"q0": 0}))
        after = run_sta(
            slowed, LibraryDelay(slowed, library)).critical_delay
        assert after > result.baseline_delay_ps

    def test_no_comb_fanout_excluded(self, library):
        c = Circuit("qpo")
        c.add_input("a")
        c.add_gate("q0", GateType.DFF, ("d0",))
        c.add_gate("d0", GateType.NOT, ("a",))
        c.add_output("q0")  # Q drives only a primary output
        result = add_mux(c, library)
        assert result.rejected.get("q0") == "no_comb_fanout"


class TestSlackReinsertEquivalence:
    @pytest.mark.parametrize("fixture_name",
                             ["s27_mapped", "toy_mapped"])
    def test_methods_agree_on_fixtures(self, fixture_name, request,
                                       library):
        circuit = request.getfixturevalue(fixture_name)
        fast = add_mux(circuit, library, method="slack")
        literal = add_mux(circuit, library, method="reinsert")
        assert set(fast.muxable) == set(literal.muxable)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_methods_agree_on_random_circuits(self, seed):
        from repro.cells.library import default_library
        library = default_library()
        stats = Iscas89Stats("rnd", 4, 3, 5, 36)
        circuit = technology_map(generate_from_stats(stats, seed))
        fast = add_mux(circuit, library, method="slack")
        literal = add_mux(circuit, library, method="reinsert")
        assert set(fast.muxable) == set(literal.muxable)
