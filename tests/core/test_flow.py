"""Tests for the end-to-end proposed flow."""

import pytest

from repro.core.config import FlowConfig
from repro.core.flow import METHODS, ProposedFlow
from repro.netlist import builders
from repro.netlist.gates import X


@pytest.fixture(scope="module")
def s27_result():
    """One shared flow run on s27 (module-scoped: the flow is the
    expensive object under test)."""
    return ProposedFlow(FlowConfig(seed=1)).run(builders.s27())


class TestFlowArtifacts:
    def test_all_methods_reported(self, s27_result):
        assert set(s27_result.reports) == set(METHODS)
        assert set(s27_result.policies) == set(METHODS)

    def test_circuit_is_mapped(self, s27_result):
        from repro.techmap.mapper import is_mapped
        assert is_mapped(s27_result.circuit)

    def test_control_values_cover_all_controlled(self, s27_result):
        controlled = set(s27_result.circuit.inputs) | \
            set(s27_result.addmux.muxable)
        assert set(s27_result.control_values) == controlled

    def test_mux_plan_matches_addmux(self, s27_result):
        assert set(s27_result.mux_plan.tie_values) == \
            set(s27_result.addmux.muxable)

    def test_same_test_set_for_all_methods(self, s27_result):
        counts = {r.n_vectors for r in s27_result.reports.values()}
        assert len(counts) == 1
        cycles = {r.n_cycles for r in s27_result.reports.values()}
        assert len(cycles) == 1

    def test_proposed_policy_consistency(self, s27_result):
        policy = s27_result.policies["proposed"]
        assert policy.mux_ties == dict(s27_result.mux_plan.tie_values)
        for pi in s27_result.circuit.inputs:
            assert policy.pi_values[pi] == s27_result.control_values[pi]


class TestFlowQuality:
    def test_proposed_beats_traditional_on_s27(self, s27_result):
        imp = s27_result.improvements()
        dyn, stat = imp["vs_traditional"]
        assert dyn > 0
        assert stat > 0

    def test_proposed_beats_or_ties_input_control_static(self,
                                                         s27_result):
        _dyn, stat = s27_result.improvements()["vs_input_control"]
        assert stat > -1.0  # static should essentially never get worse

    def test_summary_text(self, s27_result):
        text = s27_result.summary()
        assert "s27" in text
        assert "improvement vs traditional" in text


class TestFlowOptions:
    def test_reorder_disabled(self):
        config = FlowConfig(seed=1, reorder_inputs=False)
        result = ProposedFlow(config).run(builders.s27())
        assert result.reorder is None

    def test_directive_disabled(self):
        config = FlowConfig(seed=1, use_observability_directive=False)
        result = ProposedFlow(config).run(builders.s27())
        assert set(result.reports) == set(METHODS)

    def test_deterministic_across_runs(self):
        a = ProposedFlow(FlowConfig(seed=2)).run(builders.s27())
        b = ProposedFlow(FlowConfig(seed=2)).run(builders.s27())
        assert a.control_values == b.control_values
        assert a.reports["proposed"] == b.reports["proposed"]

    def test_seed_sensitivity(self):
        a = ProposedFlow(FlowConfig(seed=2)).run(builders.s27())
        b = ProposedFlow(FlowConfig(seed=3)).run(builders.s27())
        # Different ATPG vectors at minimum.
        assert a.reports["traditional"] != b.reports["traditional"]


class TestShiftModeInvariant:
    def test_blocked_lines_do_not_toggle_during_shift(self, s27_result):
        """Lines the pattern search fixed to binary values must show
        zero transitions during pure shifting (the soundness contract
        between find_pattern and the power evaluator)."""
        from repro.power.scanpower import evaluate_scan_power
        design = s27_result.design
        report = evaluate_scan_power(
            design, s27_result.test_set.vectors,
            s27_result.policies["proposed"], include_capture=False)
        # Rebuild per-line transition counts with capture excluded: any
        # line with a binary settled value must be silent.
        from repro.power.scanpower import _episode_waveforms
        from repro.simulation.cyclesim import simulate_cycles
        waveforms, n = _episode_waveforms(
            design, s27_result.test_set.vectors,
            s27_result.policies["proposed"], False, None)
        sim = simulate_cycles(design.circuit, waveforms, n,
                              collect_leakage=False)
        for line, value in s27_result.pattern.values.items():
            if value != X:
                assert sim.transitions.get(line, 0) == 0, line
