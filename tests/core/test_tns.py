"""Tests for TNS/TGS transition bookkeeping."""

import pytest

from repro.core.tns import update_tns_tgs
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType, X


def blocking_chain() -> Circuit:
    """q -> NAND(q, a) -> NOT -> NOR(., b) -> PO."""
    c = Circuit("blocking")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("q", GateType.DFF, ("d",))
    c.add_gate("g1", GateType.NAND, ("q", "a"))
    c.add_gate("g2", GateType.NOT, ("g1",))
    c.add_gate("g3", GateType.NOR, ("g2", "b"))
    c.add_gate("d", GateType.NOT, ("g3",))
    c.add_output("g3")
    c.validate()
    return c


class TestUpdateTnsTgs:
    def test_unblocked_candidate(self):
        c = blocking_chain()
        values = {line: X for line in c.lines()}
        analysis = update_tns_tgs(c, values, {"q"})
        assert analysis.tns == {"q"}
        assert "g1" in analysis.tgs
        assert analysis.tgs["g1"] == ["q"]

    def test_controlling_side_input_blocks(self):
        c = blocking_chain()
        values = {line: X for line in c.lines()}
        values["a"] = 0  # controlling for NAND
        analysis = update_tns_tgs(c, values, {"q"})
        assert analysis.tns == {"q"}
        assert "g1" in analysis.blocked_at
        assert "g1" not in analysis.tgs

    def test_non_controlling_side_propagates(self):
        c = blocking_chain()
        values = {line: X for line in c.lines()}
        values["a"] = 1  # non-controlling: transition passes g1
        analysis = update_tns_tgs(c, values, {"q"})
        assert {"q", "g1", "g2"} <= analysis.tns
        # it stops at g3 only if b blocks; b is X -> candidate
        assert "g3" in analysis.tgs

    def test_transparent_gates_propagate(self):
        c = Circuit("transparent")
        c.add_input("a")
        c.add_gate("q", GateType.DFF, ("d",))
        c.add_gate("x1", GateType.XOR, ("q", "a"))
        c.add_gate("n1", GateType.NOT, ("x1",))
        c.add_gate("d", GateType.BUFF, ("n1",))
        c.add_output("n1")
        c.validate()
        values = {line: X for line in c.lines()}
        values["a"] = 0  # XOR has no controlling value: still propagates
        analysis = update_tns_tgs(c, values, {"q"})
        assert {"q", "x1", "n1"} <= analysis.tns
        assert not analysis.tgs

    def test_transitions_stop_at_flops(self):
        c = Circuit("stop")
        c.add_gate("q0", GateType.DFF, ("d0",))
        c.add_gate("q1", GateType.DFF, ("q0",))  # direct Q -> next D
        c.add_gate("d0", GateType.NOT, ("q1",))
        c.add_output("q1")
        c.validate()
        values = {line: X for line in c.lines()}
        analysis = update_tns_tgs(c, values, {"q0"})
        # q0 drives only the DFF q1: nothing propagates combinationally.
        assert analysis.tns == {"q0"}

    def test_failed_gate_forces_propagation(self):
        c = blocking_chain()
        values = {line: X for line in c.lines()}
        analysis = update_tns_tgs(c, values, {"q"}, failed_gates={"g1"})
        assert "g1" in analysis.tns
        assert "g1" not in analysis.tgs
        assert "g3" in analysis.tgs  # next blocking opportunity

    def test_multi_tn_gate(self):
        c = Circuit("multi")
        c.add_input("a")
        c.add_gate("q0", GateType.DFF, ("g",))
        c.add_gate("q1", GateType.DFF, ("g",))
        c.add_gate("g", GateType.NAND, ("q0", "q1", "a"))
        c.add_output("g")
        c.validate()
        values = {line: X for line in c.lines()}
        analysis = update_tns_tgs(c, values, {"q0", "q1"})
        assert set(analysis.tgs.get("g", [])) == {"q0", "q1"}

    def test_blocked_value_from_simulation(self):
        """When the 3-valued state already fixes a gate output to a
        binary value, no transition passes regardless of paths."""
        c = blocking_chain()
        from repro.simulation.eval3 import simulate_comb3
        values = simulate_comb3(c, {"a": 0})
        analysis = update_tns_tgs(c, values, {"q"})
        assert analysis.tns == {"q"}
        assert not analysis.tgs

    def test_mux_gate_is_conservative(self):
        c = Circuit("mux")
        c.add_input("s")
        c.add_gate("q", GateType.DFF, ("m",))
        c.add_gate("m", GateType.MUX2, ("s", "q", "s"))
        c.add_output("m")
        c.validate()
        values = {line: X for line in c.lines()}
        analysis = update_tns_tgs(c, values, {"q"})
        # MUX2 is treated as unblockable: the transition passes.
        assert "m" in analysis.tns
