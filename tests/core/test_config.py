"""Tests for FlowConfig validation."""

import pytest

from repro.atpg.generate import AtpgConfig
from repro.core.config import FlowConfig
from repro.errors import ConfigError


class TestFlowConfig:
    def test_defaults_valid(self):
        config = FlowConfig()
        assert config.seed == 0
        assert config.use_observability_directive

    @pytest.mark.parametrize("kwargs", [
        {"observability_samples": 1},
        {"ivc_trials": 0},
        {"ivc_noise_samples": 0},
        {"max_backtracks": -1},
        {"mux_delay_margin_ps": -5.0},
        {"backend": "warp"},
        {"fault_backend": "warp"},
        {"shards": 0},
        {"shards": 2, "fault_backend": "numpy"},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FlowConfig(**kwargs)

    def test_fault_backend_defaults_to_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_BACKEND", raising=False)
        assert FlowConfig(backend="numpy") \
            .fault_simulation_backend() == "numpy"
        assert FlowConfig().fault_simulation_backend() is None

    def test_explicit_fault_backend_wins(self):
        config = FlowConfig(backend="bigint", fault_backend="numpy")
        assert config.fault_simulation_backend() == "numpy"

    def test_fault_env_outranks_plain_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_BACKEND", "numpy")
        config = FlowConfig(backend="bigint")
        assert config.fault_simulation_backend() == "numpy"

    def test_explicit_fault_backend_outranks_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_BACKEND", "numpy")
        config = FlowConfig(backend="bigint", fault_backend="bigint")
        assert config.fault_simulation_backend() == "bigint"

    def test_shards_imply_sharded_backend(self):
        from repro.simulation.backends import ShardedBackend
        spec = FlowConfig(shards=3).fault_simulation_backend()
        assert isinstance(spec, ShardedBackend)
        assert spec.shards == 3

    def test_sharded_without_shard_count_uses_registry_default(self):
        config = FlowConfig(fault_backend="sharded")
        assert config.fault_simulation_backend() == "sharded"

    def test_atpg_seed_derived_from_master(self):
        config = FlowConfig(seed=99)
        assert config.atpg_config().seed == 99

    def test_explicit_atpg_config_wins(self):
        atpg = AtpgConfig(seed=7, random_batch=16)
        config = FlowConfig(seed=99, atpg=atpg)
        assert config.atpg_config() is atpg

    def test_library_accessor(self):
        from repro.cells.library import default_library
        assert FlowConfig().library() is default_library()

    def test_frozen(self):
        config = FlowConfig()
        with pytest.raises(Exception):
            config.seed = 5
