"""Tests for FlowConfig validation."""

import pytest

from repro.atpg.generate import AtpgConfig
from repro.core.config import FlowConfig
from repro.errors import ConfigError


class TestFlowConfig:
    def test_defaults_valid(self):
        config = FlowConfig()
        assert config.seed == 0
        assert config.use_observability_directive

    @pytest.mark.parametrize("kwargs", [
        {"observability_samples": 1},
        {"ivc_trials": 0},
        {"ivc_noise_samples": 0},
        {"max_backtracks": -1},
        {"mux_delay_margin_ps": -5.0},
        {"backend": "warp"},
        {"fault_backend": "warp"},
        {"shards": 0},
        {"shards": 2, "fault_backend": "numpy"},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FlowConfig(**kwargs)

    def test_fault_backend_defaults_to_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_BACKEND", raising=False)
        assert FlowConfig(backend="numpy") \
            .fault_simulation_backend() == "numpy"
        assert FlowConfig().fault_simulation_backend() is None

    def test_explicit_fault_backend_wins(self):
        config = FlowConfig(backend="bigint", fault_backend="numpy")
        assert config.fault_simulation_backend() == "numpy"

    def test_fault_env_outranks_plain_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_BACKEND", "numpy")
        config = FlowConfig(backend="bigint")
        assert config.fault_simulation_backend() == "numpy"

    def test_explicit_fault_backend_outranks_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_BACKEND", "numpy")
        config = FlowConfig(backend="bigint", fault_backend="bigint")
        assert config.fault_simulation_backend() == "bigint"

    def test_shards_imply_sharded_backend(self):
        from repro.simulation.backends import ShardedBackend
        spec = FlowConfig(shards=3).fault_simulation_backend()
        assert isinstance(spec, ShardedBackend)
        assert spec.shards == 3

    def test_sharded_without_shard_count_uses_registry_default(self):
        config = FlowConfig(fault_backend="sharded")
        assert config.fault_simulation_backend() == "sharded"

    def test_atpg_seed_derived_from_master(self):
        config = FlowConfig(seed=99)
        assert config.atpg_config().seed == 99

    def test_explicit_atpg_config_wins(self):
        atpg = AtpgConfig(seed=7, random_batch=16)
        config = FlowConfig(seed=99, atpg=atpg)
        assert config.atpg_config() is atpg

    def test_library_accessor(self):
        from repro.cells.library import default_library
        assert FlowConfig().library() is default_library()

    def test_frozen(self):
        config = FlowConfig()
        with pytest.raises(Exception):
            config.seed = 5


class TestConfigHash:
    """Canonical config hashing (campaign cache key ingredient)."""

    #: Pinned digest of the all-defaults config.  If this test fails
    #: you changed what the hash covers (new field, changed default,
    #: different canonicalization): bump the pin *and* expect every
    #: cached campaign artefact to be invalidated.
    DEFAULT_HASH = ("bfaa64e24cb6f29663371c7468fbc9c5"
                    "7c88f9755697633da951276b7d3a151f")

    def test_default_hash_pinned(self):
        assert FlowConfig().config_hash() == self.DEFAULT_HASH

    def test_stable_across_instances(self):
        assert FlowConfig(seed=5).config_hash() == \
            FlowConfig(seed=5).config_hash()

    def test_runtime_fields_excluded(self):
        base = FlowConfig().config_hash()
        assert FlowConfig(backend="numpy").config_hash() == base
        assert FlowConfig(fault_backend="numpy").config_hash() == base
        assert FlowConfig(shards=4).config_hash() == base
        # episode batching / fault planning are bit-identical by
        # contract -> never cache-key ingredients
        assert FlowConfig(episode_batch=True).config_hash() == base
        assert FlowConfig(episode_batch=False).config_hash() == base
        assert FlowConfig(fault_plan=True).config_hash() == base
        assert FlowConfig(fault_plan=False).config_hash() == base

    def test_result_relevant_fields_included(self):
        base = FlowConfig().config_hash()
        assert FlowConfig(seed=1).config_hash() != base
        assert FlowConfig(ivc_trials=7).config_hash() != base
        assert FlowConfig(reorder_inputs=False).config_hash() != base
        assert FlowConfig(mux_delay_margin_ps=1.0).config_hash() != base

    def test_explicit_default_atpg_equals_implicit(self):
        implicit = FlowConfig(seed=3)
        explicit = FlowConfig(seed=3, atpg=AtpgConfig(seed=3))
        assert implicit.config_hash() == explicit.config_hash()

    def test_atpg_changes_hash(self):
        base = FlowConfig(seed=3)
        tweaked = FlowConfig(seed=3,
                             atpg=AtpgConfig(seed=3, random_batch=8))
        assert base.config_hash() != tweaked.config_hash()
