"""Tests for FlowConfig validation."""

import pytest

from repro.atpg.generate import AtpgConfig
from repro.core.config import FlowConfig
from repro.errors import ConfigError


class TestFlowConfig:
    def test_defaults_valid(self):
        config = FlowConfig()
        assert config.seed == 0
        assert config.use_observability_directive

    @pytest.mark.parametrize("kwargs", [
        {"observability_samples": 1},
        {"ivc_trials": 0},
        {"ivc_noise_samples": 0},
        {"max_backtracks": -1},
        {"mux_delay_margin_ps": -5.0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FlowConfig(**kwargs)

    def test_atpg_seed_derived_from_master(self):
        config = FlowConfig(seed=99)
        assert config.atpg_config().seed == 99

    def test_explicit_atpg_config_wins(self):
        atpg = AtpgConfig(seed=7, random_batch=16)
        config = FlowConfig(seed=99, atpg=atpg)
        assert config.atpg_config() is atpg

    def test_library_accessor(self):
        from repro.cells.library import default_library
        assert FlowConfig().library() is default_library()

    def test_frozen(self):
        config = FlowConfig()
        with pytest.raises(Exception):
            config.seed = 5
