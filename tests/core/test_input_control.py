"""Tests for the input-control baseline (paper ref [8])."""

import pytest

from repro.core.input_control import input_control_pattern


class TestInputControlPattern:
    def test_assigns_every_pi(self, s27_mapped):
        result = input_control_pattern(s27_mapped)
        assert set(result.pi_values) == set(s27_mapped.inputs)
        assert all(v in (0, 1) for v in result.pi_values.values())

    def test_never_touches_pseudo_inputs(self, s27_mapped):
        result = input_control_pattern(s27_mapped)
        pseudo = set(s27_mapped.dff_outputs)
        assert not set(result.pattern.assignment) & pseudo

    def test_policy_shape(self, s27_mapped):
        policy = input_control_pattern(s27_mapped).policy()
        assert policy.name == "input_control"
        assert policy.mux_ties == {}
        assert policy.pi_values is not None

    def test_dont_care_fill(self, s27_mapped):
        zero = input_control_pattern(s27_mapped, dont_care_fill=0)
        one = input_control_pattern(s27_mapped, dont_care_fill=1)
        decided = set(zero.pattern.assignment)
        for pi in s27_mapped.inputs:
            if pi not in decided:
                assert zero.pi_values[pi] == 0
                assert one.pi_values[pi] == 1

    def test_deterministic(self, toy_mapped):
        a = input_control_pattern(toy_mapped)
        b = input_control_pattern(toy_mapped)
        assert a.pi_values == b.pi_values

    def test_all_sources_are_pseudo_inputs(self, toy_mapped):
        result = input_control_pattern(toy_mapped)
        assert set(toy_mapped.dff_outputs) <= result.pattern.tns
