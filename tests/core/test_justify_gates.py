"""Justification through every gate family (branch coverage of backtrace)."""

import pytest

from repro.core.justify import Justifier
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType, X
from repro.simulation.eval2 import comb_input_lines, simulate_comb


def _engine(circuit, observability=None):
    values = {line: X for line in circuit.lines()}
    controllable = set(comb_input_lines(circuit))
    return Justifier(circuit, values, controllable, observability), values


def _verify(circuit, values, line, target):
    full = {i: values[i] if values[i] != X else 0
            for i in comb_input_lines(circuit)}
    assert simulate_comb(circuit, full)[line] == target


class TestXorJustification:
    @pytest.mark.parametrize("target", [0, 1])
    def test_xor2(self, target):
        c = Circuit("x2")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.XOR, ("a", "b"))
        c.add_output("y")
        c.validate()
        engine, values = _engine(c)
        assert engine.justify("y", target).success
        _verify(c, values, "y", target)

    @pytest.mark.parametrize("target", [0, 1])
    def test_xnor3(self, target):
        c = Circuit("xn3")
        for name in ("a", "b", "c"):
            c.add_input(name)
        c.add_gate("y", GateType.XNOR, ("a", "b", "c"))
        c.add_output("y")
        c.validate()
        engine, values = _engine(c)
        assert engine.justify("y", target).success
        _verify(c, values, "y", target)

    def test_xor_with_partially_known_inputs(self):
        c = Circuit("xpart")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.XOR, ("a", "b"))
        c.add_output("y")
        c.validate()
        engine, values = _engine(c)
        values["a"] = 1
        assert engine.justify("y", 1).success
        assert values["b"] == 0
        _verify(c, values, "y", 1)


class TestMuxJustification:
    @pytest.mark.parametrize("target", [0, 1])
    def test_mux_output(self, target):
        c = Circuit("mx")
        for name in ("s", "d0", "d1"):
            c.add_input(name)
        c.add_gate("y", GateType.MUX2, ("s", "d0", "d1"))
        c.add_output("y")
        c.validate()
        engine, values = _engine(c)
        assert engine.justify("y", target).success
        _verify(c, values, "y", target)

    def test_mux_with_fixed_select(self):
        c = Circuit("mx2")
        for name in ("s", "d0", "d1"):
            c.add_input(name)
        c.add_gate("y", GateType.MUX2, ("s", "d0", "d1"))
        c.add_output("y")
        c.validate()
        engine, values = _engine(c)
        values["s"] = 1
        assert engine.justify("y", 1).success
        assert values["d1"] == 1
        _verify(c, values, "y", 1)


class TestBuffChainJustification:
    def test_through_buffers_and_inverters(self):
        c = Circuit("chain")
        c.add_input("a")
        c.add_gate("b1", GateType.BUFF, ("a",))
        c.add_gate("n1", GateType.NOT, ("b1",))
        c.add_gate("b2", GateType.BUFF, ("n1",))
        c.add_output("b2")
        c.validate()
        engine, values = _engine(c)
        assert engine.justify("b2", 0).success
        assert values["a"] == 1
        _verify(c, values, "b2", 0)


class TestWideGateJustification:
    @pytest.mark.parametrize("gtype,target,expect_all", [
        (GateType.NAND, 0, 1),   # all inputs 1
        (GateType.NOR, 1, 0),    # all inputs 0
        (GateType.AND, 1, 1),
        (GateType.OR, 0, 0),
    ])
    def test_all_inputs_needed(self, gtype, target, expect_all):
        c = Circuit("wide")
        pis = [c.add_input(f"i{k}") for k in range(4)]
        c.add_gate("y", gtype, pis)
        c.add_output("y")
        c.validate()
        engine, values = _engine(c)
        assert engine.justify("y", target).success
        for pi in pis:
            assert values[pi] == expect_all
        _verify(c, values, "y", target)
