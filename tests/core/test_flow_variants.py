"""Additional flow scenarios: pre-mapped inputs, margins, small configs."""

import pytest

from repro.core.config import FlowConfig
from repro.core.flow import ProposedFlow
from repro.netlist import builders
from repro.techmap.mapper import technology_map


class TestPreMappedInput:
    def test_mapped_circuit_not_remapped(self):
        """A circuit that is already NAND/NOR/INV passes through as-is
        (same object), so external references stay valid."""
        mapped = technology_map(builders.s27())
        result = ProposedFlow(FlowConfig(seed=1)).run(mapped)
        assert result.circuit is mapped

    def test_unmapped_circuit_is_mapped(self):
        original = builders.s27()
        result = ProposedFlow(FlowConfig(seed=1)).run(original)
        assert result.circuit is not original
        from repro.techmap.mapper import is_mapped
        assert is_mapped(result.circuit)


class TestMarginFlow:
    def test_infinite_margin_degenerates_to_input_control(self):
        """With no MUXes allowed, the proposed method still applies its
        PI pattern — dynamic power should track the input-control
        baseline closely (reordering may still help static)."""
        config = FlowConfig(seed=1, mux_delay_margin_ps=1e9)
        result = ProposedFlow(config).run(builders.toy_scan_circuit())
        assert not result.addmux.muxable
        assert result.mux_plan.tie_values == {}
        prop = result.reports["proposed"]
        ic = result.reports["input_control"]
        # Same hardware: dynamic within 50% of the baseline (the two
        # PI patterns may differ, but no structural advantage exists).
        assert prop.dynamic_uw_per_hz <= ic.dynamic_uw_per_hz * 1.5


class TestTinyBudgets:
    def test_minimal_config_still_works(self):
        config = FlowConfig(seed=2, observability_samples=8,
                            ivc_trials=1, ivc_noise_samples=1,
                            max_backtracks=0)
        result = ProposedFlow(config).run(builders.s27())
        assert set(result.reports) == {
            "traditional", "input_control", "proposed"}
        assert result.reports["proposed"].static_uw > 0


class TestReorderInteraction:
    def test_reordered_netlist_only_affects_proposed(self):
        config = FlowConfig(seed=1, reorder_inputs=True)
        result = ProposedFlow(config).run(builders.s27())
        if result.reorder and result.reorder.swapped_gates:
            # baselines were evaluated on the unmodified netlist
            for out in result.reorder.swapped_gates:
                original = result.circuit.gates[out].inputs
                swapped = result.reorder.circuit.gates[out].inputs
                assert set(original) == set(swapped)
                assert original != swapped

    def test_reorder_never_hurts_proposed_static(self):
        with_reorder = ProposedFlow(
            FlowConfig(seed=3, reorder_inputs=True)
        ).run(builders.s27())
        without = ProposedFlow(
            FlowConfig(seed=3, reorder_inputs=False)
        ).run(builders.s27())
        assert with_reorder.reports["proposed"].static_uw <= \
            without.reports["proposed"].static_uw + 1e-9
