"""Tests for bit-parallel fault simulation."""

import pytest

from repro.atpg.faults import Fault, all_faults, observable_lines
from repro.atpg.faultsim import detect_word, fault_simulate
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.simulation.bitsim import pack_input_vectors, simulate_packed
from repro.simulation.eval2 import comb_input_lines, simulate_comb


def two_gate() -> Circuit:
    c = Circuit("two")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("m", GateType.AND, ("a", "b"))
    c.add_gate("y", GateType.NOT, ("m",))
    c.add_output("y")
    return c


class TestDetectWord:
    def test_and_sa1_detected_by_01_10_00(self):
        c = two_gate()
        vectors = [{"a": a, "b": b} for a in (0, 1) for b in (0, 1)]
        words, n = pack_input_vectors(c, vectors)
        good = simulate_packed(c, words, n)
        word = detect_word(c, Fault("m", 1), good, n)
        # m/sa1 flips y whenever the good value of m is 0: patterns
        # 00, 01, 10 -> bits 0, 1, 2.
        assert word == 0b0111

    def test_input_fault(self):
        c = two_gate()
        vectors = [{"a": a, "b": b} for a in (0, 1) for b in (0, 1)]
        words, n = pack_input_vectors(c, vectors)
        good = simulate_packed(c, words, n)
        # a/sa0: observable only when b=1 and a=1 (good m=1, faulty m=0)
        word = detect_word(c, Fault("a", 0), good, n)
        assert word == 0b1000

    def test_stuck_equal_good_undetected(self):
        c = two_gate()
        vectors = [{"a": 0, "b": 0}]
        words, n = pack_input_vectors(c, vectors)
        good = simulate_packed(c, words, n)
        assert detect_word(c, Fault("a", 0), good, n) == 0


class TestFaultSimulate:
    def test_exhaustive_patterns_detect_everything_testable(self, s27):
        universe = all_faults(s27)
        lines = comb_input_lines(s27)
        vectors = [
            {line: (code >> i) & 1 for i, line in enumerate(lines)}
            for code in range(2 ** len(lines))
        ]
        words, n = pack_input_vectors(s27, vectors)
        result = fault_simulate(s27, universe, words, n)
        # Any fault undetected under the full input space is untestable.
        for fault in result.remaining:
            again = detect_word(
                s27, fault, simulate_packed(s27, words, n), n)
            assert again == 0

    def test_detected_word_consistency(self, s27):
        """Every claimed detecting pattern must show a PO/D difference
        when re-simulated scalar with the fault injected manually."""
        universe = all_faults(s27)[:12]
        lines = comb_input_lines(s27)
        vectors = [
            {line: (code * 37 >> i) & 1 for i, line in enumerate(lines)}
            for code in range(16)
        ]
        words, n = pack_input_vectors(s27, vectors)
        result = fault_simulate(s27, universe, words, n, drop=False)
        obs = observable_lines(s27)
        for fault, word in result.detected.items():
            t = (word & -word).bit_length() - 1  # first detecting pattern
            good = simulate_comb(s27, vectors[t])
            bad = _simulate_with_fault(s27, vectors[t], fault)
            assert any(good[o] != bad[o] for o in obs), str(fault)

    def test_drop_vs_no_drop_same_detection_set(self, s27):
        universe = all_faults(s27)
        lines = comb_input_lines(s27)
        vectors = [
            {line: (code * 11 >> i) & 1 for i, line in enumerate(lines)}
            for code in range(32)
        ]
        words, n = pack_input_vectors(s27, vectors)
        dropped = fault_simulate(s27, universe, words, n, drop=True)
        full = fault_simulate(s27, universe, words, n, drop=False)
        assert set(dropped.detected) == set(full.detected)

    def test_coverage_metric(self, s27):
        universe = all_faults(s27)
        lines = comb_input_lines(s27)
        words, n = pack_input_vectors(
            s27, [{line: 0 for line in lines}])
        result = fault_simulate(s27, universe, words, n)
        assert 0.0 <= result.coverage() <= 1.0
        assert result.coverage(1000) == result.n_detected / 1000

    def test_no_drop_remaining_holds_only_undetected(self, s27):
        """Regression: drop=False used to append detected faults to
        ``remaining``, double-counting them in ``coverage()``."""
        universe = all_faults(s27)
        lines = comb_input_lines(s27)
        vectors = [
            {line: (code * 11 >> i) & 1 for i, line in enumerate(lines)}
            for code in range(32)
        ]
        words, n = pack_input_vectors(s27, vectors)
        result = fault_simulate(s27, universe, words, n, drop=False)
        assert result.n_detected > 0
        assert set(result.remaining).isdisjoint(result.detected)
        assert len(result.detected) + len(result.remaining) == len(universe)
        assert result.coverage() == result.n_detected / len(universe)
        # remaining keeps the input (universe) ordering
        undetected = [f for f in universe if f not in result.detected]
        assert result.remaining == undetected

    @pytest.mark.parametrize("drop", [True, False])
    def test_drop_flag_never_changes_the_result(self, s27, drop):
        universe = all_faults(s27)
        lines = comb_input_lines(s27)
        words, n = pack_input_vectors(
            s27, [{line: (code >> i) & 1 for i, line in enumerate(lines)}
                  for code in range(8)])
        result = fault_simulate(s27, universe, words, n, drop=drop)
        baseline = fault_simulate(s27, universe, words, n)
        assert result.detected == baseline.detected
        assert result.remaining == baseline.remaining


def _simulate_with_fault(circuit, inputs, fault):
    """Scalar faulty-machine simulation (reference implementation)."""
    from repro.netlist.gates import eval_gate

    values = dict(inputs)
    if fault.line in values:
        values[fault.line] = fault.stuck_at
    for line in circuit.topo_order():
        gate = circuit.gates[line]
        value = eval_gate(gate.gtype, [values[s] for s in gate.inputs])
        values[line] = fault.stuck_at if line == fault.line else value
    return values
