"""Tests for the stuck-at fault model."""

import pytest

from repro.atpg.faults import Fault, all_faults, observable_lines


class TestFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            Fault("x", 2)

    def test_str(self):
        assert str(Fault("G17", 0)) == "G17/sa0"

    def test_ordering_and_equality(self):
        assert Fault("a", 0) < Fault("a", 1) < Fault("b", 0)
        assert Fault("a", 0) == Fault("a", 0)

    def test_hashable(self):
        assert len({Fault("a", 0), Fault("a", 0), Fault("a", 1)}) == 2


class TestAllFaults:
    def test_counts(self, s27):
        faults = all_faults(s27)
        # lines: 4 PIs + 3 pseudo-inputs + 10 gate outputs = 17; x2
        assert len(faults) == 34

    def test_covers_pseudo_inputs(self, s27):
        lines = {f.line for f in all_faults(s27)}
        assert {"G5", "G6", "G7"} <= lines

    def test_excludes_nothing_combinational(self, s27):
        lines = {f.line for f in all_faults(s27)}
        for gate in s27.combinational_gates():
            assert gate.output in lines

    def test_both_polarities(self, s27):
        faults = all_faults(s27)
        by_line = {}
        for fault in faults:
            by_line.setdefault(fault.line, set()).add(fault.stuck_at)
        assert all(v == {0, 1} for v in by_line.values())


class TestObservableLines:
    def test_s27(self, s27):
        obs = observable_lines(s27)
        assert obs[0] == "G17"                # PO first
        assert set(obs) == {"G17", "G10", "G11", "G13"}

    def test_deduplication(self, toy):
        # toy_scan has n6 as both PO and D-feeding line
        obs = observable_lines(toy)
        assert len(obs) == len(set(obs))

    def test_pure_combinational(self, c17):
        assert observable_lines(c17) == list(c17.outputs)
