"""Tests for the reusable PODEM engine."""

import pytest

from repro.atpg.faults import Fault, all_faults
from repro.atpg.podem import PodemEngine, generate_test
from repro.errors import AtpgError


class TestEngineReuse:
    def test_shared_engine_matches_fresh_runs(self, s27_mapped):
        """Re-targeting one engine must give byte-identical results to
        constructing a fresh engine per fault."""
        engine = PodemEngine(s27_mapped)
        for fault in all_faults(s27_mapped)[:16]:
            shared = generate_test(s27_mapped, fault, engine=engine)
            fresh = generate_test(s27_mapped, fault)
            assert shared.status == fresh.status, str(fault)
            assert shared.assignment == fresh.assignment, str(fault)

    def test_engine_state_reset_between_faults(self, s27_mapped):
        engine = PodemEngine(s27_mapped)
        generate_test(s27_mapped, Fault("G17", 0), engine=engine)
        # After a run, a second unrelated fault must start clean.
        result = generate_test(s27_mapped, Fault("G10", 1), engine=engine)
        assert result.status in ("detected", "untestable", "aborted")
        assert not engine.assignment or result.detected

    def test_wrong_circuit_rejected(self, s27_mapped, toy_mapped):
        engine = PodemEngine(s27_mapped)
        with pytest.raises(AtpgError, match="different circuit"):
            generate_test(toy_mapped, Fault("n1", 0), engine=engine)

    def test_unknown_fault_line(self, s27_mapped):
        engine = PodemEngine(s27_mapped)
        with pytest.raises(AtpgError, match="not in circuit"):
            generate_test(s27_mapped, Fault("ghost", 0), engine=engine)

    def test_cone_cache_grows_once(self, s27_mapped):
        engine = PodemEngine(s27_mapped)
        generate_test(s27_mapped, Fault("G17", 0), engine=engine)
        size_after_first = len(engine._cone_cache)
        generate_test(s27_mapped, Fault("G17", 1), engine=engine)
        assert len(engine._cone_cache) == size_after_first


class TestScoapIntegration:
    def test_engine_carries_scoap(self, s27_mapped):
        engine = PodemEngine(s27_mapped)
        assert len(engine.cc0) == len(engine.names)
        assert len(engine.co) == len(engine.names)
        # inputs are the cheapest lines
        for li in engine.input_idx:
            assert engine.cc0[li] == 1
            assert engine.cc1[li] == 1
