"""Tests for the full ATPG pipeline (ATOM substitute)."""

import pytest

from repro.atpg.collapse import collapse_faults
from repro.atpg.faults import all_faults
from repro.atpg.faultsim import fault_simulate
from repro.atpg.generate import AtpgConfig, generate_tests
from repro.scan.testview import ScanDesign
from repro.simulation.bitsim import pack_input_vectors


class TestGenerateTests:
    def test_full_coverage_on_s27(self, s27_design):
        result = generate_tests(s27_design, AtpgConfig(seed=1))
        assert result.fault_coverage == 1.0
        assert result.n_untestable == 0
        assert result.vectors

    def test_full_coverage_on_toy(self, toy_mapped):
        design = ScanDesign.full_scan(toy_mapped)
        result = generate_tests(design, AtpgConfig(seed=1))
        assert result.testable_coverage == 1.0

    def test_reported_coverage_is_real(self, s27_design):
        """Re-simulate the returned vectors against the collapsed
        universe: the detection count must match the report."""
        result = generate_tests(s27_design, AtpgConfig(seed=2))
        circuit = s27_design.circuit
        universe = collapse_faults(circuit, all_faults(circuit))
        assignments = []
        for vector in result.vectors:
            values = dict(vector.pi_values)
            values.update(
                s27_design.chain.state_as_dict(vector.scan_state))
            assignments.append(values)
        words, n = pack_input_vectors(circuit, assignments)
        check = fault_simulate(circuit, universe, words, n)
        assert check.n_detected == result.n_detected

    def test_deterministic(self, s27_design):
        a = generate_tests(s27_design, AtpgConfig(seed=3))
        b = generate_tests(s27_design, AtpgConfig(seed=3))
        assert a.vectors == b.vectors

    def test_seed_changes_vectors(self, s27_design):
        a = generate_tests(s27_design, AtpgConfig(seed=1))
        b = generate_tests(s27_design, AtpgConfig(seed=4))
        assert a.vectors != b.vectors

    def test_compaction_shrinks_or_equals(self, s27_design):
        loose = generate_tests(s27_design,
                               AtpgConfig(seed=5, compaction=False))
        tight = generate_tests(s27_design,
                               AtpgConfig(seed=5, compaction=True))
        assert len(tight.vectors) <= len(loose.vectors)
        assert tight.n_detected == loose.n_detected

    def test_compaction_preserves_coverage(self, toy_mapped):
        design = ScanDesign.full_scan(toy_mapped)
        loose = generate_tests(design, AtpgConfig(seed=6, compaction=False))
        tight = generate_tests(design, AtpgConfig(seed=6, compaction=True))
        assert tight.n_detected == loose.n_detected

    def test_random_only_phase(self, s27_design):
        """With PODEM effectively disabled, coverage comes from random
        patterns alone and must still be substantial."""
        config = AtpgConfig(seed=7, max_backtracks=0,
                            max_random_batches=32)
        result = generate_tests(s27_design, config)
        assert result.fault_coverage > 0.8

    def test_summary_format(self, s27_design):
        result = generate_tests(s27_design, AtpgConfig(seed=1))
        text = result.summary()
        assert "vectors" in text
        assert "coverage" in text

    def test_vectors_well_formed(self, s27_design):
        result = generate_tests(s27_design, AtpgConfig(seed=1))
        for vector in result.vectors:
            assert set(vector.pi_values) == set(
                s27_design.circuit.inputs)
            assert len(vector.scan_state) == s27_design.chain.length


class TestFaultPlanToggle:
    """The planned fault x pattern replay must never change the
    generated test set — the legacy per-batch loop is the pinned
    reference."""

    def test_plan_on_equals_legacy(self, s27_design):
        legacy = generate_tests(s27_design, AtpgConfig(seed=1),
                                fault_plan=False)
        planned = generate_tests(s27_design, AtpgConfig(seed=1),
                                 fault_plan=True)
        assert planned.vectors == legacy.vectors
        assert planned.n_detected == legacy.n_detected
        assert planned.n_untestable == legacy.n_untestable
        assert planned.n_aborted == legacy.n_aborted

    def test_plan_on_equals_legacy_without_compaction(self, s27_design):
        """With compaction off there is no detection matrix to reuse;
        the plan path must fall back to the final drop-mode pass."""
        config = AtpgConfig(seed=2, compaction=False)
        legacy = generate_tests(s27_design, config, fault_plan=False)
        planned = generate_tests(s27_design, config, fault_plan=True)
        assert planned.vectors == legacy.vectors
        assert planned.n_detected == legacy.n_detected

    def test_matrix_reuse_skips_final_simulation(self, s27_design,
                                                 monkeypatch):
        """On the plan path the final coverage accounting reads the
        compaction matrix: exactly one no-drop call, no trailing
        drop-mode call on the compacted set."""
        from repro.simulation.fault_episode import FaultSimSession

        calls = []
        original = FaultSimSession.simulate

        def spy(self, faults, words, n, drop=True):
            calls.append(drop)
            return original(self, faults, words, n, drop=drop)

        monkeypatch.setattr(FaultSimSession, "simulate", spy)
        generate_tests(s27_design, AtpgConfig(seed=1), fault_plan=True)
        assert calls.count(False) == 1  # the compaction matrix
        planned_calls = list(calls)
        calls.clear()
        generate_tests(s27_design, AtpgConfig(seed=1), fault_plan=False)
        # legacy runs one extra drop-mode pass after the matrix
        assert len(calls) == len(planned_calls) + 1

    def test_coverage_on_env_toggle(self, s27_design, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "0")
        legacy = generate_tests(s27_design, AtpgConfig(seed=3))
        monkeypatch.setenv("REPRO_FAULT_PLAN", "1")
        planned = generate_tests(s27_design, AtpgConfig(seed=3))
        assert planned.vectors == legacy.vectors
        assert planned.n_detected == legacy.n_detected


class TestSharedPoolRouting:
    """ATPG's inner fault-simulation loop rides the shared worker pool
    by default when a sharding fault backend would actually split the
    collapsed universe."""

    def test_sharded_atpg_engages_shared_pool(self, s27_design):
        from repro.campaign.pool import (
            active_shared_pool,
            shutdown_shared_pool,
        )
        from repro.simulation.backends import ShardedBackend

        shutdown_shared_pool()
        assert active_shared_pool() is None
        reference = generate_tests(s27_design, AtpgConfig(seed=1))
        backend = ShardedBackend(shards=2, min_faults_per_shard=1)
        try:
            sharded = generate_tests(s27_design, AtpgConfig(seed=1),
                                     fault_backend=backend)
            # the pool persists for subsequent calls on warm workers
            assert active_shared_pool() is not None
            # ... but is detached from the backend again afterwards
            assert backend.pool is None
        finally:
            shutdown_shared_pool()
        assert sharded.vectors == reference.vectors
        assert sharded.n_detected == reference.n_detected

    def test_inline_fault_lists_spawn_no_pool(self, s27_design):
        from repro.campaign.pool import (
            active_shared_pool,
            shutdown_shared_pool,
        )
        from repro.simulation.backends import ShardedBackend

        shutdown_shared_pool()
        # s27's collapsed universe is far below one shard's worth, so
        # the meta-backend runs inline and no pool should be spawned.
        backend = ShardedBackend(shards=2, min_faults_per_shard=10_000)
        generate_tests(s27_design, AtpgConfig(seed=1),
                       fault_backend=backend)
        assert active_shared_pool() is None

    def test_explicit_pool_is_honoured(self, s27_design):
        from repro.campaign.pool import (
            WorkerPool,
            active_shared_pool,
            shutdown_shared_pool,
        )
        from repro.simulation.backends import ShardedBackend

        shutdown_shared_pool()
        with WorkerPool(processes=2) as pool:
            backend = ShardedBackend(shards=2, min_faults_per_shard=1,
                                     pool=pool)
            result = generate_tests(s27_design, AtpgConfig(seed=1),
                                    fault_backend=backend)
            # an attached pool wins: no shared pool gets created
            assert active_shared_pool() is None
            assert backend.pool is pool
        reference = generate_tests(s27_design, AtpgConfig(seed=1))
        assert result.vectors == reference.vectors
