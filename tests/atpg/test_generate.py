"""Tests for the full ATPG pipeline (ATOM substitute)."""

import pytest

from repro.atpg.collapse import collapse_faults
from repro.atpg.faults import all_faults
from repro.atpg.faultsim import fault_simulate
from repro.atpg.generate import AtpgConfig, generate_tests
from repro.scan.testview import ScanDesign
from repro.simulation.bitsim import pack_input_vectors


class TestGenerateTests:
    def test_full_coverage_on_s27(self, s27_design):
        result = generate_tests(s27_design, AtpgConfig(seed=1))
        assert result.fault_coverage == 1.0
        assert result.n_untestable == 0
        assert result.vectors

    def test_full_coverage_on_toy(self, toy_mapped):
        design = ScanDesign.full_scan(toy_mapped)
        result = generate_tests(design, AtpgConfig(seed=1))
        assert result.testable_coverage == 1.0

    def test_reported_coverage_is_real(self, s27_design):
        """Re-simulate the returned vectors against the collapsed
        universe: the detection count must match the report."""
        result = generate_tests(s27_design, AtpgConfig(seed=2))
        circuit = s27_design.circuit
        universe = collapse_faults(circuit, all_faults(circuit))
        assignments = []
        for vector in result.vectors:
            values = dict(vector.pi_values)
            values.update(
                s27_design.chain.state_as_dict(vector.scan_state))
            assignments.append(values)
        words, n = pack_input_vectors(circuit, assignments)
        check = fault_simulate(circuit, universe, words, n)
        assert check.n_detected == result.n_detected

    def test_deterministic(self, s27_design):
        a = generate_tests(s27_design, AtpgConfig(seed=3))
        b = generate_tests(s27_design, AtpgConfig(seed=3))
        assert a.vectors == b.vectors

    def test_seed_changes_vectors(self, s27_design):
        a = generate_tests(s27_design, AtpgConfig(seed=1))
        b = generate_tests(s27_design, AtpgConfig(seed=4))
        assert a.vectors != b.vectors

    def test_compaction_shrinks_or_equals(self, s27_design):
        loose = generate_tests(s27_design,
                               AtpgConfig(seed=5, compaction=False))
        tight = generate_tests(s27_design,
                               AtpgConfig(seed=5, compaction=True))
        assert len(tight.vectors) <= len(loose.vectors)
        assert tight.n_detected == loose.n_detected

    def test_compaction_preserves_coverage(self, toy_mapped):
        design = ScanDesign.full_scan(toy_mapped)
        loose = generate_tests(design, AtpgConfig(seed=6, compaction=False))
        tight = generate_tests(design, AtpgConfig(seed=6, compaction=True))
        assert tight.n_detected == loose.n_detected

    def test_random_only_phase(self, s27_design):
        """With PODEM effectively disabled, coverage comes from random
        patterns alone and must still be substantial."""
        config = AtpgConfig(seed=7, max_backtracks=0,
                            max_random_batches=32)
        result = generate_tests(s27_design, config)
        assert result.fault_coverage > 0.8

    def test_summary_format(self, s27_design):
        result = generate_tests(s27_design, AtpgConfig(seed=1))
        text = result.summary()
        assert "vectors" in text
        assert "coverage" in text

    def test_vectors_well_formed(self, s27_design):
        result = generate_tests(s27_design, AtpgConfig(seed=1))
        for vector in result.vectors:
            assert set(vector.pi_values) == set(
                s27_design.circuit.inputs)
            assert len(vector.scan_state) == s27_design.chain.length
