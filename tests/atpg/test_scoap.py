"""Tests for SCOAP testability measures."""

import pytest

from repro.atpg.scoap import INFINITE_COST, compute_scoap
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType


def _single(gtype, arity=2):
    c = Circuit("g")
    names = [c.add_input(f"i{k}") for k in range(arity)]
    c.add_gate("y", gtype, names)
    c.add_output("y")
    return c


class TestControllability:
    def test_inputs_cost_one(self, s27):
        scoap = compute_scoap(s27)
        for line in list(s27.inputs) + s27.dff_outputs:
            assert scoap.cc0[line] == 1
            assert scoap.cc1[line] == 1

    def test_and_rules(self):
        scoap = compute_scoap(_single(GateType.AND))
        assert scoap.cc0["y"] == 2       # min(1,1)+1
        assert scoap.cc1["y"] == 3       # 1+1+1

    def test_nand_rules(self):
        scoap = compute_scoap(_single(GateType.NAND))
        assert scoap.cc1["y"] == 2
        assert scoap.cc0["y"] == 3

    def test_nor_rules(self):
        scoap = compute_scoap(_single(GateType.NOR, 3))
        assert scoap.cc0["y"] == 2       # any input to 1
        assert scoap.cc1["y"] == 4       # all three to 0

    def test_not_swaps(self):
        c = Circuit("inv")
        c.add_input("a")
        c.add_gate("y", GateType.NOT, ("a",))
        c.add_output("y")
        scoap = compute_scoap(c)
        assert scoap.cc0["y"] == scoap.cc1["y"] == 2

    def test_xor_rules(self):
        scoap = compute_scoap(_single(GateType.XOR))
        # either both 0 or both 1 for output 0 -> 2+1; mixed for 1 -> 2+1
        assert scoap.cc0["y"] == 3
        assert scoap.cc1["y"] == 3

    def test_const_cells(self):
        c = Circuit("tie")
        c.add_gate("t", GateType.CONST1, ())
        c.add_output("t")
        scoap = compute_scoap(c)
        assert scoap.cc1["t"] == 0
        assert scoap.cc0["t"] == INFINITE_COST

    def test_depth_monotonicity(self):
        """Deeper copies of the same logic must not get cheaper."""
        from repro.netlist import builders
        chain = builders.chain_of_inverters(6)
        scoap = compute_scoap(chain)
        costs = [scoap.cc0[f"s{i}"] + scoap.cc1[f"s{i}"]
                 for i in range(6)]
        assert costs == sorted(costs)


class TestObservability:
    def test_observation_points_cost_zero(self, s27):
        scoap = compute_scoap(s27)
        assert scoap.co["G17"] == 0     # PO
        assert scoap.co["G10"] == 0     # flop D line

    def test_and_side_cost(self):
        c = _single(GateType.AND)
        scoap = compute_scoap(c)
        # observing i0 through the AND: set i1=1 (cost 1) + 1
        assert scoap.co["i0"] == 2

    def test_unobservable_line(self):
        c = Circuit("dangling")
        c.add_input("a")
        c.add_gate("y", GateType.NOT, ("a",))
        c.add_gate("dead", GateType.NOT, ("a",))
        c.add_output("y")
        scoap = compute_scoap(c)
        assert scoap.co["dead"] == INFINITE_COST
        assert scoap.co["a"] == 1  # through the observed inverter

    def test_fanout_takes_cheapest_branch(self):
        c = Circuit("branch")
        c.add_input("a")
        c.add_input("b")
        c.add_input("c")
        c.add_gate("deep1", GateType.AND, ("a", "b"))
        c.add_gate("deep2", GateType.AND, ("deep1", "c"))
        c.add_gate("short", GateType.NOT, ("a",))
        c.add_output("deep2")
        c.add_output("short")
        scoap = compute_scoap(c)
        assert scoap.co["a"] == 1  # via the inverter, not the AND tree


class TestReporting:
    def test_hardest_lines(self, s27_mapped):
        scoap = compute_scoap(s27_mapped)
        hardest = scoap.hardest_lines(3)
        assert len(hardest) == 3
        # inputs are trivially easy: never among the hardest
        assert not set(hardest) & set(s27_mapped.inputs)

    def test_controllability_accessor(self, s27):
        scoap = compute_scoap(s27)
        assert scoap.controllability("G0", 0) == scoap.cc0["G0"]
        assert scoap.controllability("G0", 1) == scoap.cc1["G0"]
