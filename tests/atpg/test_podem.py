"""Tests for PODEM test generation."""

import pytest

from repro.atpg.faults import Fault, all_faults, observable_lines
from repro.atpg.podem import generate_test
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType, eval_gate
from repro.simulation.eval2 import comb_input_lines, simulate_comb


def _check_detects(circuit, fault, assignment):
    """Scalar verification that the (completed) assignment detects."""
    values = {line: assignment.get(line, 0)
              for line in comb_input_lines(circuit)}
    good = simulate_comb(circuit, values)
    bad = dict(values)
    if fault.line in bad:
        bad[fault.line] = fault.stuck_at
    for line in circuit.topo_order():
        gate = circuit.gates[line]
        value = eval_gate(gate.gtype, [bad[s] for s in gate.inputs])
        bad[line] = fault.stuck_at if line == fault.line else value
    return any(good[o] != bad[o] for o in observable_lines(circuit))


class TestSimpleCircuits:
    def test_and_gate_faults(self):
        c = Circuit("and")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.AND, ("a", "b"))
        c.add_output("y")
        result = generate_test(c, Fault("y", 0))
        assert result.detected
        assert result.assignment == {"a": 1, "b": 1}

    def test_requires_propagation(self):
        c = Circuit("prop")
        c.add_input("a")
        c.add_input("b")
        c.add_input("c")
        c.add_gate("m", GateType.AND, ("a", "b"))
        c.add_gate("y", GateType.OR, ("m", "c"))
        c.add_output("y")
        # m/sa1 needs m=0 and c=0 (OR side input non-controlling).
        result = generate_test(c, Fault("m", 1))
        assert result.detected
        assert result.assignment.get("c") == 0
        assert _check_detects(c, Fault("m", 1), result.assignment)

    def test_untestable_redundant_fault(self):
        # y = OR(a, NOT(a)) == 1: y/sa1 is undetectable.
        c = Circuit("redundant")
        c.add_input("a")
        c.add_gate("n", GateType.NOT, ("a",))
        c.add_gate("y", GateType.OR, ("a", "n"))
        c.add_output("y")
        result = generate_test(c, Fault("y", 1))
        assert result.status == "untestable"

    def test_xor_propagation(self):
        c = Circuit("xor")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.XOR, ("a", "b"))
        c.add_output("y")
        for fault in (Fault("a", 0), Fault("a", 1), Fault("y", 0)):
            result = generate_test(c, fault)
            assert result.detected, str(fault)
            assert _check_detects(c, fault, result.assignment)


class TestOnBenchmarks:
    @pytest.mark.parametrize("fixture_name", ["s27", "s27_mapped", "toy_mapped"])
    def test_all_collapsed_faults_closed(self, fixture_name, request):
        """Every fault is either detected (with a verified vector) or
        proven untestable — no aborts on these small circuits."""
        circuit = request.getfixturevalue(fixture_name)
        for fault in all_faults(circuit):
            result = generate_test(circuit, fault, max_backtracks=200)
            assert result.status in ("detected", "untestable"), str(fault)
            if result.detected:
                assert _check_detects(circuit, fault, result.assignment), \
                    str(fault)

    def test_assignment_only_uses_inputs(self, s27_mapped):
        inputs = set(comb_input_lines(s27_mapped))
        result = generate_test(s27_mapped, Fault("G17", 0))
        assert result.detected
        assert set(result.assignment) <= inputs

    def test_backtrack_budget_respected(self, s27_mapped):
        result = generate_test(s27_mapped, Fault("G17", 0),
                               max_backtracks=0)
        assert result.status in ("detected", "aborted", "untestable")
        assert result.backtracks <= 1
