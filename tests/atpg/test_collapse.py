"""Tests for fault equivalence collapsing."""

import pytest

from repro.atpg.collapse import collapse_faults, equivalence_classes
from repro.atpg.faults import Fault, all_faults
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType


def inverter_chain() -> Circuit:
    c = Circuit("chain")
    c.add_input("a")
    c.add_gate("n1", GateType.NOT, ("a",))
    c.add_gate("n2", GateType.NOT, ("n1",))
    c.add_output("n2")
    return c


class TestInverterRules:
    def test_chain_collapses_to_two_classes(self):
        c = inverter_chain()
        collapsed = collapse_faults(c, all_faults(c))
        # a/sa0 == n1/sa1 == n2/sa0 and a/sa1 == n1/sa0 == n2/sa1.
        assert len(collapsed) == 2

    def test_representative_is_closest_to_inputs(self):
        c = inverter_chain()
        collapsed = collapse_faults(c, all_faults(c))
        assert {f.line for f in collapsed} == {"a"}

    def test_classes_cover_universe(self):
        c = inverter_chain()
        universe = all_faults(c)
        classes = equivalence_classes(c, universe)
        members = [f for ms in classes.values() for f in ms]
        assert sorted(members) == sorted(universe)


class TestGateRules:
    def test_nand_sa0_inputs_join_output_sa1(self):
        c = Circuit("nand")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.NAND, ("a", "b"))
        c.add_output("y")
        classes = equivalence_classes(c, all_faults(c))
        merged = [ms for ms in classes.values() if len(ms) > 1]
        assert len(merged) == 1
        assert set(merged[0]) == {Fault("a", 0), Fault("b", 0),
                                  Fault("y", 1)}

    def test_fanout_stems_not_collapsed(self):
        c = Circuit("fan")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y1", GateType.NAND, ("a", "b"))
        c.add_gate("y2", GateType.NOR, ("a", "b"))
        c.add_output("y1")
        c.add_output("y2")
        classes = equivalence_classes(c, all_faults(c))
        # a and b feed two gates each: no equivalence is exact.
        assert all(len(ms) == 1 for ms in classes.values())

    def test_or_rule(self):
        c = Circuit("or")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.OR, ("a", "b"))
        c.add_output("y")
        collapsed = collapse_faults(c, all_faults(c))
        assert Fault("y", 1) not in collapsed  # merged into a/sa1 class
        assert len(collapsed) == 4  # 6 faults - 2 merged


class TestOnRealCircuits:
    def test_s27_shrinks(self, s27):
        universe = all_faults(s27)
        collapsed = collapse_faults(s27, universe)
        assert len(collapsed) < len(universe)
        assert set(collapsed) <= set(universe)

    def test_mapped_s27_shrinks_more_relatively(self, s27_mapped):
        universe = all_faults(s27_mapped)
        collapsed = collapse_faults(s27_mapped, universe)
        # NAND/NOR/INV netlists collapse well (many single-fanout stems).
        assert len(collapsed) <= 0.8 * len(universe)

    def test_deterministic(self, s27_mapped):
        a = collapse_faults(s27_mapped, all_faults(s27_mapped))
        b = collapse_faults(s27_mapped, all_faults(s27_mapped))
        assert a == b
