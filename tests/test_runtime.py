"""Unified runtime options: validation, precedence, session scoping."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.runtime import (
    RuntimeOptions,
    session_defaults,
    set_session_defaults,
    using,
)


class TestRuntimeOptionsValidation:
    def test_neutral_record_is_all_none(self):
        options = RuntimeOptions()
        assert all(value is None for value in
                   dataclasses.asdict(options).values())

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            RuntimeOptions().backend = "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            RuntimeOptions(backend="nope")

    def test_unknown_fault_backend_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            RuntimeOptions(fault_backend="nope")

    def test_shards_must_be_positive(self):
        with pytest.raises(ConfigError, match="shards"):
            RuntimeOptions(fault_backend="sharded", shards=0)

    def test_shards_require_sharded_fault_backend(self):
        with pytest.raises(ConfigError, match="sharded"):
            RuntimeOptions(fault_backend="bigint", shards=2)

    def test_stream_budget_must_be_non_negative(self):
        with pytest.raises(ConfigError, match="stream_budget"):
            RuntimeOptions(stream_budget=-1)

    def test_valid_combination_accepted(self):
        options = RuntimeOptions(backend="bigint",
                                 fault_backend="sharded", shards=2,
                                 episode_batch=False, fault_plan=True,
                                 stream_budget=0)
        assert options.shards == 2

    def test_replace(self):
        options = RuntimeOptions(stream_budget=7)
        patched = options.replace(episode_batch=False)
        assert patched.stream_budget == 7
        assert patched.episode_batch is False
        assert options.episode_batch is None  # original untouched

    def test_replace_revalidates(self):
        with pytest.raises(ConfigError):
            RuntimeOptions().replace(stream_budget=-3)

    def test_to_flow_kwargs_round_trips(self):
        from repro.core.config import FlowConfig
        options = RuntimeOptions(backend="bigint", stream_budget=5)
        config = FlowConfig(seed=1, **options.to_flow_kwargs())
        assert config.backend == "bigint"
        assert config.stream_budget == 5


class TestSessionDefaults:
    def test_install_and_read_back(self):
        installed = set_session_defaults(RuntimeOptions(stream_budget=9))
        assert session_defaults() is installed
        assert session_defaults().stream_budget == 9

    def test_kwargs_form_patches_current_session(self):
        set_session_defaults(RuntimeOptions(stream_budget=9))
        set_session_defaults(episode_batch=False)
        assert session_defaults().stream_budget == 9
        assert session_defaults().episode_batch is False

    def test_no_args_resets(self):
        set_session_defaults(RuntimeOptions(stream_budget=9))
        set_session_defaults()
        assert session_defaults().stream_budget is None

    def test_using_restores_previous(self):
        set_session_defaults(RuntimeOptions(stream_budget=1))
        with using(stream_budget=5):
            assert session_defaults().stream_budget == 5
        assert session_defaults().stream_budget == 1

    def test_using_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with using(stream_budget=5):
                raise RuntimeError("boom")
        assert session_defaults().stream_budget is None

    def test_using_accepts_options_record(self):
        with using(RuntimeOptions(episode_batch=False)):
            assert session_defaults().episode_batch is False


class TestPrecedence:
    """flag > session > env > built-in default, on every knob."""

    def test_episode_batching(self, monkeypatch):
        from repro.simulation.episode import episode_batching_enabled
        assert episode_batching_enabled(None) is True  # built-in
        monkeypatch.setenv("REPRO_EPISODE_BATCH", "0")
        assert episode_batching_enabled(None) is False  # env
        set_session_defaults(episode_batch=True)
        assert episode_batching_enabled(None) is True  # session > env
        assert episode_batching_enabled(False) is False  # flag wins

    def test_fault_planning(self, monkeypatch):
        from repro.simulation.fault_episode import fault_planning_enabled
        monkeypatch.setenv("REPRO_FAULT_PLAN", "1")
        set_session_defaults(fault_plan=False)
        assert fault_planning_enabled(None) is False
        assert fault_planning_enabled(True) is True

    def test_stream_budget(self, monkeypatch):
        from repro.simulation.streaming import resolve_stream_budget
        assert resolve_stream_budget(None) is None
        monkeypatch.setenv("REPRO_STREAM_BUDGET", "100")
        assert resolve_stream_budget(None) == 100
        set_session_defaults(stream_budget=50)
        assert resolve_stream_budget(None) == 50
        assert resolve_stream_budget(7) == 7
        assert resolve_stream_budget(0) is None  # 0 = explicit off

    def test_backend(self, monkeypatch):
        from repro.simulation.backends import default_backend_name
        assert default_backend_name() == "bigint"
        monkeypatch.setenv("REPRO_SIM_BACKEND", "numpy")
        set_session_defaults(backend="bigint")
        assert default_backend_name() == "bigint"  # session > env

    def test_fault_backend_falls_back_to_backend_chain(self,
                                                       monkeypatch):
        from repro.simulation.backends import default_fault_backend_name
        monkeypatch.delenv("REPRO_FAULT_BACKEND", raising=False)
        set_session_defaults(backend="numpy")
        assert default_fault_backend_name() == "numpy"
        set_session_defaults(backend="numpy", fault_backend="bigint")
        assert default_fault_backend_name() == "bigint"

    def test_sharded_shard_count(self, monkeypatch):
        from repro.simulation.backends import ShardedBackend
        monkeypatch.setenv("REPRO_SIM_SHARDS", "7")
        set_session_defaults(fault_backend="sharded", shards=3)
        assert ShardedBackend().configured_shards() == 3  # session > env
        assert ShardedBackend(shards=2).configured_shards() == 2


class TestDeprecatedShims:
    def test_episode_batching_shim(self):
        from repro.simulation.episode import (
            episode_batching_enabled,
            set_default_episode_batching,
        )
        with pytest.deprecated_call():
            set_default_episode_batching(False)
        assert session_defaults().episode_batch is False
        assert episode_batching_enabled(None) is False
        with pytest.deprecated_call():
            set_default_episode_batching(None)
        assert session_defaults().episode_batch is None

    def test_fault_planning_shim(self):
        from repro.simulation.fault_episode import (
            set_default_fault_planning,
        )
        with pytest.deprecated_call():
            set_default_fault_planning(False)
        assert session_defaults().fault_plan is False

    def test_stream_budget_shim(self):
        from repro.simulation.streaming import set_default_stream_budget
        with pytest.deprecated_call():
            set_default_stream_budget(123)
        assert session_defaults().stream_budget == 123

    def test_stream_budget_shim_keeps_error_contract(self):
        from repro.errors import SimulationError
        from repro.simulation.streaming import set_default_stream_budget
        with pytest.raises(SimulationError, match=">= 0"):
            set_default_stream_budget(-5)

    def test_set_default_backend_not_deprecated(self,
                                                recwarn):
        from repro.simulation.backends import set_default_backend
        set_default_backend("numpy")
        assert session_defaults().backend == "numpy"
        deprecations = [w for w in recwarn.list
                        if issubclass(w.category, DeprecationWarning)]
        assert not deprecations
