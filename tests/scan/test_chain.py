"""Tests for the scan chain model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ScanError
from repro.scan.chain import ScanCell, ScanChain


def make_chain(n: int) -> ScanChain:
    return ScanChain([ScanCell(q=f"q{i}", d=f"d{i}") for i in range(n)])


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ScanError):
            ScanChain([])

    def test_duplicates_rejected(self):
        cells = [ScanCell("q0", "d0"), ScanCell("q0", "d1")]
        with pytest.raises(ScanError):
            ScanChain(cells)

    def test_from_circuit_declaration_order(self, s27):
        chain = ScanChain.from_circuit(s27)
        assert chain.q_lines == ["G5", "G6", "G7"]
        assert chain.d_lines == ["G10", "G11", "G13"]

    def test_from_circuit_explicit_order(self, s27):
        chain = ScanChain.from_circuit(s27, order=["G7", "G5", "G6"])
        assert chain.q_lines == ["G7", "G5", "G6"]

    def test_from_circuit_bad_order(self, s27):
        with pytest.raises(ScanError):
            ScanChain.from_circuit(s27, order=["G5", "G6"])
        with pytest.raises(ScanError):
            ScanChain.from_circuit(s27, order=["G5", "G6", "G7", "X"])

    def test_from_circuit_seeded_shuffle_deterministic(self, s27):
        a = ScanChain.from_circuit(s27, seed=3)
        b = ScanChain.from_circuit(s27, seed=3)
        assert a.q_lines == b.q_lines

    def test_no_flops_rejected(self, c17):
        with pytest.raises(ScanError):
            ScanChain.from_circuit(c17)

    def test_position_of(self):
        chain = make_chain(4)
        assert chain.position_of("q2") == 2
        with pytest.raises(ScanError):
            chain.position_of("nope")


class TestShiftSemantics:
    def test_shift_once(self):
        chain = make_chain(3)
        assert chain.shift_once((1, 0, 1), 0) == (0, 1, 0)

    def test_shift_once_length_check(self):
        chain = make_chain(3)
        with pytest.raises(ScanError):
            chain.shift_once((1, 0), 0)

    def test_load_bits_reversed(self):
        chain = make_chain(4)
        assert chain.load_bits([1, 0, 0, 1]) == [1, 0, 0, 1][::-1]

    def test_load_states_ends_with_vector(self):
        chain = make_chain(5)
        vector = (1, 0, 1, 1, 0)
        states = chain.load_states((0,) * 5, vector)
        assert len(states) == 5
        assert states[-1] == vector

    def test_intermediate_states_mix_old_and_new(self):
        chain = make_chain(3)
        states = chain.load_states((1, 1, 1), (0, 0, 0))
        # After one shift the old content has moved one position down.
        assert states[0] == (0, 1, 1)
        assert states[1] == (0, 0, 1)
        assert states[2] == (0, 0, 0)

    def test_state_as_dict(self):
        chain = make_chain(3)
        assert chain.state_as_dict((1, 0, 1)) == {
            "q0": 1, "q1": 0, "q2": 1}

    @given(st.integers(1, 24), st.randoms())
    def test_load_always_lands_vector(self, n, rnd):
        chain = make_chain(n)
        initial = tuple(rnd.randint(0, 1) for _ in range(n))
        vector = tuple(rnd.randint(0, 1) for _ in range(n))
        states = chain.load_states(initial, vector)
        assert states[-1] == vector

    @given(st.integers(1, 16), st.randoms())
    def test_shift_is_a_delay_line(self, n, rnd):
        """Bit entering at t appears at position p at time t + p."""
        chain = make_chain(n)
        bits = [rnd.randint(0, 1) for _ in range(3 * n)]
        states = list(chain.shift_states((0,) * n, bits))
        for t, state in enumerate(states):
            for p in range(n):
                if t - p >= 0:
                    assert state[p] == bits[t - p]
