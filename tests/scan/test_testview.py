"""Tests for the scan test view and capture semantics."""

import pytest

from repro.errors import ScanError
from repro.scan.chain import ScanChain
from repro.scan.testview import ScanDesign, TestVector
from repro.simulation.eval2 import simulate_comb


class TestTestVector:
    def test_valid(self):
        TestVector(pi_values={"a": 1}, scan_state=(0, 1))

    def test_bad_pi_value(self):
        with pytest.raises(ScanError):
            TestVector(pi_values={"a": 2}, scan_state=(0,))

    def test_bad_state_bit(self):
        with pytest.raises(ScanError):
            TestVector(pi_values={}, scan_state=(0, 3))


class TestScanDesign:
    def test_requires_flops(self, c17):
        with pytest.raises(ScanError):
            ScanDesign(c17)

    def test_full_scan_defaults(self, s27_mapped):
        design = ScanDesign.full_scan(s27_mapped)
        assert design.pseudo_inputs == ["G5", "G6", "G7"]
        assert design.pseudo_outputs == ["G10", "G11", "G13"]
        assert design.controllable_lines[:4] == list(s27_mapped.inputs)

    def test_chain_circuit_mismatch_rejected(self, s27_mapped, toy_mapped):
        foreign_chain = ScanChain.from_circuit(toy_mapped)
        with pytest.raises(ScanError):
            ScanDesign(s27_mapped, foreign_chain)

    def test_comb_assignment(self, s27_design):
        assignment = s27_design.comb_assignment(
            (1, 0, 1), {"G0": 0, "G1": 1, "G2": 0, "G3": 1})
        assert assignment["G5"] == 1
        assert assignment["G6"] == 0
        assert assignment["G1"] == 1

    def test_capture_matches_direct_simulation(self, s27_design):
        vector = TestVector(
            pi_values={"G0": 1, "G1": 0, "G2": 1, "G3": 0},
            scan_state=(1, 1, 0))
        captured, po_values = s27_design.capture(vector)
        values = simulate_comb(
            s27_design.circuit,
            s27_design.comb_assignment(vector.scan_state,
                                       vector.pi_values))
        assert captured == tuple(values[d]
                                 for d in s27_design.pseudo_outputs)
        assert po_values == {"G17": values["G17"]}

    def test_capture_is_deterministic(self, s27_design):
        vector = TestVector(
            pi_values={"G0": 0, "G1": 0, "G2": 0, "G3": 0},
            scan_state=(0, 0, 0))
        assert s27_design.capture(vector) == s27_design.capture(vector)
