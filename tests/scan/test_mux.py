"""Tests for physical MUX insertion."""

import pytest

from repro.errors import ScanError
from repro.netlist.gates import GateType
from repro.scan.mux import SHIFT_ENABLE, MuxPlan, insert_muxes
from repro.simulation.eval2 import comb_input_lines, simulate_comb


class TestMuxPlan:
    def test_muxed_lines(self):
        plan = MuxPlan(tie_values={"q1": 0, "q2": 1})
        assert plan.muxed_lines == {"q1", "q2"}

    def test_area_overhead(self, library):
        plan = MuxPlan(tie_values={"q1": 0, "q2": 1})
        per_mux = (library.spec(GateType.MUX2, 3).area_um2
                   + library.spec(GateType.CONST0, 0).area_um2)
        assert plan.area_overhead_um2(library) == pytest.approx(2 * per_mux)

    def test_empty_plan_free(self, library):
        assert MuxPlan(tie_values={}).area_overhead_um2(library) == 0.0


class TestInsertMuxes:
    def test_structure(self, s27_mapped):
        plan = MuxPlan(tie_values={"G5": 1})
        rewritten = insert_muxes(s27_mapped, plan)
        assert rewritten.has_line(SHIFT_ENABLE)
        mux = rewritten.gates["G5__mux"]
        assert mux.gtype is GateType.MUX2
        assert mux.inputs == (SHIFT_ENABLE, "G5", "G5__tie")
        assert rewritten.gates["G5__tie"].gtype is GateType.CONST1

    def test_sinks_rewired(self, s27_mapped):
        plan = MuxPlan(tie_values={"G5": 0})
        original_sinks = [s for s, _ in s27_mapped.fanout("G5")]
        rewritten = insert_muxes(s27_mapped, plan)
        for sink in original_sinks:
            assert "G5__mux" in rewritten.gates[sink].inputs
            assert "G5" not in rewritten.gates[sink].inputs

    def test_original_untouched(self, s27_mapped):
        plan = MuxPlan(tie_values={"G5": 0})
        insert_muxes(s27_mapped, plan)
        assert not s27_mapped.has_line("G5__mux")

    def test_non_pseudo_input_rejected(self, s27_mapped):
        with pytest.raises(ScanError):
            insert_muxes(s27_mapped, MuxPlan(tie_values={"G0": 0}))

    def test_bad_tie_value_rejected(self, s27_mapped):
        with pytest.raises(ScanError):
            insert_muxes(s27_mapped, MuxPlan(tie_values={"G5": 2}))

    def test_normal_mode_function_preserved(self, s27_mapped):
        """With shift enable low the rewritten circuit must behave
        identically (the MUX is transparent to Q)."""
        plan = MuxPlan(tie_values={"G5": 1, "G6": 0})
        rewritten = insert_muxes(s27_mapped, plan)
        for code in range(2 ** 7):
            lines = comb_input_lines(s27_mapped)
            inputs = {line: (code >> i) & 1
                      for i, line in enumerate(lines)}
            base = simulate_comb(s27_mapped, inputs)
            values = dict(inputs)
            values[SHIFT_ENABLE] = 0
            rewired = simulate_comb(rewritten, values)
            for po in s27_mapped.outputs:
                assert rewired[po] == base[po]
            for dff in s27_mapped.dff_gates:
                assert rewired[dff.inputs[0]] == base[dff.inputs[0]]

    def test_shift_mode_presents_ties(self, s27_mapped):
        """With shift enable high, the mux output equals the tie value
        regardless of Q."""
        plan = MuxPlan(tie_values={"G5": 1})
        rewritten = insert_muxes(s27_mapped, plan)
        lines = comb_input_lines(s27_mapped)
        for q_value in (0, 1):
            inputs = {line: 0 for line in lines}
            inputs["G5"] = q_value
            inputs[SHIFT_ENABLE] = 1
            values = simulate_comb(rewritten, inputs)
            assert values["G5__mux"] == 1
