"""Tests for multiple parallel scan chains."""

import pytest

from repro.errors import ScanError
from repro.power.scanpower import ShiftPolicy, evaluate_scan_power
from repro.scan.chain import ScanCell, ScanChain
from repro.scan.multichain import (
    MultiChainDesign,
    evaluate_multichain_power,
    total_test_cycles,
)
from repro.scan.testview import ScanDesign, TestVector


@pytest.fixture
def toy_multi(toy_mapped):
    return MultiChainDesign.partition(toy_mapped, 2)


def _vectors(design_q_lines, circuit, n, seed=0):
    from repro.utils.rng import make_rng
    rng = make_rng(seed)
    out = []
    for _ in range(n):
        pis = {pi: int(rng.integers(2)) for pi in circuit.inputs}
        state = tuple(int(rng.integers(2)) for _ in design_q_lines)
        out.append(TestVector(pi_values=pis, scan_state=state))
    return out


class TestConstruction:
    def test_partition_balances(self, toy_mapped):
        design = MultiChainDesign.partition(toy_mapped, 2)
        lengths = [c.length for c in design.chains]
        assert sum(lengths) == 6
        assert max(lengths) - min(lengths) <= 1

    def test_partition_bad_counts(self, toy_mapped):
        with pytest.raises(ScanError):
            MultiChainDesign.partition(toy_mapped, 0)
        with pytest.raises(ScanError):
            MultiChainDesign.partition(toy_mapped, 7)

    def test_coverage_enforced(self, toy_mapped):
        cells = [ScanCell("q0", "d0"), ScanCell("q1", "d1")]
        with pytest.raises(ScanError, match="cover exactly"):
            MultiChainDesign(toy_mapped, [ScanChain(cells)])

    def test_overlap_rejected(self, toy_mapped):
        full = [ScanCell(f"q{i}", f"d{i}") for i in range(6)]
        with pytest.raises(ScanError, match="multiple chains"):
            MultiChainDesign(toy_mapped, [ScanChain(full),
                                          ScanChain(full[:1])])

    def test_global_order(self, toy_multi):
        q = toy_multi.global_q_lines
        assert len(q) == 6
        assert q[:toy_multi.chains[0].length] == \
            toy_multi.chains[0].q_lines

    def test_split_state(self, toy_multi):
        state = tuple(range(6))  # not bits, but split is structural
        slices = toy_multi.split_state(state)
        assert [len(s) for s in slices] == \
            [c.length for c in toy_multi.chains]
        assert sum(slices, ()) == state


class TestCaptureConsistency:
    def test_capture_matches_single_chain(self, toy_mapped, toy_multi):
        vectors = _vectors(toy_multi.global_q_lines, toy_mapped, 4)
        single = ScanDesign(
            toy_mapped,
            ScanChain([c for ch in toy_multi.chains for c in ch.cells]))
        for vector in vectors:
            multi_cap, multi_po = toy_multi.capture(vector)
            single_cap, single_po = single.capture(vector)
            assert multi_cap == single_cap
            assert multi_po == single_po


class TestPowerEvaluation:
    def test_one_chain_equals_single_chain_evaluator(self, toy_mapped):
        multi = MultiChainDesign.partition(toy_mapped, 1)
        single = multi.as_single_chain_design()
        vectors = _vectors(multi.global_q_lines, toy_mapped, 5, seed=2)
        a = evaluate_multichain_power(multi, vectors)
        b = evaluate_scan_power(single, vectors)
        assert a.n_cycles == b.n_cycles
        assert a.total_transitions == b.total_transitions
        assert a.dynamic_uw_per_hz == pytest.approx(b.dynamic_uw_per_hz)
        assert a.static_uw == pytest.approx(b.static_uw)

    def test_more_chains_fewer_cycles(self, toy_mapped):
        vectors = _vectors(range(6), toy_mapped, 5, seed=3)
        one = evaluate_multichain_power(
            MultiChainDesign.partition(toy_mapped, 1), vectors)
        three = evaluate_multichain_power(
            MultiChainDesign.partition(toy_mapped, 3), vectors)
        assert three.n_cycles < one.n_cycles
        assert three.n_cycles == 5 * (2 + 1)  # ceil(6/3)=2 shifts + cap

    def test_policy_applies(self, toy_mapped):
        design = MultiChainDesign.partition(toy_mapped, 2)
        vectors = _vectors(design.global_q_lines, toy_mapped, 5, seed=4)
        policy = ShiftPolicy(
            name="blocked",
            pi_values={pi: 0 for pi in toy_mapped.inputs},
            mux_ties={q: 0 for q in design.global_q_lines})
        report = evaluate_multichain_power(design, vectors, policy,
                                           include_capture=False)
        assert report.total_transitions == 0

    def test_report_names_chains(self, toy_multi, toy_mapped):
        vectors = _vectors(toy_multi.global_q_lines, toy_mapped, 2)
        report = evaluate_multichain_power(toy_multi, vectors)
        assert "2chains" in report.policy_name

    def test_empty_vectors_rejected(self, toy_multi):
        with pytest.raises(ScanError):
            evaluate_multichain_power(toy_multi, [])

    def test_unknown_mux_rejected(self, toy_multi, toy_mapped):
        vectors = _vectors(toy_multi.global_q_lines, toy_mapped, 1)
        with pytest.raises(ScanError):
            evaluate_multichain_power(
                toy_multi, vectors,
                ShiftPolicy(mux_ties={"ghost": 1}))


class TestTestTime:
    def test_cycle_accounting(self, toy_mapped):
        one = MultiChainDesign.partition(toy_mapped, 1)
        two = MultiChainDesign.partition(toy_mapped, 2)
        assert total_test_cycles(one, 10) == 10 * 7
        assert total_test_cycles(two, 10) == 10 * 4
        assert total_test_cycles(two, 10, include_capture=False) == 30


class TestEpisodeBatchRouting:
    """Multichain evaluation rides ``simulate_episode_batch``: forced
    cycle-axis sharding must be invisible in the report."""

    def test_sharded_chunks_match_plain_backends(self, toy_mapped,
                                                 toy_multi):
        from repro.simulation.backends import ShardedBackend
        vectors = _vectors(toy_multi.global_q_lines, toy_mapped, 4,
                           seed=3)
        reference = evaluate_multichain_power(toy_multi, vectors,
                                              backend="bigint")
        plain = evaluate_multichain_power(toy_multi, vectors,
                                          backend="numpy")
        assert plain == reference
        forced = ShardedBackend(shards=2, episode_budget=4)
        sharded = evaluate_multichain_power(toy_multi, vectors,
                                            backend=forced)
        assert sharded == reference

    def test_serial_escape_hatch_matches(self, toy_mapped, toy_multi):
        vectors = _vectors(toy_multi.global_q_lines, toy_mapped, 3,
                           seed=4)
        batched = evaluate_multichain_power(toy_multi, vectors,
                                            episode_batch=True)
        serial = evaluate_multichain_power(toy_multi, vectors,
                                           episode_batch=False)
        assert batched == serial
