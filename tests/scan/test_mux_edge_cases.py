"""Edge cases of physical MUX insertion."""

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.scan.mux import SHIFT_ENABLE, MuxPlan, insert_muxes
from repro.simulation.eval2 import simulate_comb


def q_is_po_circuit() -> Circuit:
    """A flop whose Q is both a primary output and a logic input."""
    c = Circuit("q_po")
    c.add_input("a")
    c.add_gate("q0", GateType.DFF, ("d0",))
    c.add_gate("g", GateType.NAND, ("q0", "a"))
    c.add_gate("d0", GateType.NOT, ("g",))
    c.add_output("q0")
    c.add_output("g")
    c.validate()
    return c


class TestQIsPrimaryOutput:
    def test_po_connection_stays_direct(self):
        c = q_is_po_circuit()
        rewritten = insert_muxes(c, MuxPlan(tie_values={"q0": 1}))
        # The PO is still the raw Q line, not the mux output.
        assert rewritten.is_output("q0")
        assert not rewritten.is_output("q0__mux")

    def test_gate_sinks_rewired_po_value_tracks_q(self):
        c = q_is_po_circuit()
        rewritten = insert_muxes(c, MuxPlan(tie_values={"q0": 1}))
        values = simulate_comb(rewritten, {
            "a": 1, "q0": 0, SHIFT_ENABLE: 1})
        # Shift mode: logic sees the tie (1), the PO still sees Q (0).
        assert values["q0__mux"] == 1
        assert values["q0"] == 0
        assert values["g"] == 0  # NAND(1, 1)


class TestMultipleInsertions:
    def test_second_insertion_with_existing_shift_enable(self, s27_mapped):
        first = insert_muxes(s27_mapped, MuxPlan(tie_values={"G5": 0}))
        second = insert_muxes(first, MuxPlan(tie_values={"G6": 1}))
        # shift enable was reused, not duplicated
        assert second.inputs.count(SHIFT_ENABLE) == 1
        assert second.has_line("G5__mux")
        assert second.has_line("G6__mux")

    def test_name_collision_detected(self, s27_mapped):
        clash = s27_mapped.copy()
        clash.add_gate("G5__mux", GateType.NOT, ("G0",))
        from repro.errors import ScanError
        with pytest.raises(ScanError, match="collision"):
            insert_muxes(clash, MuxPlan(tie_values={"G5": 0}))


class TestConstantPropagationInteraction:
    def test_tie_cells_survive_sweep(self, s27_mapped):
        """Tie cells feed MUXes, so dangling-logic sweep keeps them."""
        from repro.netlist.transform import sweep_dangling
        rewritten = insert_muxes(s27_mapped,
                                 MuxPlan(tie_values={"G5": 0}))
        sweep_dangling(rewritten)
        assert rewritten.has_line("G5__tie")
