"""Tests for scan-cell / test-vector reordering (the paper's epilogue)."""

import numpy as np
import pytest

from repro.atpg.generate import AtpgConfig, generate_tests
from repro.errors import ScanError
from repro.power.scanpower import evaluate_scan_power
from repro.scan.ordering import (
    hamming_path_cost,
    reorder_chain,
    reorder_vectors,
)
from repro.scan.testview import TestVector


class TestHammingPathCost:
    def test_empty_and_single(self):
        assert hamming_path_cost(np.zeros((0, 4), dtype=np.int8)) == 0
        assert hamming_path_cost(np.zeros((1, 4), dtype=np.int8)) == 0

    def test_manual(self):
        rows = np.array([[0, 0], [0, 1], [1, 1]], dtype=np.int8)
        assert hamming_path_cost(rows) == 2

    def test_identical_rows_free(self):
        rows = np.ones((5, 3), dtype=np.int8)
        assert hamming_path_cost(rows) == 0


class TestReorderVectors:
    def test_empty_rejected(self, s27_design):
        with pytest.raises(ScanError):
            reorder_vectors(s27_design, [])

    def test_keeps_multiset_of_vectors(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 10, seed=3)
        reordered, result = reorder_vectors(s27_design, vectors)
        assert sorted(v.scan_state for v in reordered) == \
            sorted(v.scan_state for v in vectors)
        assert sorted(result.order) == list(range(10))

    def test_never_worse(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 12, seed=4)
        _reordered, result = reorder_vectors(s27_design, vectors)
        assert result.cost_after <= result.cost_before

    def test_finds_obvious_order(self, s27_design):
        """Three states where the natural sorted order is optimal."""
        pis = {pi: 0 for pi in s27_design.circuit.inputs}
        a = TestVector(pis, (0, 0, 0))
        b = TestVector(pis, (1, 1, 1))
        c = TestVector(pis, (1, 1, 0))
        reordered, result = reorder_vectors(s27_design, [a, b, c])
        assert result.cost_after == 3  # 000 -> 110 -> 111 or reverse
        states = [v.scan_state for v in reordered]
        assert states[1] == (1, 1, 0)  # the middle state must be b/c's

    def test_muxed_columns_ignored(self, s27_design):
        """Differences confined to muxed cells must cost nothing."""
        pis = {pi: 0 for pi in s27_design.circuit.inputs}
        muxed = {s27_design.chain.q_lines[0]}
        a = TestVector(pis, (0, 0, 0))
        b = TestVector(pis, (1, 0, 0))  # differs only in the muxed cell
        _reordered, result = reorder_vectors(s27_design, [a, b],
                                             muxed=muxed)
        assert result.cost_before == 0


class TestReorderChain:
    def test_design_still_valid(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 8, seed=5)
        new_design, remapped, result = reorder_chain(s27_design, vectors)
        assert set(new_design.chain.q_lines) == \
            set(s27_design.chain.q_lines)
        assert len(remapped) == len(vectors)
        assert result.cost_after <= result.cost_before

    def test_vectors_load_same_values_per_cell(self, s27_design,
                                               make_vectors):
        """Remapped vectors must assign each *named* cell the same value
        as before — only chain positions change."""
        vectors = make_vectors(s27_design, 6, seed=6)
        new_design, remapped, _result = reorder_chain(s27_design, vectors)
        for old, new in zip(vectors, remapped):
            old_map = s27_design.chain.state_as_dict(old.scan_state)
            new_map = new_design.chain.state_as_dict(new.scan_state)
            assert old_map == new_map

    def test_capture_results_unchanged(self, s27_design, make_vectors):
        """Chain order must not change captured responses per cell."""
        vectors = make_vectors(s27_design, 4, seed=7)
        new_design, remapped, _result = reorder_chain(s27_design, vectors)
        for old, new in zip(vectors, remapped):
            old_capture, old_po = s27_design.capture(old)
            new_capture, new_po = new_design.capture(new)
            assert old_po == new_po
            old_named = dict(zip(s27_design.chain.d_lines, old_capture))
            new_named = dict(zip(new_design.chain.d_lines, new_capture))
            assert old_named == new_named

    def test_single_active_cell_noop(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 4, seed=8)
        muxed = set(s27_design.chain.q_lines[:2])
        new_design, remapped, result = reorder_chain(
            s27_design, vectors, muxed=muxed)
        assert new_design is s27_design
        assert result.cost_before == result.cost_after == 0


class TestPowerEffect:
    def test_vector_reordering_helps_traditional_scan(self, toy_mapped):
        """On a real test set, reordering should not increase the shift
        transition count (usually it reduces it)."""
        from repro.scan.testview import ScanDesign
        design = ScanDesign.full_scan(toy_mapped)
        tests = generate_tests(design, AtpgConfig(seed=2))
        base = evaluate_scan_power(design, tests.vectors,
                                   include_capture=False)
        reordered, result = reorder_vectors(design, tests.vectors)
        improved = evaluate_scan_power(design, reordered,
                                       include_capture=False)
        assert result.cost_after <= result.cost_before
        # The Hamming proxy does not guarantee strict improvement in
        # weighted transitions, but it must not blow power up:
        assert improved.total_transitions <= \
            base.total_transitions * 1.25
