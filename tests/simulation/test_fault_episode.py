"""Unit tests for the fault x pattern batched replay subsystem."""

import numpy as np
import pytest

from repro.atpg.faults import all_faults
from repro.atpg.faultsim import fault_simulate
from repro.errors import SimulationError
from repro.netlist import builders
from repro.simulation.backends import ShardedBackend, get_backend
from repro.simulation.backends.fault_kernel import (
    _BATCH_ELEMENT_BUDGET,
    _MAX_BATCH_FAULTS,
    _MIN_BATCH_FAULTS,
    cached_fault_plan,
    fault_simulate_matrix,
    tile_geometry,
)
from repro.simulation.bitsim import random_input_words
from repro.simulation.fault_episode import (
    DEFAULT_FAULT_PLAN_ENV,
    FaultEpisodePlan,
    FaultSimSession,
    compile_fault_episode_plan,
    fault_planning_enabled,
    set_default_fault_planning,
)
from repro.techmap.mapper import technology_map
from repro.utils.rng import make_rng


@pytest.fixture
def mapped():
    return technology_map(builders.toy_scan_circuit())


@pytest.fixture
def stimulus(mapped):
    n = 130  # three uint64 words, ragged tail
    return random_input_words(mapped, n, make_rng(9)), n


class TestToggle:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_FAULT_PLAN_ENV, raising=False)
        assert fault_planning_enabled() is True

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("on", True), ("true", True),
        ("0", False), ("off", False), ("no", False),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv(DEFAULT_FAULT_PLAN_ENV, value)
        assert fault_planning_enabled() is expected

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_FAULT_PLAN_ENV, "maybe")
        with pytest.raises(SimulationError, match="REPRO_FAULT_PLAN"):
            fault_planning_enabled()

    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_FAULT_PLAN_ENV, "0")
        assert fault_planning_enabled(True) is True

    def test_session_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_FAULT_PLAN_ENV, "1")
        set_default_fault_planning(False)
        try:
            assert fault_planning_enabled() is False
        finally:
            set_default_fault_planning(None)


class TestPlan:
    def test_geometry(self, mapped, stimulus):
        words, n = stimulus
        faults = all_faults(mapped)
        plan = compile_fault_episode_plan(mapped, faults, words, n)
        assert plan.n_faults == len(faults)
        assert plan.n == n
        assert plan.n_words == (n + 63) // 64
        assert plan.faults == tuple(faults)

    def test_rejects_empty_pattern_set(self, mapped):
        with pytest.raises(SimulationError, match=">= 1 pattern"):
            FaultEpisodePlan(mapped, (), {}, 0)

    def test_good_state_memoized_per_backend(self, mapped, stimulus):
        words, n = stimulus
        plan = compile_fault_episode_plan(mapped, all_faults(mapped),
                                          words, n)
        backend = get_backend("numpy")
        first = plan.good_state(backend)
        assert plan.good_state(backend) is first
        other = plan.good_state(get_backend("bigint"))
        assert other is not first
        assert plan.good_words(backend) is plan.good_words(backend)

    def test_good_words_match_backend(self, mapped, stimulus):
        words, n = stimulus
        plan = compile_fault_episode_plan(mapped, all_faults(mapped),
                                          words, n)
        got = plan.good_words(get_backend("numpy"))
        expected = get_backend("bigint").simulate_packed(mapped, words, n)
        assert got == expected


class TestTileGeometry:
    def test_default_matches_1d_batching(self, mapped, stimulus):
        """With the default budget, small problems keep the legacy 1-D
        shape: full pattern width, fault chunk in [min, max]."""
        words, n = stimulus
        get_backend("numpy").run(mapped, words, n)  # warm schedule
        plan = cached_fault_plan(mapped)
        n_words = (n + 63) // 64
        f_tile, w_tile = tile_geometry(plan, n_words)
        assert w_tile == n_words
        assert _MIN_BATCH_FAULTS <= f_tile <= _MAX_BATCH_FAULTS
        assert f_tile == min(
            _MAX_BATCH_FAULTS,
            _BATCH_ELEMENT_BUDGET // (plan.n_rows * n_words))

    def test_wide_pattern_sets_tile_the_word_axis(self, mapped, stimulus):
        words, n = stimulus
        get_backend("numpy").run(mapped, words, n)
        plan = cached_fault_plan(mapped)
        # A budget below min-faults x full-width forces word tiling.
        budget = plan.n_rows * _MIN_BATCH_FAULTS * 2
        f_tile, w_tile = tile_geometry(plan, 8, budget)
        assert f_tile == _MIN_BATCH_FAULTS
        assert w_tile == 2
        # Degenerate budget still yields a legal geometry.
        assert tile_geometry(plan, 8, 1) == (_MIN_BATCH_FAULTS, 1)

    def test_deterministic(self, mapped, stimulus):
        words, n = stimulus
        get_backend("numpy").run(mapped, words, n)
        plan = cached_fault_plan(mapped)
        assert tile_geometry(plan, 7) == tile_geometry(plan, 7)

    def test_tiled_kernel_bit_identical(self, mapped, stimulus):
        """Forcing multi-tile geometries on both axes must not change a
        single detection bit."""
        words, n = stimulus
        faults = all_faults(mapped)
        reference = fault_simulate(mapped, faults, words, n,
                                   backend="bigint")
        state = get_backend("numpy").run(mapped, words, n)
        plan = cached_fault_plan(mapped)
        for budget in (1, plan.n_rows * _MIN_BATCH_FAULTS * 2, None):
            got = fault_simulate_matrix(state, faults,
                                        element_budget=budget)
            assert got.detected == reference.detected, budget
            assert list(got.detected) == list(reference.detected), budget
            assert got.remaining == reference.remaining, budget


class TestSession:
    def test_plan_and_legacy_paths_identical(self, mapped, stimulus):
        words, n = stimulus
        faults = all_faults(mapped)
        for backend in ("bigint", "numpy"):
            on = FaultSimSession(mapped, backend, plan=True)
            off = FaultSimSession(mapped, backend, plan=False)
            for drop in (True, False):
                a = on.simulate(faults, words, n, drop=drop)
                b = off.simulate(faults, words, n, drop=drop)
                assert a.detected == b.detected, (backend, drop)
                assert list(a.detected) == list(b.detected), \
                    (backend, drop)
                assert a.remaining == b.remaining, (backend, drop)

    def test_good_state_reused_across_identical_stimuli(self, mapped,
                                                        stimulus):
        """Two plan-path calls on the same stimulus must settle the good
        machine once (the session's state pool hits)."""
        words, n = stimulus
        faults = all_faults(mapped)

        class CountingBackend(type(get_backend("numpy"))):
            name = "numpy"
            runs = 0

            def run(self, circuit, input_words, n):
                CountingBackend.runs += 1
                return super().run(circuit, input_words, n)

        session = FaultSimSession(mapped, CountingBackend(), plan=True)
        session.simulate(faults, words, n, drop=True)
        session.simulate(faults[: len(faults) // 2], words, n, drop=False)
        assert CountingBackend.runs == 1

    def test_state_pool_is_bounded(self, mapped):
        session = FaultSimSession(mapped, "numpy", plan=True)
        faults = all_faults(mapped)[:4]
        rng = make_rng(1)
        for i in range(7):
            words = random_input_words(mapped, 8, rng)
            session.simulate(faults, words, 8)
        assert len(session._state_pool) <= 4

    def test_cone_cache_shared_with_legacy_path(self, mapped, stimulus):
        """The session's cone cache fills on the scalar path — including
        the no-drop matrix call that used to rebuild every cone."""
        words, n = stimulus
        session = FaultSimSession(mapped, "bigint", plan=False)
        session.simulate(all_faults(mapped), words, n, drop=False)
        assert session.cone_cache  # populated once, reused afterwards

    def test_session_resolves_toggle_once(self, mapped):
        set_default_fault_planning(False)
        try:
            session = FaultSimSession(mapped, "bigint")
            assert session.plan_enabled is False
        finally:
            set_default_fault_planning(None)
        assert FaultSimSession(mapped, "bigint").plan_enabled is True


class TestShardedPlanAxes:
    def test_drop_mode_shards_fault_axis_inline_threshold(self, mapped,
                                                          stimulus):
        """Below the per-shard fault floor the plan runs inline on the
        inner engine (no workers)."""
        words, n = stimulus
        backend = ShardedBackend(shards=2, min_faults_per_shard=10_000)
        plan = compile_fault_episode_plan(mapped, all_faults(mapped),
                                          words, n)
        got = backend.fault_simulate_plan(plan, drop=True)
        reference = fault_simulate(mapped, all_faults(mapped), words, n,
                                   backend="numpy")
        assert got.detected == reference.detected

    def test_no_drop_single_word_runs_inline(self, mapped):
        words = random_input_words(mapped, 48, make_rng(3))
        backend = ShardedBackend(shards=4, min_faults_per_shard=1)
        plan = compile_fault_episode_plan(mapped, all_faults(mapped),
                                          words, 48)
        got = backend.fault_simulate_plan(plan, drop=False)
        reference = fault_simulate(mapped, all_faults(mapped), words, 48,
                                   backend="bigint")
        assert got.detected == reference.detected
        assert got.remaining == reference.remaining

    def test_pattern_axis_merge_is_exact(self, mapped, stimulus):
        """Forced multi-window no-drop replay ORs back to the exact
        single-pass detection words (real worker processes)."""
        words, n = stimulus
        faults = all_faults(mapped)
        reference = fault_simulate(mapped, faults, words, n,
                                   backend="bigint")
        backend = ShardedBackend(shards=3, min_faults_per_shard=1)
        plan = compile_fault_episode_plan(mapped, faults, words, n)
        got = backend.fault_simulate_plan(plan, drop=False)
        assert got.detected == reference.detected
        assert list(got.detected) == list(reference.detected)
        assert got.remaining == reference.remaining

    def test_pooled_dispatch_both_axes(self, mapped, stimulus):
        """A persistent worker pool serves both shard axes (no per-call
        fork) and stays bit-identical."""
        from repro.campaign.pool import WorkerPool

        words, n = stimulus
        faults = all_faults(mapped)
        reference = fault_simulate(mapped, faults, words, n, drop=False,
                                   backend="bigint")
        with WorkerPool(processes=2) as pool:
            backend = ShardedBackend(shards=2, min_faults_per_shard=1,
                                     pool=pool)
            for drop in (True, False):
                plan = compile_fault_episode_plan(mapped, faults, words,
                                                  n)
                got = backend.fault_simulate_plan(plan, drop=drop)
                assert got.detected == reference.detected, drop
                assert got.remaining == reference.remaining, drop

    def test_merge_pattern_axis_pure(self):
        """The window merge is pure integer arithmetic on word offsets."""
        from repro.atpg.faults import Fault
        from repro.atpg.faultsim import FaultSimResult
        f1, f2, f3 = Fault("a", 0), Fault("a", 1), Fault("b", 0)
        parts = [
            FaultSimResult(detected={f1: 0b01}, remaining=[f2, f3]),
            FaultSimResult(detected={f2: 0b10}, remaining=[f1, f3]),
        ]
        merged = ShardedBackend._merge_pattern_axis(
            [f1, f2, f3], [(0, 64), (64, 128)], parts)
        assert merged.detected == {f1: 0b01, f2: 0b10 << 64}
        assert list(merged.detected) == [f1, f2]
        assert merged.remaining == [f3]


class TestGreedyKeepEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_vectorized_equals_bigint(self, seed):
        from repro.atpg.faultsim import FaultSimResult
        from repro.atpg.generate import (
            _greedy_keep_bigint,
            _greedy_keep_vectorized,
        )
        gen = np.random.default_rng(seed)
        n_vectors = int(gen.integers(1, 40))
        n_faults = int(gen.integers(1, 60))
        words = {}
        from repro.atpg.faults import Fault
        for i in range(n_faults):
            word = int.from_bytes(
                gen.integers(0, 256, size=(n_vectors + 7) // 8,
                             dtype=np.uint8).tobytes(), "little")
            word &= (1 << n_vectors) - 1
            if word:
                words[Fault(f"l{i}", 0)] = word
        matrix = FaultSimResult(detected=words, remaining=[])
        assert _greedy_keep_vectorized(matrix, n_vectors) == \
            _greedy_keep_bigint(matrix, n_vectors)
