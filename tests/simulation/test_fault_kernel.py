"""Unit tests for the fused numpy fault-simulation kernel.

Bit-identity on random circuits is pinned by the differential property
suite; here we exercise the kernel's edge geometry directly: plan
caching and invalidation, word-boundary pattern counts, faults on
observable/input/stem lines, and mixed gate types (MUX/XOR/CONST cones).
"""

import pytest

from repro.atpg.faults import Fault, all_faults
from repro.atpg.faultsim import fault_simulate
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.simulation.backends.fault_kernel import (
    FaultSimPlan,
    cached_fault_plan,
)
from repro.simulation.bitsim import (
    pack_input_vectors,
    random_input_words,
)
from repro.utils.rng import make_rng


def _assert_identical(circuit, faults, words, n):
    ref = fault_simulate(circuit, faults, words, n, backend="bigint")
    got = fault_simulate(circuit, faults, words, n, backend="numpy")
    assert got.detected == ref.detected
    assert list(got.detected) == list(ref.detected)
    assert got.remaining == ref.remaining
    return ref


class TestPlanCache:
    def test_plan_is_reused(self, s27_mapped):
        plan_a = cached_fault_plan(s27_mapped)
        plan_b = cached_fault_plan(s27_mapped)
        assert plan_a is plan_b

    def test_mutation_invalidates_plan(self, s27_mapped):
        plan_a = cached_fault_plan(s27_mapped)
        line = s27_mapped.topo_order()[0]
        gate = s27_mapped.gates[line]
        s27_mapped.replace_gate(line, gate.gtype, gate.inputs)
        plan_b = cached_fault_plan(s27_mapped)
        assert plan_a is not plan_b
        assert plan_b.version == s27_mapped.version

    def test_cache_does_not_keep_circuits_alive(self):
        """The plan cache is weak-keyed; a plan holding a strong circuit
        ref would defeat eviction and leak every simulated circuit."""
        import gc
        import weakref

        from repro.benchgen.generator import generate_from_stats
        from repro.benchgen.iscas89 import Iscas89Stats
        from repro.simulation.bitsim import random_input_words
        from repro.utils.rng import make_rng

        circuit = generate_from_stats(
            Iscas89Stats("leak", 4, 2, 3, 20), seed=0)
        ref = weakref.ref(circuit)
        words = random_input_words(circuit, 16, make_rng(0))
        fault_simulate(circuit, all_faults(circuit), words, 16,
                       backend="numpy")
        del circuit, words
        gc.collect()
        assert ref() is None

    def test_cone_rows_are_topological(self, s27_mapped):
        plan = FaultSimPlan(s27_mapped)
        for line in list(s27_mapped.lines())[:8]:
            rows = plan.cone_rows(line)
            assert (rows[:-1] < rows[1:]).all() if rows.size > 1 else True
            assert plan.schedule.line_index.get(line) not in rows.tolist()


class TestKernelGeometry:
    @pytest.mark.parametrize("n", [1, 63, 64, 65, 128, 200])
    def test_word_boundaries(self, s27_mapped, n):
        faults = all_faults(s27_mapped)
        words = random_input_words(s27_mapped, n, make_rng(n))
        _assert_identical(s27_mapped, faults, words, n)

    def test_mixed_gate_types_in_cone(self):
        circuit = Circuit("mixy")
        a = circuit.add_input("a")
        b = circuit.add_input("b")
        s = circuit.add_input("s")
        circuit.add_gate("x", GateType.XOR, (a, b))
        circuit.add_gate("m", GateType.MUX2, (s, "x", b))
        circuit.add_gate("q", GateType.XNOR, ("m", a))
        circuit.add_gate("y", GateType.NAND, ("q", "m"))
        circuit.add_output("y")
        faults = all_faults(circuit)
        words = random_input_words(circuit, 100, make_rng(7))
        _assert_identical(circuit, faults, words, 100)

    def test_fault_on_observable_line(self, s27_mapped):
        po = s27_mapped.outputs[0]
        faults = [Fault(po, 0), Fault(po, 1)]
        words = random_input_words(s27_mapped, 64, make_rng(2))
        result = _assert_identical(s27_mapped, faults, words, 64)
        assert result.n_detected == 2  # a PO stem is always observable

    def test_fault_on_primary_input(self, s27_mapped):
        pi = s27_mapped.inputs[0]
        faults = [Fault(pi, 0), Fault(pi, 1)]
        words = random_input_words(s27_mapped, 64, make_rng(3))
        _assert_identical(s27_mapped, faults, words, 64)

    def test_duplicate_faults_share_one_evaluation(self, s27_mapped):
        fault = Fault(s27_mapped.inputs[0], 1)
        words = random_input_words(s27_mapped, 32, make_rng(4))
        result = _assert_identical(
            s27_mapped, [fault, fault, fault], words, 32)
        if fault not in result.detected:
            assert result.remaining == [fault, fault, fault]

    def test_stuck_at_equal_to_constant_good_is_undetected(self):
        circuit = Circuit("const")
        a = circuit.add_input("a")
        circuit.add_gate("one", GateType.CONST1, ())
        circuit.add_gate("y", GateType.AND, (a, "one"))
        circuit.add_output("y")
        words, n = pack_input_vectors(circuit, [{"a": 1}, {"a": 0}])
        result = _assert_identical(
            circuit, [Fault("one", 1), Fault("one", 0)], words, n)
        assert Fault("one", 1) not in result.detected
        assert Fault("one", 0) in result.detected

    def test_interacting_fault_pair_in_one_batch(self):
        # g1 feeds g2; g2's stuck line must stay forced in its own lane
        # while g1's fault propagates through it in the other lane.
        circuit = Circuit("chain")
        a = circuit.add_input("a")
        b = circuit.add_input("b")
        circuit.add_gate("g1", GateType.NAND, (a, b))
        circuit.add_gate("g2", GateType.NOT, ("g1",))
        circuit.add_gate("g3", GateType.NOR, ("g2", a))
        circuit.add_output("g3")
        faults = [Fault("g1", 0), Fault("g1", 1),
                  Fault("g2", 0), Fault("g2", 1)]
        vectors = [{"a": x, "b": y} for x in (0, 1) for y in (0, 1)]
        words, n = pack_input_vectors(circuit, vectors)
        _assert_identical(circuit, faults, words, n)
