"""Levelized schedule construction and caching."""

import numpy as np

from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.simulation.eval2 import comb_input_lines
from repro.simulation.schedule import build_schedule, cached_schedule


class TestBuildSchedule:
    def test_lines_are_inputs_then_topo(self, s27_mapped):
        schedule = build_schedule(s27_mapped)
        inputs = tuple(comb_input_lines(s27_mapped))
        assert schedule.input_lines == inputs
        assert schedule.lines[:len(inputs)] == inputs
        assert list(schedule.lines[len(inputs):]) == s27_mapped.topo_order()
        assert schedule.n_lines == len(schedule.lines)

    def test_covers_every_combinational_gate_once(self, s27_mapped):
        schedule = build_schedule(s27_mapped)
        outs = [schedule.lines[i]
                for batch in schedule.batches for i in batch.outputs]
        assert sorted(outs) == sorted(s27_mapped.topo_order())
        assert schedule.n_gates == len(s27_mapped.topo_order())
        group_outs = [schedule.lines[i]
                      for group in schedule.type_groups
                      for i in group.outputs]
        assert sorted(group_outs) == sorted(outs)

    def test_batches_are_homogeneous_and_level_ordered(self, s27_mapped):
        schedule = build_schedule(s27_mapped)
        levels = [batch.level for batch in schedule.batches]
        assert levels == sorted(levels)
        for batch in schedule.batches:
            assert batch.inputs.shape == (batch.arity, len(batch))
            for g, out_idx in enumerate(batch.outputs):
                gate = s27_mapped.gates[schedule.lines[out_idx]]
                assert gate.gtype is batch.gtype
                assert [schedule.lines[i] for i in batch.inputs[:, g]] == \
                    list(gate.inputs)

    def test_inputs_precede_outputs(self, s27_mapped):
        # topological validity: every fanin row index is strictly smaller
        # than the gate's own row index.
        schedule = build_schedule(s27_mapped)
        for batch in schedule.batches:
            if batch.arity == 0:
                continue
            assert (batch.inputs < batch.outputs[np.newaxis, :]).all()


class TestCachedSchedule:
    def test_cache_hit_and_invalidation(self):
        circuit = Circuit("cache")
        a = circuit.add_input("a")
        b = circuit.add_input("b")
        circuit.add_gate("y", GateType.AND, (a, b))
        circuit.add_output("y")

        first = cached_schedule(circuit)
        assert cached_schedule(circuit) is first

        circuit.add_gate("z", GateType.NOT, ("y",))
        second = cached_schedule(circuit)
        assert second is not first
        assert second.n_gates == first.n_gates + 1
        assert cached_schedule(circuit) is second

    def test_version_counter_tracks_mutations(self):
        circuit = Circuit("ver")
        v0 = circuit.version
        circuit.add_input("a")
        assert circuit.version > v0
        v1 = circuit.version
        circuit.add_gate("y", GateType.NOT, ("a",))
        assert circuit.version > v1
        v2 = circuit.version
        circuit.replace_gate("y", GateType.BUFF, ("a",))
        assert circuit.version > v2
        v3 = circuit.version
        circuit.rename_line("y", "z")
        assert circuit.version > v3
        v4 = circuit.version
        circuit.remove_gate("z")
        assert circuit.version > v4

    def test_queries_do_not_bump_version(self, s27_mapped):
        before = s27_mapped.version
        s27_mapped.topo_order()
        s27_mapped.depth()
        s27_mapped.fanout_cone(s27_mapped.inputs[0])
        assert s27_mapped.version == before
