"""Tests for the episode-planning layer (batched whole-test-set replay)."""

import numpy as np
import pytest

from repro.errors import ScanError, SimulationError
from repro.power.scanpower import ShiftPolicy, _episode_waveforms
from repro.scan.testview import TestVector
from repro.simulation.backends import get_backend
from repro.simulation.episode import (
    DEFAULT_EPISODE_BATCH_ENV,
    EpisodeBatchResult,
    compile_episode_plan,
    episode_batching_enabled,
)


class TestEpisodeBatchToggle:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_EPISODE_BATCH_ENV, "0")
        assert episode_batching_enabled(True) is True
        monkeypatch.setenv(DEFAULT_EPISODE_BATCH_ENV, "1")
        assert episode_batching_enabled(False) is False

    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_EPISODE_BATCH_ENV, raising=False)
        assert episode_batching_enabled(None) is True

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("on", True), ("TRUE", True), ("yes", True),
        ("0", False), ("off", False), ("False", False), ("no", False),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv(DEFAULT_EPISODE_BATCH_ENV, value)
        assert episode_batching_enabled(None) is expected

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_EPISODE_BATCH_ENV, "maybe")
        with pytest.raises(SimulationError):
            episode_batching_enabled(None)


class TestPlanGeometry:
    def test_offsets_and_lengths_with_capture(self, s27_design,
                                              make_vectors):
        vectors = make_vectors(s27_design, 4)
        plan = compile_episode_plan(s27_design, vectors)
        per_episode = s27_design.chain.length + 1
        assert plan.n_episodes == 4
        assert plan.n_cycles == 4 * per_episode
        assert plan.lengths == (per_episode,) * 4
        assert plan.offsets == tuple(range(0, plan.n_cycles, per_episode))
        assert plan.episode_bounds()[-1] == (3 * per_episode,
                                             4 * per_episode)

    def test_offsets_without_capture(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 3)
        plan = compile_episode_plan(s27_design, vectors,
                                    include_capture=False)
        assert plan.lengths == (s27_design.chain.length,) * 3
        assert plan.n_cycles == 3 * s27_design.chain.length

    def test_covers_all_input_lines(self, s27_design, make_vectors):
        plan = compile_episode_plan(s27_design, make_vectors(s27_design, 2))
        expected = set(s27_design.circuit.inputs) | \
            set(s27_design.chain.q_lines)
        assert set(plan.waveforms) == expected


class TestPlanMatchesSerialBuilder:
    """The compiled words must equal the legacy loop bit for bit."""

    @pytest.mark.parametrize("include_capture", [True, False])
    @pytest.mark.parametrize("n_vectors", [1, 2, 7])
    def test_traditional_policy(self, s27_design, make_vectors,
                                include_capture, n_vectors):
        vectors = make_vectors(s27_design, n_vectors)
        serial, n_serial = _episode_waveforms(
            s27_design, vectors, ShiftPolicy(), include_capture, None)
        plan = compile_episode_plan(s27_design, vectors,
                                    include_capture=include_capture)
        assert plan.n_cycles == n_serial
        assert plan.waveforms == serial

    def test_policy_constants_and_ties(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 5, seed=3)
        policy = ShiftPolicy(
            name="proposed",
            pi_values={pi: 1 for pi in
                       list(s27_design.circuit.inputs)[:2]},
            mux_ties={s27_design.chain.q_lines[0]: 0,
                      s27_design.chain.q_lines[-1]: 1})
        serial, _ = _episode_waveforms(s27_design, vectors, policy,
                                       True, None)
        plan = compile_episode_plan(
            s27_design, vectors, pi_values=policy.pi_values,
            mux_ties=policy.mux_ties)
        assert plan.waveforms == serial

    def test_initial_state(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 3, seed=9)
        initial = (1,) * s27_design.chain.length
        serial, _ = _episode_waveforms(s27_design, vectors, ShiftPolicy(),
                                       True, initial)
        plan = compile_episode_plan(s27_design, vectors,
                                    initial_state=initial)
        assert plan.waveforms == serial

    def test_unmapped_circuit(self, toy, make_vectors):
        from repro.scan.testview import ScanDesign
        design = ScanDesign.full_scan(toy)
        vectors = make_vectors(design, 4, seed=5)
        serial, _ = _episode_waveforms(design, vectors, ShiftPolicy(),
                                       True, None)
        plan = compile_episode_plan(design, vectors)
        assert plan.waveforms == serial


class TestPlanValidation:
    def test_empty_test_set(self, s27_design):
        with pytest.raises(ScanError, match="empty test set"):
            compile_episode_plan(s27_design, [])

    def test_unknown_mux_tie(self, s27_design, make_vectors):
        with pytest.raises(ScanError, match="unknown cells"):
            compile_episode_plan(s27_design, make_vectors(s27_design, 1),
                                 mux_ties={"nope": 0})

    def test_bad_tie_value(self, s27_design, make_vectors):
        with pytest.raises(ScanError, match="must be 0/1"):
            compile_episode_plan(
                s27_design, make_vectors(s27_design, 1),
                mux_ties={s27_design.chain.q_lines[0]: 2})

    def test_initial_state_length(self, s27_design, make_vectors):
        with pytest.raises(ScanError, match="initial state length"):
            compile_episode_plan(s27_design, make_vectors(s27_design, 1),
                                 initial_state=(0,))

    def test_vector_state_length(self, s27_design):
        bad = TestVector(
            pi_values={pi: 0 for pi in s27_design.circuit.inputs},
            scan_state=(0,))
        with pytest.raises(ScanError, match="scan state length"):
            compile_episode_plan(s27_design, [bad])


class TestSimulateEpisodeBatch:
    def test_matches_cycle_sim(self, s27_design, make_vectors, library):
        from repro.simulation.cyclesim import simulate_cycles
        vectors = make_vectors(s27_design, 6)
        plan = compile_episode_plan(s27_design, vectors)
        batch = get_backend("bigint").simulate_episode_batch(plan, library)
        reference = simulate_cycles(s27_design.circuit, plan.waveforms,
                                    plan.n_cycles, library,
                                    backend="bigint")
        assert batch.transitions == reference.transitions
        assert batch.leakage_sum_na == reference.leakage_sum_na
        assert batch.mean_leakage_na == reference.mean_leakage_na
        assert batch.total_transitions == reference.total_transitions

    def test_keep_waveforms(self, s27_design, make_vectors):
        plan = compile_episode_plan(s27_design, make_vectors(s27_design, 2))
        batch = get_backend("numpy").simulate_episode_batch(
            plan, keep_waveforms=True)
        assert batch.waveforms is not None
        for line, word in plan.waveforms.items():
            assert batch.waveforms[line] == word

    def test_skip_leakage(self, s27_design, make_vectors):
        plan = compile_episode_plan(s27_design, make_vectors(s27_design, 2))
        batch = get_backend("numpy").simulate_episode_batch(
            plan, collect_leakage=False)
        assert batch.leakage_sum_na == {}
        assert batch.mean_leakage_na == 0.0

    def test_empty_result_mean(self):
        result = EpisodeBatchResult(n_cycles=0, transitions={},
                                    leakage_sum_na={}, offsets=(),
                                    lengths=())
        assert result.mean_leakage_na == 0.0
        assert result.total_transitions == 0


class TestPatternCounts:
    """The vectorized pattern counts must equal the popcount reference."""

    @pytest.mark.parametrize("mapped", [True, False])
    def test_numpy_matches_bigint(self, s27, s27_mapped, rng, mapped):
        from repro.simulation.bitsim import random_input_words
        circuit = s27_mapped if mapped else s27
        n = 77
        words = random_input_words(circuit, n, rng)
        reference = get_backend("bigint").run(circuit, words, n)
        vectorized = get_backend("numpy").run(circuit, words, n)
        ref_counts = reference.pattern_counts()
        got_counts = vectorized.pattern_counts()
        assert list(got_counts) == list(ref_counts)
        for line in ref_counts:
            assert np.array_equal(got_counts[line], ref_counts[line]), line

    def test_counts_price_to_leakage_sum(self, s27_mapped, rng, library):
        from repro.leakage.estimator import leakage_from_pattern_counts
        from repro.simulation.bitsim import random_input_words
        n = 130
        words = random_input_words(s27_mapped, n, rng)
        for name in ("bigint", "numpy"):
            state = get_backend(name).run(s27_mapped, words, n)
            priced = leakage_from_pattern_counts(
                s27_mapped, state.pattern_counts(), library)
            assert priced == state.leakage_sum(library), name


class TestSessionDefault:
    def test_session_default_beats_env(self, monkeypatch):
        from repro.simulation.episode import set_default_episode_batching
        monkeypatch.setenv(DEFAULT_EPISODE_BATCH_ENV, "1")
        set_default_episode_batching(False)
        try:
            assert episode_batching_enabled(None) is False
            assert episode_batching_enabled(True) is True  # flag wins
        finally:
            set_default_episode_batching(None)
        assert episode_batching_enabled(None) is True

    def test_reset_restores_env_chain(self, monkeypatch):
        from repro.simulation.episode import set_default_episode_batching
        monkeypatch.setenv(DEFAULT_EPISODE_BATCH_ENV, "0")
        set_default_episode_batching(None)
        assert episode_batching_enabled(None) is False
