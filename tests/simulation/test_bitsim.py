"""Tests for packed bit-parallel simulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.netlist import builders
from repro.netlist.gates import GateType
from repro.simulation.bitsim import (
    eval_gate_packed,
    pack_input_vectors,
    random_input_words,
    simulate_packed,
)
from repro.simulation.eval2 import comb_input_lines, simulate_comb
from repro.simulation.values import bit_at, mask, pack_bits
from repro.utils.rng import make_rng


class TestEvalGatePacked:
    full = mask(4)

    def test_nand(self):
        a = pack_bits([0, 0, 1, 1])
        b = pack_bits([0, 1, 0, 1])
        assert eval_gate_packed(GateType.NAND, [a, b], self.full) == \
            pack_bits([1, 1, 1, 0])

    def test_xor_three(self):
        a = pack_bits([0, 1, 1, 1])
        b = pack_bits([0, 0, 1, 1])
        c = pack_bits([0, 0, 0, 1])
        assert eval_gate_packed(GateType.XOR, [a, b, c], self.full) == \
            pack_bits([0, 1, 0, 1])

    def test_mux(self):
        sel = pack_bits([0, 0, 1, 1])
        d0 = pack_bits([1, 0, 1, 0])
        d1 = pack_bits([0, 1, 0, 1])
        assert eval_gate_packed(GateType.MUX2, [sel, d0, d1], self.full) \
            == pack_bits([1, 0, 0, 1])

    def test_consts(self):
        assert eval_gate_packed(GateType.CONST0, [], self.full) == 0
        assert eval_gate_packed(GateType.CONST1, [], self.full) == self.full

    def test_not_stays_in_mask(self):
        value = eval_gate_packed(GateType.NOT, [pack_bits([1, 0, 1, 0])],
                                 self.full)
        assert value <= self.full


class TestSimulatePacked:
    def test_missing_input_raises(self, s27):
        with pytest.raises(SimulationError, match="missing packed input"):
            simulate_packed(s27, {"G0": 0}, 4)

    def test_out_of_range_word_raises(self, s27):
        words = {line: 0 for line in comb_input_lines(s27)}
        words["G0"] = 1 << 10
        with pytest.raises(SimulationError, match="out of range"):
            simulate_packed(s27, words, 4)

    @settings(max_examples=25)
    @given(st.integers(0, 2 ** 7 - 1), st.integers(0, 2 ** 7 - 1))
    def test_agrees_with_scalar_sim(self, code_a, code_b):
        """Each bit plane of the packed result equals a scalar sim."""
        s27 = builders.s27()
        lines = comb_input_lines(s27)
        scalar_a = {line: (code_a >> i) & 1
                    for i, line in enumerate(lines)}
        scalar_b = {line: (code_b >> i) & 1
                    for i, line in enumerate(lines)}
        words = {line: pack_bits([scalar_a[line], scalar_b[line]])
                 for line in lines}
        packed = simulate_packed(s27, words, 2)
        ref_a = simulate_comb(s27, scalar_a)
        ref_b = simulate_comb(s27, scalar_b)
        for line in ref_a:
            assert bit_at(packed[line], 0) == ref_a[line]
            assert bit_at(packed[line], 1) == ref_b[line]


class TestHelpers:
    def test_pack_input_vectors(self, s27):
        lines = comb_input_lines(s27)
        vec0 = {line: 0 for line in lines}
        vec1 = {line: 1 for line in lines}
        words, n = pack_input_vectors(s27, [vec0, vec1])
        assert n == 2
        assert all(word == 0b10 for word in words.values())

    def test_random_input_words_in_range(self, s27):
        rng = make_rng(0)
        words = random_input_words(s27, 70, rng)
        assert set(words) == set(comb_input_lines(s27))
        assert all(0 <= w <= mask(70) for w in words.values())

    def test_random_input_words_deterministic(self, s27):
        a = random_input_words(s27, 64, make_rng(5))
        b = random_input_words(s27, 64, make_rng(5))
        assert a == b
