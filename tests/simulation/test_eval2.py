"""Tests for the reference two-valued simulator."""

import pytest

from repro.errors import SimulationError
from repro.simulation.eval2 import comb_input_lines, simulate_comb


class TestCombInputLines:
    def test_pis_then_pseudo_inputs(self, s27):
        lines = comb_input_lines(s27)
        assert lines[:4] == list(s27.inputs)
        assert set(lines[4:]) == {"G5", "G6", "G7"}

    def test_pure_combinational(self, c17):
        assert comb_input_lines(c17) == list(c17.inputs)


class TestSimulateComb:
    def test_all_lines_valued(self, s27):
        inputs = {line: 0 for line in comb_input_lines(s27)}
        values = simulate_comb(s27, inputs)
        comb_lines = set(s27.lines())
        assert set(values) == comb_lines

    def test_missing_input_raises(self, s27):
        with pytest.raises(SimulationError, match="missing input"):
            simulate_comb(s27, {"G0": 0})

    def test_non_binary_rejected(self, s27):
        inputs = {line: 0 for line in comb_input_lines(s27)}
        inputs["G0"] = 2
        with pytest.raises(SimulationError, match="not 0/1"):
            simulate_comb(s27, inputs)

    def test_c17_exhaustive_consistency(self, c17):
        """G22/G23 must match manual NAND evaluation on all 32 inputs."""
        for code in range(32):
            values = {pi: (code >> i) & 1
                      for i, pi in enumerate(c17.inputs)}
            result = simulate_comb(c17, values)
            g10 = 1 - (values["G1"] & values["G3"])
            g11 = 1 - (values["G3"] & values["G6"])
            g16 = 1 - (values["G2"] & g11)
            g19 = 1 - (g11 & values["G7"])
            assert result["G22"] == 1 - (g10 & g16)
            assert result["G23"] == 1 - (g16 & g19)

    def test_extra_inputs_ignored(self, c17):
        inputs = {pi: 1 for pi in c17.inputs}
        inputs["unrelated"] = 0
        values = simulate_comb(c17, inputs)
        assert "unrelated" not in values
