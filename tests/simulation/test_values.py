"""Tests for the bit-packing helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.simulation.values import (
    bit_at,
    count_transitions,
    mask,
    pack_bits,
    pattern_count,
    unpack_bits,
)


class TestMask:
    def test_small(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 255

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestPackUnpack:
    def test_round_trip_simple(self):
        bits = [0, 1, 1, 0, 1]
        assert unpack_bits(pack_bits(bits), len(bits)) == bits

    def test_first_element_is_bit_zero(self):
        assert pack_bits([1, 0]) == 1
        assert pack_bits([0, 1]) == 2

    def test_bad_bit_rejected(self):
        with pytest.raises(ValueError):
            pack_bits([0, 2])

    def test_bit_at(self):
        word = pack_bits([0, 1, 0, 1])
        assert [bit_at(word, t) for t in range(4)] == [0, 1, 0, 1]

    @given(st.lists(st.integers(0, 1), max_size=300))
    def test_round_trip_property(self, bits):
        assert unpack_bits(pack_bits(bits), len(bits)) == bits


class TestCountTransitions:
    def test_empty_and_singleton(self):
        assert count_transitions(0, 0) == 0
        assert count_transitions(1, 1) == 0

    def test_alternating(self):
        word = pack_bits([0, 1, 0, 1, 0])
        assert count_transitions(word, 5) == 4

    def test_constant(self):
        assert count_transitions(mask(64), 64) == 0
        assert count_transitions(0, 64) == 0

    def test_single_edge(self):
        word = pack_bits([0, 0, 1, 1])
        assert count_transitions(word, 4) == 1

    @given(st.lists(st.integers(0, 1), min_size=2, max_size=200))
    def test_matches_reference(self, bits):
        reference = sum(1 for a, b in zip(bits, bits[1:]) if a != b)
        assert count_transitions(pack_bits(bits), len(bits)) == reference


class TestPatternCount:
    def test_two_inputs(self):
        a = pack_bits([0, 0, 1, 1])
        b = pack_bits([0, 1, 0, 1])
        assert pattern_count([a, b], (0, 0), 4) == 1
        assert pattern_count([a, b], (1, 0), 4) == 1
        assert pattern_count([a, b], (1, 1), 4) == 1

    def test_empty_pattern_counts_all(self):
        assert pattern_count([], (), 7) == 7

    def test_early_exit_zero(self):
        a = 0
        assert pattern_count([a], (1,), 10) == 0

    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1),
                              st.integers(0, 1)), min_size=1, max_size=64))
    def test_counts_partition_the_cycles(self, rows):
        n = len(rows)
        words = [pack_bits([r[i] for r in rows]) for i in range(3)]
        total = 0
        for code in range(8):
            pattern = ((code >> 0) & 1, (code >> 1) & 1, (code >> 2) & 1)
            total += pattern_count(words, pattern, n)
        assert total == n
