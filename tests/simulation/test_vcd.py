"""Tests for VCD export (including a minimal VCD parser as the oracle)."""

import re

import pytest

from repro.errors import SimulationError
from repro.simulation.values import pack_bits
from repro.simulation.vcd import render_vcd, write_vcd


def parse_vcd(text: str) -> dict[str, list[int]]:
    """Minimal VCD reader: reconstruct per-signal per-cycle values."""
    id_to_name = {}
    for match in re.finditer(
            r"\$var wire 1 (\S+) (\S+) \$end", text):
        id_to_name[match.group(1)] = match.group(2)

    body = text[text.index("$enddefinitions $end"):]
    times = []
    current: dict[str, int] = {}
    snapshots: list[dict[str, int]] = []
    for token in body.splitlines():
        token = token.strip()
        if token.startswith("#"):
            if current:
                snapshots.append(dict(current))
            times.append(int(token[1:]))
        elif token and token[0] in "01":
            current[id_to_name[token[1:]]] = int(token[0])
    if current:
        snapshots.append(dict(current))

    # forward-fill between change records
    names = list(id_to_name.values())
    waves: dict[str, list[int]] = {n: [] for n in names}
    state: dict[str, int] = {}
    for snap in snapshots:
        state.update(snap)
        for n in names:
            waves[n].append(state[n])
    return waves


class TestRenderVcd:
    def test_round_trip_values(self):
        waves = {
            "a": pack_bits([0, 1, 1, 0]),
            "b": pack_bits([1, 1, 0, 0]),
        }
        text = render_vcd(waves, 4)
        parsed = parse_vcd(text)
        # forward-filled snapshots contain each change point; first
        # snapshot is cycle 0, each later snapshot is a change record.
        assert parsed["a"][0] == 0
        assert parsed["b"][0] == 1
        assert 1 in parsed["a"]
        assert 0 in parsed["b"]

    def test_header_declarations(self):
        waves = {"x": pack_bits([1, 0])}
        text = render_vcd(waves, 2, module="scandump",
                          timescale="10 ps")
        assert "$timescale 10 ps $end" in text
        assert "$scope module scandump $end" in text
        assert re.search(r"\$var wire 1 \S+ x \$end", text)

    def test_constant_signal_emits_once(self):
        waves = {"const": pack_bits([1, 1, 1, 1])}
        text = render_vcd(waves, 4)
        body = text[text.index("$dumpvars"):]
        assert body.count("1" + _ident_of(text, "const")) == 1

    def test_validation(self):
        with pytest.raises(SimulationError):
            render_vcd({}, 4)
        with pytest.raises(SimulationError):
            render_vcd({"a": 0}, 0)

    def test_many_signals_unique_ids(self):
        waves = {f"sig{i}": pack_bits([i & 1]) for i in range(200)}
        text = render_vcd(waves, 1)
        ids = re.findall(r"\$var wire 1 (\S+) ", text)
        assert len(ids) == len(set(ids)) == 200


class TestWriteVcd:
    def test_writes_file(self, tmp_path):
        waves = {"a": pack_bits([0, 1])}
        path = write_vcd(waves, 2, tmp_path / "dump.vcd")
        assert path.read_text().startswith("$timescale")


class TestEpisodeDump:
    def test_scan_episode_dump(self, s27_design, make_vectors, tmp_path):
        from repro.power.scanpower import episode_waveforms
        from repro.simulation.bitsim import simulate_packed

        vectors = make_vectors(s27_design, 3)
        waves, n = episode_waveforms(s27_design, vectors)
        all_waves = simulate_packed(s27_design.circuit, waves, n)
        path = write_vcd(all_waves, n, tmp_path / "episode.vcd",
                         module="s27")
        text = path.read_text()
        parsed = parse_vcd(text)
        assert "G17" in parsed
        assert len(parsed) == len(all_waves)


def _ident_of(text: str, name: str) -> str:
    match = re.search(rf"\$var wire 1 (\S+) {name} \$end", text)
    assert match is not None
    return match.group(1)
