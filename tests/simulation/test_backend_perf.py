"""Perf smoke test: the vectorized backend must not lose to the reference.

A coarse guard, not a benchmark — ``benchmarks/bench_perf.py`` records
the actual speedup trajectory.  Marked slow; deselect with
``-m "not slow"``.
"""

import pytest

from repro.benchgen.generator import generate_from_stats
from repro.benchgen.iscas89 import Iscas89Stats
from repro.cells.library import default_library
from repro.simulation.bitsim import random_input_words
from repro.simulation.cyclesim import simulate_cycles
from repro.techmap.mapper import technology_map
from repro.utils.rng import make_rng
from repro.utils.timing import best_of

N_PATTERNS = 4096


@pytest.mark.slow
def test_numpy_cycle_sim_not_slower_than_bigint_on_500_gates():
    circuit = technology_map(generate_from_stats(
        Iscas89Stats("perf550", 25, 15, 25, 550), seed=1))
    assert len(circuit.combinational_gates()) >= 500
    library = default_library()
    words = random_input_words(circuit, N_PATTERNS, make_rng(0))

    def run(backend):
        return simulate_cycles(circuit, words, N_PATTERNS, library,
                               backend=backend)

    # Equivalence first (also warms the schedule cache and numpy import).
    assert run("numpy").leakage_sum_na == run("bigint").leakage_sum_na

    bigint_s = best_of(3, lambda: run("bigint"))
    numpy_s = best_of(3, lambda: run("numpy"))
    assert numpy_s <= bigint_s, (
        f"numpy backend slower than bigint: {numpy_s * 1e3:.2f} ms vs "
        f"{bigint_s * 1e3:.2f} ms on {len(circuit.combinational_gates())} "
        f"gates x {N_PATTERNS} patterns")
