"""Array-API backend: namespace resolution + mocked conforming double.

The double below wraps host numpy arrays in an opaque device-array
class that *refuses* implicit numpy coercion (``__array__`` raises and
``__array_ufunc__`` is ``None``), and a namespace module exposing only
the kernel surface the shared kernels are documented to need.  Driving
every backend entry point through this double proves no numpy-only API
(``np.bitwise_and.reduce``, ``np.repeat``, implicit ``np.asarray`` on
kernel data, ...) leaks into :mod:`repro.simulation.kernels` — the GPU
path is gated in CI without a GPU.
"""

import operator

import numpy as np
import pytest

from repro.atpg.faults import all_faults
from repro.atpg.faultsim import fault_simulate
from repro.errors import ConfigError, SimulationError
from repro.netlist import builders
from repro.netlist.gates import GateType
from repro.runtime import set_session_defaults, using
from repro.simulation.backends import available_backends, get_backend
from repro.simulation.backends.array_api import (
    DEFAULT_NAMESPACE_ENV,
    ArrayApiBackend,
    ArrayApiState,
    resolve_array_namespace,
)
from repro.simulation.backends.fault_kernel import (
    _MIN_BATCH_FAULTS,
    cached_fault_plan,
    fault_simulate_matrix,
    tile_geometry,
)
from repro.simulation.bitsim import random_input_words
from repro.simulation.episode import compile_episode_plan
from repro.simulation.fault_episode import compile_fault_episode_plan
from repro.simulation.kernels import TileScratch
from repro.techmap.mapper import technology_map
from repro.utils.rng import make_rng


class DeviceArray:
    """Opaque device-array double over a host numpy array.

    Delegates shape/indexing/bitwise operators to the inner array and
    wraps every array result, but raises on any attempt by numpy to
    coerce it — so a raw ``np.*`` call on kernel data fails the test
    instead of silently running on the host.
    """

    # Make numpy refuse to apply its ufuncs to this type (binary ops
    # with numpy operands defer to our reflected methods instead).
    __array_ufunc__ = None

    def __init__(self, array):
        assert isinstance(array, np.ndarray)
        self._array = array

    def __array__(self, *args, **kwargs):
        raise AssertionError(
            "implicit numpy coercion of a device array — a raw np.* "
            "call leaked into the shared kernels")

    def get(self):
        """Host transfer (the cupy idiom ``to_host`` relies on)."""
        return self._array.copy()

    @property
    def shape(self):
        return self._array.shape

    @property
    def dtype(self):
        return self._array.dtype

    @staticmethod
    def _unwrap(value):
        if isinstance(value, DeviceArray):
            return value._array
        if isinstance(value, tuple):
            return tuple(DeviceArray._unwrap(item) for item in value)
        return value

    def __getitem__(self, key):
        out = self._array[DeviceArray._unwrap(key)]
        return DeviceArray(out) if isinstance(out, np.ndarray) else out

    def __setitem__(self, key, value):
        self._array[DeviceArray._unwrap(key)] = DeviceArray._unwrap(value)

    def _binop(self, other, op):
        return DeviceArray(op(self._array, DeviceArray._unwrap(other)))

    def __and__(self, other):
        return self._binop(other, operator.and_)

    __rand__ = __and__

    def __or__(self, other):
        return self._binop(other, operator.or_)

    __ror__ = __or__

    def __xor__(self, other):
        return self._binop(other, operator.xor)

    __rxor__ = __xor__


def _wrap(array):
    return DeviceArray(np.asarray(DeviceArray._unwrap(array)))


class MockNamespace:
    """A module-like namespace exposing only the documented surface."""

    __name__ = "mock_xp"
    uint64 = np.uint64

    @staticmethod
    def asarray(obj):
        return _wrap(obj)

    @staticmethod
    def zeros(shape, dtype=None):
        return DeviceArray(np.zeros(shape, dtype=dtype))

    @staticmethod
    def empty(shape, dtype=None):
        return DeviceArray(np.empty(shape, dtype=dtype))

    @staticmethod
    def where(cond, a, b):
        return DeviceArray(np.where(DeviceArray._unwrap(cond),
                                    DeviceArray._unwrap(a),
                                    DeviceArray._unwrap(b)))

    @staticmethod
    def broadcast_to(array, shape):
        return DeviceArray(np.broadcast_to(DeviceArray._unwrap(array),
                                           shape))

    @staticmethod
    def reshape(array, shape):
        return DeviceArray(np.reshape(DeviceArray._unwrap(array), shape))


@pytest.fixture
def mock_backend():
    return ArrayApiBackend(namespace=MockNamespace)


@pytest.fixture
def mapped():
    return technology_map(builders.toy_scan_circuit())


@pytest.fixture
def stimulus(mapped):
    n = 130  # three uint64 words, ragged tail
    return random_input_words(mapped, n, make_rng(9)), n


class TestDoubleIsOpaque:
    """Meta-tests: the double really does catch numpy leaks."""

    def test_numpy_functions_reject_device_arrays(self):
        dev = _wrap(np.arange(4, dtype=np.uint64))
        with pytest.raises(AssertionError, match="leaked"):
            np.asarray(dev)
        with pytest.raises((TypeError, AssertionError)):
            np.bitwise_and.reduce(dev)
        with pytest.raises((TypeError, AssertionError)):
            np.repeat(dev, 2)

    def test_operators_and_indexing_delegate(self):
        dev = _wrap(np.arange(4, dtype=np.uint64))
        assert isinstance(dev ^ dev, DeviceArray)
        assert isinstance(dev[1:3], DeviceArray)
        assert (dev.get() == np.arange(4, dtype=np.uint64)).all()


class TestMockedNamespaceKernels:
    """Every backend entry point, end to end, on the device double."""

    def test_registered(self):
        assert "array_api" in available_backends()

    def test_run_and_simulate_packed(self, mock_backend, mapped, stimulus):
        words, n = stimulus
        expected = get_backend("bigint").simulate_packed(mapped, words, n)
        state = mock_backend.run(mapped, words, n)
        assert isinstance(state, ArrayApiState)
        assert isinstance(state.device_matrix, DeviceArray)
        assert state.words() == expected

    def test_derived_quantities_match_numpy(self, mock_backend, mapped,
                                            stimulus):
        from repro.cells.library import default_library
        words, n = stimulus
        reference = get_backend("numpy").run(mapped, words, n)
        state = mock_backend.run(mapped, words, n)
        assert state.transitions() == reference.transitions()
        library = default_library()
        assert state.leakage_sum(library) == reference.leakage_sum(library)

    def test_eval_gate_packed_every_type(self, mock_backend):
        reference = get_backend("bigint")
        n = 77
        gen = make_rng(5)
        for gtype in GateType:
            arities = (3,) if gtype is GateType.MUX2 else \
                (0,) if gtype in (GateType.CONST0, GateType.CONST1) else \
                (0, 1, 2, 4)
            for arity in arities:
                if gtype in (GateType.NOT, GateType.BUFF, GateType.DFF) \
                        and arity != 1:
                    continue
                inputs = [int.from_bytes(gen.bytes(16), "little")
                          & ((1 << n) - 1) for _ in range(arity)]
                assert mock_backend.eval_gate_packed(gtype, inputs, n) == \
                    reference.eval_gate_packed(gtype, inputs, n), \
                    (gtype, arity)

    def test_fault_simulate_batch(self, mock_backend, mapped, stimulus):
        words, n = stimulus
        faults = all_faults(mapped)
        reference = fault_simulate(mapped, faults, words, n,
                                   backend="bigint")
        for drop in (True, False):
            got = mock_backend.fault_simulate_batch(mapped, faults, words,
                                                    n, drop=drop)
            assert got.detected == reference.detected, drop
            assert list(got.detected) == list(reference.detected), drop
            assert got.remaining == reference.remaining, drop

    def test_fault_simulate_plan(self, mock_backend, mapped, stimulus):
        words, n = stimulus
        faults = all_faults(mapped)
        reference = fault_simulate(mapped, faults, words, n,
                                   backend="bigint")
        for drop in (True, False):
            plan = compile_fault_episode_plan(mapped, faults, words, n)
            got = mock_backend.fault_simulate_plan(plan, drop=drop)
            assert got.detected == reference.detected, drop
            assert got.remaining == reference.remaining, drop

    def test_fault_plan_streams_under_budget(self, mock_backend, mapped,
                                             stimulus):
        """A tiny stream budget exercises fault_window_result windows on
        the device double (streamed composition)."""
        words, n = stimulus
        faults = all_faults(mapped)
        reference = fault_simulate(mapped, faults, words, n,
                                   backend="bigint")
        plan = compile_fault_episode_plan(mapped, faults, words, n)
        budget = plan.state_elements() // 2
        got = mock_backend.fault_simulate_plan(plan, drop=True,
                                               stream_budget=budget)
        assert got.detected == reference.detected
        assert got.remaining == reference.remaining

    def test_simulate_episode_batch(self, mock_backend, mapped):
        from repro.scan.testview import ScanDesign, TestVector
        design = ScanDesign.full_scan(mapped)
        gen = make_rng(3)
        vectors = [
            TestVector(
                pi_values={pi: int(gen.integers(2))
                           for pi in design.circuit.inputs},
                scan_state=tuple(int(gen.integers(2))
                                 for _ in range(design.chain.length)))
            for _ in range(4)
        ]
        plan = compile_episode_plan(design, vectors)
        reference = get_backend("bigint").simulate_episode_batch(plan)
        got = mock_backend.simulate_episode_batch(plan)
        assert got.transitions == reference.transitions
        assert got.leakage_sum_na == reference.leakage_sum_na

    def test_multi_tile_geometry_on_double(self, mock_backend, mapped,
                                           stimulus):
        """Forced word-axis tiling runs the scratch-buffer reuse path on
        the device double and stays bit-identical."""
        words, n = stimulus
        faults = all_faults(mapped)
        reference = fault_simulate(mapped, faults, words, n,
                                   backend="bigint")
        state = mock_backend.run(mapped, words, n)
        plan = cached_fault_plan(mapped)
        for budget in (1, plan.n_rows * _MIN_BATCH_FAULTS * 2):
            got = fault_simulate_matrix(state, faults,
                                        element_budget=budget,
                                        xp=state.namespace,
                                        matrix=state.device_matrix)
            assert got.detected == reference.detected, budget
            assert got.remaining == reference.remaining, budget


class TestNamespaceResolution:
    """Knob chain: constructor > session > env > built-in numpy."""

    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_NAMESPACE_ENV, raising=False)
        set_session_defaults()
        assert resolve_array_namespace(None) is np

    def test_env_level(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_NAMESPACE_ENV, "numpy")
        set_session_defaults()
        assert resolve_array_namespace(None) is np

    def test_session_beats_env(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_NAMESPACE_ENV, "definitely.not.a.module")
        with using(array_namespace="numpy"):
            assert resolve_array_namespace(None) is np

    def test_constructor_beats_session(self):
        with using(array_namespace="numpy"):
            backend = ArrayApiBackend(namespace=MockNamespace)
            assert backend._resolve() is MockNamespace

    def test_unimportable_name_raises(self):
        with pytest.raises(SimulationError, match="not importable"):
            resolve_array_namespace("definitely.not.a.module")

    def test_nonconforming_namespace_raises(self):
        import math
        with pytest.raises(SimulationError, match="kernel surface"):
            resolve_array_namespace(math)

    def test_runtime_options_validate_namespace(self):
        from repro.runtime import RuntimeOptions
        with pytest.raises(ConfigError, match="not importable"):
            RuntimeOptions(array_namespace="definitely.not.a.module")
        assert RuntimeOptions(array_namespace="numpy") \
            .array_namespace == "numpy"

    def test_flow_config_validates_namespace(self):
        from repro.core.config import FlowConfig
        with pytest.raises(ConfigError, match="not importable"):
            FlowConfig(array_namespace="definitely.not.a.module")
        config = FlowConfig(array_namespace="numpy")
        # Runtime-only: the namespace never changes results, so it must
        # not perturb the campaign cache key.
        assert config.config_hash() == FlowConfig().config_hash()

    def test_backend_reports_clean_error(self, mapped, stimulus):
        words, n = stimulus
        backend = ArrayApiBackend(namespace="definitely.not.a.module")
        with pytest.raises(SimulationError, match="not importable"):
            backend.run(mapped, words, n)


class TestTileGeometryMemoized:
    def test_memoized_per_plan_and_budget(self, mapped, stimulus):
        words, n = stimulus
        get_backend("numpy").run(mapped, words, n)  # warm schedule
        plan = cached_fault_plan(mapped)
        plan._tile_cache.clear()
        first = tile_geometry(plan, 7)
        assert plan._tile_cache == {(7, None): first}
        assert tile_geometry(plan, 7) == first
        other = tile_geometry(plan, 7, 123)
        assert plan._tile_cache[(7, 123)] == other
        assert len(plan._tile_cache) == 2

    def test_fresh_plan_fresh_cache(self, mapped):
        plan = cached_fault_plan(mapped)
        other = type(plan)(mapped)
        assert other._tile_cache == {}


class TestTileScratchReuse:
    def test_single_buffer_grows_monotonically(self):
        scratch = TileScratch(np)
        small = scratch.faulty((2, 3, 4))
        assert small.shape == (2, 3, 4)
        flat = scratch._flat
        # A same-or-smaller tile reuses the buffer (a view, no realloc).
        again = scratch.faulty((2, 3, 4))
        assert scratch._flat is flat
        assert again.base is flat
        smaller = scratch.faulty((1, 2, 3))
        assert scratch._flat is flat
        assert smaller.shape == (1, 2, 3)
        # Only a larger tile reallocates.
        scratch.faulty((4, 3, 4))
        assert scratch._flat is not flat

    def test_kernel_allocates_once_across_tiles(self, mapped, stimulus,
                                                monkeypatch):
        """A multi-tile sweep must not allocate one buffer per tile."""
        import repro.simulation.backends.fault_kernel as fk

        allocations = []
        real_empty = np.empty

        class CountingScratch(TileScratch):
            def faulty(self, shape):
                before = self._flat
                out = super().faulty(shape)
                if self._flat is not before:
                    allocations.append(shape)
                return out

        monkeypatch.setattr(fk, "TileScratch", CountingScratch)
        words, n = stimulus
        faults = all_faults(mapped)
        state = get_backend("numpy").run(mapped, words, n)
        plan = cached_fault_plan(mapped)
        budget = 1  # clamps to the minimum batch -> many tiles
        f_tile, _ = tile_geometry(plan, state.matrix.shape[1], budget)
        n_tiles = -(-len(set(faults)) // f_tile)
        fault_simulate_matrix(state, faults, element_budget=budget)
        assert real_empty is np.empty
        assert n_tiles > 1
        assert len(allocations) < n_tiles

    def test_scratch_reuse_bit_identical(self, mapped, stimulus):
        """Pinned: buffer reuse across tiles changes no detection bit."""
        words, n = stimulus
        faults = all_faults(mapped)
        reference = fault_simulate(mapped, faults, words, n,
                                   backend="bigint")
        state = get_backend("numpy").run(mapped, words, n)
        for budget in (1, 1000, None):
            got = fault_simulate_matrix(state, faults,
                                        element_budget=budget)
            assert got.detected == reference.detected, budget
            assert list(got.detected) == list(reference.detected), budget
            assert got.remaining == reference.remaining, budget
