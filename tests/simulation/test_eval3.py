"""Tests for the three-valued simulator and incremental implication."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.netlist import builders
from repro.netlist.gates import X
from repro.simulation.eval2 import comb_input_lines, simulate_comb
from repro.simulation.eval3 import imply_from, simulate_comb3


class TestSimulateComb3:
    def test_defaults_to_x(self, s27):
        values = simulate_comb3(s27, {})
        assert values["G0"] == X
        assert values["G17"] == X

    def test_binary_inputs_match_two_valued(self, s27):
        inputs = {line: 1 for line in comb_input_lines(s27)}
        v3 = simulate_comb3(s27, inputs)
        v2 = simulate_comb(s27, inputs)
        assert all(v3[line] == v2[line] for line in v2)

    def test_partial_knowledge_propagates(self, s27):
        # G14 = NOT(G0): known even when all else is X.
        values = simulate_comb3(s27, {"G0": 1})
        assert values["G14"] == 0
        # G8 = AND(G14=0, G6) = 0 regardless of G6
        assert values["G8"] == 0

    def test_soundness_against_completions(self, toy):
        """A binary 3-valued line value must hold for every completion."""
        partial = {"a": 0, "q0": 1, "q1": 0}
        v3 = simulate_comb3(toy, partial)
        free = [line for line in comb_input_lines(toy)
                if line not in partial]
        for combo in itertools.product((0, 1), repeat=len(free)):
            full = dict(partial)
            full.update(zip(free, combo))
            v2 = simulate_comb(toy, full)
            for line, value in v3.items():
                if value != X:
                    assert v2[line] == value, line


class TestImplyFrom:
    def test_matches_full_resimulation(self, s27):
        values = simulate_comb3(s27, {"G0": 0})
        values["G1"] = 1
        imply_from(s27, values, ["G1"])
        expected = simulate_comb3(s27, {"G0": 0, "G1": 1})
        assert values == expected

    def test_returns_changed_lines(self, s27):
        values = simulate_comb3(s27, {})
        values["G0"] = 1
        changed = imply_from(s27, values, ["G0"])
        assert "G0" in changed
        assert "G14" in changed  # NOT(G0) became known

    def test_no_change_no_ripple(self, s27):
        values = simulate_comb3(s27, {"G0": 1})
        # Re-imply the same value: nothing downstream should change.
        changed = imply_from(s27, values, ["G0"])
        assert changed == ["G0"]

    @given(st.integers(0, 2 ** 9 - 1), st.integers(0, 8))
    def test_incremental_equals_batch(self, code, flip_index):
        toy = builders.toy_scan_circuit()
        lines = comb_input_lines(toy)
        inputs = {line: (code >> i) & 1 for i, line in enumerate(lines)}
        flip_line = lines[flip_index % len(lines)]

        values = simulate_comb3(toy, inputs)
        values[flip_line] = 1 - inputs[flip_line]
        imply_from(toy, values, [flip_line])

        fresh_inputs = dict(inputs)
        fresh_inputs[flip_line] = 1 - inputs[flip_line]
        assert values == simulate_comb3(toy, fresh_inputs)
