"""Tests for multi-cycle simulation with transition/leakage accounting."""

import pytest

from repro.cells.library import default_library
from repro.leakage.estimator import circuit_leakage_na
from repro.simulation.cyclesim import simulate_cycles
from repro.simulation.eval2 import comb_input_lines, simulate_comb
from repro.simulation.values import mask, pack_bits, unpack_bits


def _constant_waveforms(circuit, n, value=0):
    word = mask(n) if value else 0
    return {line: word for line in comb_input_lines(circuit)}


class TestTransitions:
    def test_constant_inputs_no_transitions(self, s27_mapped):
        waves = _constant_waveforms(s27_mapped, 16)
        result = simulate_cycles(s27_mapped, waves, 16)
        assert result.total_transitions == 0

    def test_toggling_input_counts(self, s27_mapped):
        waves = _constant_waveforms(s27_mapped, 4)
        waves["G0"] = pack_bits([0, 1, 0, 1])
        result = simulate_cycles(s27_mapped, waves, 4)
        assert result.transitions["G0"] == 3
        # G0 feeds an inverter whose output must toggle identically.
        inverter = [line for line, g in s27_mapped.gates.items()
                    if g.inputs == ("G0",)]
        for line in inverter:
            assert result.transitions[line] == 3

    def test_per_cycle_states_match_scalar_sim(self, toy_mapped):
        n = 6
        lines = comb_input_lines(toy_mapped)
        bit_rows = [[(t * 7 + i * 3) % 2 for t in range(n)]
                    for i, _ in enumerate(lines)]
        waves = {line: pack_bits(rows)
                 for line, rows in zip(lines, bit_rows)}
        result = simulate_cycles(toy_mapped, waves, n,
                                 keep_waveforms=True)
        assert result.waveforms is not None
        for t in range(n):
            scalar = simulate_comb(toy_mapped, {
                line: rows[t] for line, rows in zip(lines, bit_rows)})
            for line, value in scalar.items():
                assert unpack_bits(result.waveforms[line], n)[t] == value


class TestLeakage:
    def test_single_cycle_matches_estimator(self, s27_mapped, library):
        lines = comb_input_lines(s27_mapped)
        assignment = {line: (i % 2) for i, line in enumerate(lines)}
        waves = {line: pack_bits([v]) for line, v in assignment.items()}
        result = simulate_cycles(s27_mapped, waves, 1, library)
        values = simulate_comb(s27_mapped, assignment)
        expected = circuit_leakage_na(s27_mapped, values, library)
        assert result.mean_leakage_na == pytest.approx(expected)

    def test_mean_over_two_cycles(self, s27_mapped, library):
        lines = comb_input_lines(s27_mapped)
        low = {line: 0 for line in lines}
        high = {line: 1 for line in lines}
        waves = {line: pack_bits([low[line], high[line]])
                 for line in lines}
        result = simulate_cycles(s27_mapped, waves, 2, library)
        leak_low = circuit_leakage_na(
            s27_mapped, simulate_comb(s27_mapped, low), library)
        leak_high = circuit_leakage_na(
            s27_mapped, simulate_comb(s27_mapped, high), library)
        assert result.mean_leakage_na == pytest.approx(
            (leak_low + leak_high) / 2)

    def test_collect_leakage_off(self, s27_mapped):
        waves = _constant_waveforms(s27_mapped, 4)
        result = simulate_cycles(s27_mapped, waves, 4,
                                 collect_leakage=False)
        assert result.leakage_sum_na == {}
        assert result.mean_leakage_na == 0.0

    def test_leakage_covers_all_comb_gates(self, s27_mapped):
        waves = _constant_waveforms(s27_mapped, 2)
        result = simulate_cycles(s27_mapped, waves, 2)
        assert set(result.leakage_sum_na) == set(s27_mapped.topo_order())


class TestResultApi:
    def test_waveforms_dropped_by_default(self, s27_mapped):
        waves = _constant_waveforms(s27_mapped, 2)
        assert simulate_cycles(s27_mapped, waves, 2).waveforms is None

    def test_zero_cycles_mean(self, s27_mapped):
        from repro.simulation.cyclesim import CycleSimResult
        empty = CycleSimResult(0, {}, {})
        assert empty.mean_leakage_na == 0.0
