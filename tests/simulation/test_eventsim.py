"""Tests for the event-driven simulator (reference cross-check)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.netlist import builders
from repro.simulation.cyclesim import simulate_cycles
from repro.simulation.eval2 import comb_input_lines, simulate_comb
from repro.simulation.eventsim import EventSimulator
from repro.simulation.values import pack_bits


class TestEventSimulator:
    def test_initial_state_matches_full_sim(self, s27_mapped):
        inputs = {line: 0 for line in comb_input_lines(s27_mapped)}
        sim = EventSimulator(s27_mapped, inputs)
        assert sim.values == simulate_comb(s27_mapped, inputs)

    def test_apply_updates_state(self, s27_mapped):
        lines = comb_input_lines(s27_mapped)
        sim = EventSimulator(s27_mapped, {line: 0 for line in lines})
        sim.apply({"G0": 1})
        expected = simulate_comb(
            s27_mapped, {line: (1 if line == "G0" else 0)
                         for line in lines})
        assert sim.values == expected

    def test_only_inputs_drivable(self, s27_mapped):
        lines = comb_input_lines(s27_mapped)
        sim = EventSimulator(s27_mapped, {line: 0 for line in lines})
        internal = s27_mapped.topo_order()[0]
        with pytest.raises(SimulationError):
            sim.apply({internal: 1})

    def test_value_validation(self, s27_mapped):
        lines = comb_input_lines(s27_mapped)
        sim = EventSimulator(s27_mapped, {line: 0 for line in lines})
        with pytest.raises(SimulationError):
            sim.apply({"G0": 7})

    def test_no_change_no_events(self, s27_mapped):
        lines = comb_input_lines(s27_mapped)
        sim = EventSimulator(s27_mapped, {line: 0 for line in lines})
        changed = sim.apply({"G0": 0})
        assert changed == []
        assert all(count == 0 for count in sim.event_counts.values())

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 2 ** 9 - 1), min_size=2, max_size=8))
    def test_event_counts_equal_cyclesim_transitions(self, codes):
        """Zero-delay event counts == packed transition counts."""
        toy = builders.toy_scan_circuit()
        lines = comb_input_lines(toy)
        states = [
            {line: (code >> i) & 1 for i, line in enumerate(lines)}
            for code in codes
        ]
        sim = EventSimulator(toy, states[0])
        for state in states[1:]:
            sim.apply(state)

        n = len(states)
        waves = {
            line: pack_bits([state[line] for state in states])
            for line in lines
        }
        packed = simulate_cycles(toy, waves, n, collect_leakage=False)
        for line, count in packed.transitions.items():
            assert sim.event_counts[line] == count, line
