"""Backend registry and per-gate packed evaluation semantics.

``eval_gate_packed`` is exercised for every :class:`GateType` — including
the degenerate 0/1-input reductions the variadic types allow — on every
registered backend, pinned against the scalar reference evaluator.
"""

import pytest

from repro.errors import SimulationError
from repro.netlist.gates import GateType, eval_gate
from repro.simulation import backends
from repro.simulation.backends import (
    Backend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from repro.simulation.values import bit_at, mask, pack_bits
from repro.utils.rng import make_rng

#: Arities exercised per gate type (variadic types include the degenerate
#: 0- and 1-input reductions the packed evaluators support).
ARITIES = {
    GateType.AND: (0, 1, 2, 3, 4),
    GateType.NAND: (0, 1, 2, 3, 4),
    GateType.OR: (0, 1, 2, 3, 4),
    GateType.NOR: (0, 1, 2, 3, 4),
    GateType.XOR: (0, 1, 2, 3, 4),
    GateType.XNOR: (0, 1, 2, 3, 4),
    GateType.NOT: (1,),
    GateType.BUFF: (1,),
    GateType.DFF: (1,),
    GateType.MUX2: (3,),
    GateType.CONST0: (0,),
    GateType.CONST1: (0,),
}

N_PATTERNS = 77  # deliberately not a multiple of 64

BACKEND_NAMES = sorted(available_backends())


def _random_words(k: int, n: int, seed: int) -> list[int]:
    rng = make_rng(seed)
    full = mask(n)
    return [int.from_bytes(rng.bytes((n + 7) // 8), "little") & full
            for _ in range(k)]


class TestEvalGatePacked:
    @pytest.mark.parametrize("backend_name", BACKEND_NAMES)
    @pytest.mark.parametrize(
        "gtype,arity",
        [(g, a) for g, arities in ARITIES.items() for a in arities],
        ids=lambda v: str(v))
    def test_matches_scalar_reference(self, backend_name, gtype, arity):
        backend = get_backend(backend_name)
        words = _random_words(arity, N_PATTERNS, seed=hash((gtype.value,
                                                            arity)) % 2**32)
        got = backend.eval_gate_packed(gtype, words, N_PATTERNS)
        expected = pack_bits(
            eval_gate(gtype, [bit_at(w, t) for w in words])
            for t in range(N_PATTERNS))
        assert got == expected

    @pytest.mark.parametrize(
        "gtype,arity",
        [(g, a) for g, arities in ARITIES.items() for a in arities],
        ids=lambda v: str(v))
    def test_backends_agree(self, gtype, arity):
        words = _random_words(arity, N_PATTERNS, seed=arity + 17)
        results = {
            name: get_backend(name).eval_gate_packed(
                gtype, words, N_PATTERNS)
            for name in BACKEND_NAMES
        }
        assert len(set(results.values())) == 1, results

    @pytest.mark.parametrize("backend_name", BACKEND_NAMES)
    def test_result_is_masked(self, backend_name):
        backend = get_backend(backend_name)
        # Inverting gates must not leak ones above bit n-1.
        for gtype in (GateType.NOT, GateType.NAND, GateType.NOR,
                      GateType.XNOR, GateType.CONST1):
            arity = ARITIES[gtype][-1]
            words = [0] * arity
            got = backend.eval_gate_packed(gtype, words, 5)
            assert 0 <= got <= mask(5)


class TestRegistry:
    def test_builtin_backends_present(self):
        assert "bigint" in available_backends()
        assert "numpy" in available_backends()

    def test_get_unknown_backend_raises(self):
        with pytest.raises(SimulationError, match="unknown simulation "
                                                  "backend"):
            get_backend("no-such-engine")

    def test_resolve_accepts_name_instance_and_none(self):
        bigint = get_backend("bigint")
        assert resolve_backend("bigint") is bigint
        assert resolve_backend(bigint) is bigint
        assert resolve_backend(None).name in available_backends()

    def test_duplicate_registration_rejected(self):
        class Dup(backends.BigIntBackend):
            name = "bigint"

        with pytest.raises(SimulationError, match="already registered"):
            register_backend(Dup())

    def test_register_and_overwrite_custom_backend(self):
        class Custom(backends.BigIntBackend):
            name = "custom-test"

        try:
            register_backend(Custom())
            assert "custom-test" in available_backends()
            register_backend(Custom(), overwrite=True)
        finally:
            backends._REGISTRY.pop("custom-test", None)

    def test_unnamed_backend_rejected(self):
        class NoName(backends.BigIntBackend):
            name = ""

        with pytest.raises(SimulationError, match="no name"):
            register_backend(NoName())

    def test_set_default_backend(self):
        try:
            set_default_backend("numpy")
            assert resolve_backend(None).name == "numpy"
        finally:
            set_default_backend(None)

    def test_set_default_backend_validates(self):
        with pytest.raises(SimulationError):
            set_default_backend("no-such-engine")
        assert resolve_backend(None).name in available_backends()

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(backends.DEFAULT_BACKEND_ENV, "numpy")
        assert backends.default_backend_name() == "numpy"
        monkeypatch.delenv(backends.DEFAULT_BACKEND_ENV)
        assert backends.default_backend_name() == "bigint"


class TestPopcountFallback:
    """The byte-LUT popcount used on NumPy < 2.0 installs."""

    def test_fallback_matches_primary(self):
        import numpy as np

        from repro.simulation.backends import numpy_backend as nb
        rng = make_rng(9)
        arr = rng.integers(0, 2**63, size=(7, 9)).astype(np.uint64)
        assert (nb._popcount_sum_fallback(arr) ==
                nb._popcount_sum(arr)).all()
        empty = np.zeros((3, 0), dtype=np.uint64)
        assert (nb._popcount_sum_fallback(empty) == 0).all()

    def test_backend_bit_identical_under_fallback(self, s27_mapped,
                                                  library, monkeypatch):
        from repro.simulation.backends import numpy_backend as nb
        from repro.simulation.bitsim import random_input_words
        monkeypatch.setattr(nb, "_popcount_sum", nb._popcount_sum_fallback)
        words = random_input_words(s27_mapped, 100, make_rng(4))
        ref = get_backend("bigint").run(s27_mapped, words, 100)
        got = get_backend("numpy").run(s27_mapped, words, 100)
        assert got.transitions() == ref.transitions()
        assert got.leakage_sum(library) == ref.leakage_sum(library)


class TestSimulatePackedDispatch:
    @pytest.mark.parametrize("backend_name", BACKEND_NAMES)
    def test_missing_input_raises(self, backend_name, s27_mapped):
        backend = get_backend(backend_name)
        with pytest.raises(SimulationError, match="missing packed input"):
            backend.run(s27_mapped, {}, 8)

    @pytest.mark.parametrize("backend_name", BACKEND_NAMES)
    def test_out_of_range_word_raises(self, backend_name, s27_mapped):
        from repro.simulation.eval2 import comb_input_lines
        backend = get_backend(backend_name)
        words = {line: 0 for line in comb_input_lines(s27_mapped)}
        words[s27_mapped.inputs[0]] = 1 << 8  # above the 8-pattern mask
        with pytest.raises(SimulationError, match="out of range"):
            backend.run(s27_mapped, words, 8)

    def test_backend_kwarg_on_simulate_packed(self, s27_mapped):
        from repro.simulation.bitsim import (
            random_input_words,
            simulate_packed,
        )
        words = random_input_words(s27_mapped, 100, make_rng(3))
        results = [simulate_packed(s27_mapped, words, 100, backend=name)
                   for name in BACKEND_NAMES]
        assert all(r == results[0] for r in results)

    def test_isinstance_backend_protocol(self):
        for name in BACKEND_NAMES:
            assert isinstance(get_backend(name), Backend)
