"""Tests for the clocked sequential simulator."""

import pytest

from repro.errors import SimulationError
from repro.scan.testview import ScanDesign, TestVector
from repro.simulation.seqsim import SequentialSimulator
from repro.utils.rng import make_rng


class TestConstruction:
    def test_requires_flops(self, c17):
        with pytest.raises(SimulationError):
            SequentialSimulator(c17)

    def test_default_state_zero(self, s27):
        sim = SequentialSimulator(s27)
        assert sim.state == {"G5": 0, "G6": 0, "G7": 0}

    def test_initial_state(self, s27):
        sim = SequentialSimulator(s27, {"G6": 1})
        assert sim.state["G6"] == 1
        assert sim.state["G5"] == 0

    def test_bad_initial_state(self, s27):
        with pytest.raises(SimulationError):
            SequentialSimulator(s27, {"nope": 1})
        with pytest.raises(SimulationError):
            SequentialSimulator(s27, {"G5": 2})


class TestStepSemantics:
    def test_step_equals_scan_capture(self, s27, s27_mapped):
        """One functional clock == one scan capture cycle: the paper's
        structure must not change this (fault coverage argument)."""
        design = ScanDesign.full_scan(s27_mapped)
        rng = make_rng(11)
        sim = SequentialSimulator(s27_mapped)
        for _ in range(20):
            pi_values = {pi: int(rng.integers(2))
                         for pi in s27_mapped.inputs}
            state = tuple(sim.state[q] for q in design.chain.q_lines)
            vector = TestVector(pi_values=pi_values, scan_state=state)
            captured, po_values = design.capture(vector)
            outputs = sim.step(pi_values)
            assert outputs == po_values
            assert tuple(sim.state[q]
                         for q in design.chain.q_lines) == captured

    def test_state_advances(self, s27):
        sim = SequentialSimulator(s27)
        zeros = {pi: 0 for pi in s27.inputs}
        before = sim.state
        sim.step(zeros)
        # s27 from all-zero state with zero inputs: G10 = NOR(G14=1, ...)
        # computes new state; at least the simulator must be deterministic
        after_one = sim.state
        sim2 = SequentialSimulator(s27)
        sim2.step(zeros)
        assert sim2.state == after_one
        assert isinstance(before, dict)

    def test_run_length(self, s27):
        sim = SequentialSimulator(s27)
        stimulus = [{pi: 0 for pi in s27.inputs}] * 5
        outputs = sim.run(stimulus)
        assert len(outputs) == 5
        assert all(set(o) == {"G17"} for o in outputs)

    def test_settle_does_not_clock(self, s27):
        sim = SequentialSimulator(s27)
        before = sim.state
        sim.settle({pi: 1 for pi in s27.inputs})
        assert sim.state == before


class TestTrace:
    def test_trace_shapes(self, s27):
        sim = SequentialSimulator(s27)
        stimulus = [{pi: (t % 2) for pi in s27.inputs} for t in range(6)]
        waves = sim.trace(stimulus, ["G17", "G11"])
        assert set(waves) == {"G17", "G11"}
        assert all(len(w) == 6 for w in waves.values())

    def test_trace_unknown_line(self, s27):
        sim = SequentialSimulator(s27)
        with pytest.raises(SimulationError):
            sim.trace([{pi: 0 for pi in s27.inputs}], ["ghost"])

    def test_trace_matches_run_state_evolution(self, s27):
        stimulus = [{pi: (t * 3 % 2) for pi in s27.inputs}
                    for t in range(8)]
        sim_a = SequentialSimulator(s27)
        waves = sim_a.trace(stimulus, ["G17"])
        sim_b = SequentialSimulator(s27)
        outputs = sim_b.run(stimulus)
        assert waves["G17"] == [o["G17"] for o in outputs]
        assert sim_a.state == sim_b.state
