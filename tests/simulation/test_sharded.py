"""Sharded fault-simulation meta-backend mechanics.

Bit-identity of the sharded results is pinned by the differential
property suite (``tests/properties/test_backend_diff.py``); these tests
cover the machinery around it: partitioning, shard-count resolution,
inline fast path and delegation of plain packed simulation.
"""

import pytest

from repro.atpg.faults import all_faults
from repro.atpg.faultsim import fault_simulate
from repro.errors import SimulationError
from repro.simulation.backends import (
    ShardedBackend,
    get_backend,
    resolve_fault_backend,
)
from repro.simulation.backends.sharded import (
    DEFAULT_SHARDS_ENV,
    shard_bounds,
)
from repro.simulation.bitsim import random_input_words, simulate_packed
from repro.utils.rng import make_rng


class TestShardBounds:
    def test_even_split(self):
        assert shard_bounds(9, 3) == [(0, 3), (3, 6), (6, 9)]

    def test_uneven_split_front_loads_remainder(self):
        assert shard_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_shards_than_items(self):
        assert shard_bounds(2, 5) == [(0, 1), (1, 2)]

    def test_single_shard(self):
        assert shard_bounds(7, 1) == [(0, 7)]

    def test_covers_everything_contiguously(self):
        for n_items in range(1, 40):
            for n_shards in range(1, 8):
                bounds = shard_bounds(n_items, n_shards)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n_items
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start


class TestConfiguration:
    def test_rejects_nested_sharding(self):
        with pytest.raises(SimulationError):
            ShardedBackend(inner="sharded")

    def test_rejects_bad_shard_count(self):
        with pytest.raises(SimulationError):
            ShardedBackend(shards=0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(SimulationError):
            ShardedBackend(min_faults_per_shard=0)

    def test_effective_shards_respects_threshold(self):
        backend = ShardedBackend(shards=8, min_faults_per_shard=100)
        assert backend.effective_shards(50) == 1
        assert backend.effective_shards(250) == 2
        assert backend.effective_shards(10_000) == 8

    def test_effective_shards_from_env(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_SHARDS_ENV, "3")
        backend = ShardedBackend(min_faults_per_shard=1)
        assert backend.effective_shards(100) == 3

    def test_bad_env_shard_count_raises(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_SHARDS_ENV, "0")
        backend = ShardedBackend(min_faults_per_shard=1)
        with pytest.raises(SimulationError):
            backend.effective_shards(100)

    def test_non_numeric_env_shard_count_raises_cleanly(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_SHARDS_ENV, "two")
        backend = ShardedBackend(min_faults_per_shard=1)
        with pytest.raises(SimulationError, match="must be an integer"):
            backend.effective_shards(100)

    def test_registered_singleton_defaults(self):
        backend = get_backend("sharded")
        assert isinstance(backend, ShardedBackend)
        assert backend.inner_name == "numpy"


class TestDelegation:
    def test_packed_simulation_delegates_to_inner(self, s27_mapped):
        words = random_input_words(s27_mapped, 70, make_rng(0))
        via_sharded = simulate_packed(s27_mapped, words, 70,
                                      backend="sharded")
        via_numpy = simulate_packed(s27_mapped, words, 70, backend="numpy")
        assert via_sharded == via_numpy

    def test_small_fault_list_runs_inline(self, s27_mapped, monkeypatch):
        # A threshold above the universe size must never fork: poison the
        # worker entry point and verify it is not reached.
        import repro.simulation.backends.sharded as sharded_mod

        def boom(payload):  # pragma: no cover - must not run
            raise AssertionError("worker should not be spawned")

        monkeypatch.setattr(sharded_mod, "_simulate_shard", boom)
        backend = ShardedBackend(shards=4, min_faults_per_shard=10_000)
        faults = all_faults(s27_mapped)
        words = random_input_words(s27_mapped, 64, make_rng(1))
        got = backend.fault_simulate_batch(s27_mapped, faults, words, 64)
        ref = fault_simulate(s27_mapped, faults, words, 64,
                             backend="bigint")
        assert got.detected == ref.detected
        assert got.remaining == ref.remaining


class TestFaultBackendResolution:
    def test_none_resolves_to_session_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_BACKEND", raising=False)
        from repro.simulation.backends import default_backend_name
        assert resolve_fault_backend(None).name == default_backend_name()

    def test_env_override_applies_to_fault_sim_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_BACKEND", "sharded")
        assert resolve_fault_backend(None).name == "sharded"
        from repro.simulation.backends import (
            default_backend_name,
            resolve_backend,
        )
        assert resolve_backend(None).name == default_backend_name()

    def test_explicit_spec_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_BACKEND", "sharded")
        assert resolve_fault_backend("numpy").name == "numpy"


class TestPooledDispatch:
    """Persistent-pool shard dispatch (``pool=`` hook)."""

    @pytest.fixture
    def pool(self):
        from repro.campaign.pool import WorkerPool
        with WorkerPool(processes=2) as p:
            yield p

    def _fault_job(self, circuit):
        faults = all_faults(circuit)
        words = random_input_words(circuit, 64, make_rng(1))
        return faults, words

    def test_pooled_results_bit_identical(self, s27_mapped, pool):
        faults, words = self._fault_job(s27_mapped)
        ref = fault_simulate(s27_mapped, faults, words, 64,
                             backend="bigint")
        backend = ShardedBackend(shards=2, min_faults_per_shard=4,
                                 pool=pool)
        got = fault_simulate(s27_mapped, faults, words, 64,
                             backend=backend)
        assert got.detected == ref.detected
        assert got.remaining == ref.remaining

    def test_pool_reused_across_calls(self, s27_mapped, pool):
        faults, words = self._fault_job(s27_mapped)
        backend = ShardedBackend(shards=2, min_faults_per_shard=4,
                                 pool=pool)
        first = fault_simulate(s27_mapped, faults, words, 64,
                               backend=backend)
        second = fault_simulate(s27_mapped, faults, words, 64,
                                backend=backend)
        assert first.detected == second.detected
        assert pool.started  # dispatch must not tear the pool down

    def test_pooled_dispatch_does_not_fork_per_call(self, s27_mapped,
                                                    pool, monkeypatch):
        # with a pool attached, the per-call fork/spawn entry points
        # must never run
        import repro.simulation.backends.sharded as sharded_mod

        def boom(*args):  # pragma: no cover - must not run
            raise AssertionError("per-call pool was constructed")

        monkeypatch.setattr(sharded_mod, "_simulate_shard_fork", boom)
        monkeypatch.setattr(sharded_mod, "_simulate_shard_fork_state",
                            boom)
        monkeypatch.setattr(sharded_mod, "_simulate_shard", boom)
        faults, words = self._fault_job(s27_mapped)
        backend = ShardedBackend(shards=2, min_faults_per_shard=4,
                                 pool=pool)
        result = backend.fault_simulate_batch(s27_mapped, faults,
                                              words, 64)
        assert result.n_detected > 0

    def test_using_pool_context_restores(self, pool):
        backend = ShardedBackend()
        assert backend.pool is None
        with backend.using_pool(pool) as bound:
            assert bound is backend
            assert backend.pool is pool
        assert backend.pool is None

    def test_effective_shards_defaults_to_pool_size(self, pool,
                                                    monkeypatch):
        monkeypatch.delenv(DEFAULT_SHARDS_ENV, raising=False)
        backend = ShardedBackend(min_faults_per_shard=1, pool=pool)
        assert backend.effective_shards(100) == pool.processes

    def test_shared_pool_picked_up(self, monkeypatch):
        from repro.campaign.pool import (
            ensure_shared_pool,
            shutdown_shared_pool,
        )
        backend = ShardedBackend()
        assert backend._resolve_pool() is None
        try:
            shared = ensure_shared_pool(processes=1)
            assert backend._resolve_pool() is shared
        finally:
            shutdown_shared_pool()
        assert backend._resolve_pool() is None

    def test_explicit_pool_outranks_shared(self, pool):
        from repro.campaign.pool import (
            ensure_shared_pool,
            shutdown_shared_pool,
        )
        try:
            ensure_shared_pool(processes=1)
            backend = ShardedBackend(pool=pool)
            assert backend._resolve_pool() is pool
        finally:
            shutdown_shared_pool()


class TestCircuitInterning:
    """Worker-side intern table behind the pooled dispatch path."""

    def test_first_copy_wins(self, s27_mapped, monkeypatch):
        import repro.simulation.backends.sharded as sharded_mod
        monkeypatch.setattr(sharded_mod, "_INTERNED_CIRCUITS",
                            type(sharded_mod._INTERNED_CIRCUITS)())
        fp = s27_mapped.fingerprint()
        first = sharded_mod._interned_circuit(s27_mapped, fp)
        copy = s27_mapped.copy()
        second = sharded_mod._interned_circuit(copy, fp)
        assert first is s27_mapped
        assert second is s27_mapped  # the copy was deduplicated

    def test_bounded_lru(self, monkeypatch):
        import repro.simulation.backends.sharded as sharded_mod
        from repro.netlist import builders
        monkeypatch.setattr(sharded_mod, "_INTERNED_CIRCUITS",
                            type(sharded_mod._INTERNED_CIRCUITS)())
        for i in range(sharded_mod._INTERN_MAX + 3):
            sharded_mod._interned_circuit(builders.s27(), f"fp{i}")
        assert len(sharded_mod._INTERNED_CIRCUITS) == \
            sharded_mod._INTERN_MAX


class TestEpisodeWindowSlicing:
    def test_window_word_matches_shift(self):
        """Byte-view windows must equal the straightforward
        shift-and-mask slices for arbitrary (unaligned) bounds."""
        import numpy as np

        from repro.simulation.backends.sharded import (
            _plan_byte_map,
            _window_word,
            shard_bounds,
        )
        from repro.simulation.values import mask

        rng = np.random.default_rng(3)
        n = 203  # deliberately not a multiple of 8 or 64
        word = int.from_bytes(rng.bytes((n + 7) // 8), "little") & mask(n)
        raw = _plan_byte_map({"x": word}, n)["x"]
        for n_chunks in (1, 2, 3, 7, 40):
            for start, stop in shard_bounds(n, n_chunks):
                expected = (word >> start) & mask(stop - start)
                assert _window_word(raw, start, stop) == expected
