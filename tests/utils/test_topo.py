"""Tests for repro.utils.topo."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CombinationalLoopError
from repro.utils.topo import topological_order


def _preds_from_edges(edges):
    def preds(node):
        return [u for (u, v) in edges if v == node]
    return preds


class TestTopologicalOrder:
    def test_empty(self):
        assert topological_order([], lambda n: []) == []

    def test_single_node(self):
        assert topological_order(["a"], lambda n: []) == ["a"]

    def test_chain(self):
        edges = [("a", "b"), ("b", "c")]
        order = topological_order(["c", "a", "b"],
                                  _preds_from_edges(edges))
        assert order.index("a") < order.index("b") < order.index("c")

    def test_diamond(self):
        edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        order = topological_order("abcd", _preds_from_edges(edges))
        assert order.index("a") < order.index("b")
        assert order.index("a") < order.index("c")
        assert order.index("b") < order.index("d")
        assert order.index("c") < order.index("d")

    def test_external_predecessors_ignored(self):
        # "ext" is a predecessor but not in the node set: must not count.
        edges = [("ext", "a"), ("a", "b")]
        order = topological_order(["a", "b"], _preds_from_edges(edges))
        assert order == ["a", "b"]

    def test_self_loop_raises(self):
        with pytest.raises(CombinationalLoopError):
            topological_order(["a"], _preds_from_edges([("a", "a")]))

    def test_two_cycle_raises_with_members(self):
        edges = [("a", "b"), ("b", "a")]
        with pytest.raises(CombinationalLoopError) as exc:
            topological_order(["a", "b"], _preds_from_edges(edges))
        assert set(exc.value.cycle) == {"a", "b"}

    def test_cycle_error_message_preview(self):
        edges = [(f"n{i}", f"n{(i + 1) % 12}") for i in range(12)]
        nodes = [f"n{i}" for i in range(12)]
        with pytest.raises(CombinationalLoopError) as exc:
            topological_order(nodes, _preds_from_edges(edges))
        assert "..." in str(exc.value)

    @given(st.integers(min_value=1, max_value=40), st.randoms())
    def test_random_dags_sort_consistently(self, n, rnd):
        # Build a random DAG on 0..n-1 with edges only from lower to higher.
        edges = []
        for v in range(n):
            for u in range(v):
                if rnd.random() < 0.2:
                    edges.append((u, v))
        nodes = list(range(n))
        rnd.shuffle(nodes)
        order = topological_order(nodes, _preds_from_edges(edges))
        position = {node: i for i, node in enumerate(order)}
        assert len(order) == n
        for u, v in edges:
            assert position[u] < position[v]
