"""Timing helpers: best_of and the monotonic Stopwatch."""

from repro.utils.timing import Stopwatch, best_of


class TestBestOf:
    def test_returns_minimum_observation(self):
        calls = []
        assert best_of(3, lambda: calls.append(1)) >= 0.0
        assert len(calls) == 3


class TestStopwatch:
    def test_elapsed_is_monotone_non_negative(self):
        watch = Stopwatch()
        first = watch.elapsed_s
        second = watch.elapsed_s
        assert 0.0 <= first <= second

    def test_restart_resets(self):
        watch = Stopwatch()
        sum(range(10_000))  # let a little time pass
        before = watch.elapsed_s
        watch.restart()
        assert watch.elapsed_s <= before + 1.0

    def test_split_restarts(self):
        watch = Stopwatch()
        first = watch.split_s()
        second = watch.split_s()
        assert first >= 0.0 and second >= 0.0
        # the split reset the start mark: the second leg does not
        # include the first
        assert watch.elapsed_s < first + second + 1.0
