"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_cell, format_markdown_table, format_table


class TestFormatCell:
    def test_float_uses_format(self):
        assert format_cell(3.14159) == "3.142"

    def test_custom_float_format(self):
        assert format_cell(3.14159, "{:.1f}") == "3.1"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_bool_not_treated_as_int_format(self):
        assert format_cell(True) == "True"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["col", "x"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("col")
        assert lines[1].startswith("---")
        assert "bbbb" in lines[3]

    def test_no_trailing_whitespace(self):
        text = format_table(["a", "b"], [["x", "y"]])
        for line in text.splitlines():
            assert line == line.rstrip()

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatMarkdownTable:
    def test_structure(self):
        text = format_markdown_table(["h1", "h2"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0] == "| h1 | h2 |"
        assert set(lines[1]) <= set("|- ")
        assert lines[2] == "| 1 | 2 |"

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])
