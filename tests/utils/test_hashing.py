"""Stable hashing helpers (cache key ingredients)."""

import pytest

from repro.netlist.gates import GateType
from repro.utils.hashing import (
    canonical_json,
    package_fingerprint,
    stable_digest,
)


class TestCanonicalJson:
    def test_key_order_never_matters(self):
        assert canonical_json({"a": 1, "b": 2}) == \
            canonical_json({"b": 2, "a": 1})

    def test_nested_order_never_matters(self):
        assert stable_digest({"x": {"a": 1, "b": [1, 2]}}) == \
            stable_digest({"x": {"b": [1, 2], "a": 1}})

    def test_enums_hash_by_value(self):
        assert canonical_json({"t": GateType.NAND}) == \
            canonical_json({"t": GateType.NAND.value})

    def test_unencodable_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_digest_is_hex_sha256(self):
        digest = stable_digest({"a": 1})
        assert len(digest) == 64
        int(digest, 16)  # raises on non-hex


class TestPackageFingerprint:
    def test_memoized_and_stable(self):
        assert package_fingerprint() == package_fingerprint()
        assert len(package_fingerprint()) == 64

    def test_distinguishes_packages(self):
        assert package_fingerprint("repro") != \
            package_fingerprint("repro.utils")
