"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, make_rng


class TestMakeRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = make_rng(7).integers(0, 1 << 30, size=8)
        b = make_rng(7).integers(0, 1 << 30, size=8)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1 << 30, size=8)
        b = make_rng(2).integers(0, 1 << 30, size=8)
        assert (a != b).any()

    def test_generator_passthrough(self):
        gen = make_rng(3)
        assert make_rng(gen) is gen


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_label_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_master_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_non_negative_63_bit(self):
        for label in ("", "x", "long-label-with-things:123"):
            seed = derive_seed(0, label)
            assert 0 <= seed < (1 << 63)

    def test_usable_as_numpy_seed(self):
        gen = make_rng(derive_seed(5, "component"))
        assert 0 <= gen.random() < 1
