"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import check_name, check_positive, check_probability


class TestCheckName:
    @pytest.mark.parametrize("name", ["G17", "II151", "a.b", "n<3>", "x_1"])
    def test_accepts_bench_style_names(self, name):
        assert check_name(name) == name

    @pytest.mark.parametrize("name", ["a b", "a,b", "a(b", "a)b", "a=b",
                                      "a#b", ""])
    def test_rejects_grammar_breaking_names(self, name):
        with pytest.raises(ValueError):
            check_name(name)

    def test_rejects_non_string(self):
        with pytest.raises(ValueError):
            check_name(17)

    def test_message_names_the_role(self):
        with pytest.raises(ValueError, match="gate output"):
            check_name("a b", "gate output")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.5, "x") == 0.5

    @pytest.mark.parametrize("value", [0, -1, -0.001])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError):
            check_positive(value, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")
