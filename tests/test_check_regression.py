"""Tests for the benchmark regression gate script."""

import json
import subprocess
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parents[1] / "benchmarks" / \
    "check_regression.py"


def _bench_json(path: Path, speedups: dict[str, float]) -> Path:
    payload = {
        "benchmarks": [
            {"name": name, "extra_info": {"speedup": value}}
            for name, value in speedups.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return path


def _run(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *map(str, args)],
        capture_output=True, text=True)


class TestRegressionGate:
    def test_passes_within_tolerance(self, tmp_path):
        current = _bench_json(tmp_path / "cur.json", {"b1": 3.2, "b2": 8.0})
        baseline = _bench_json(tmp_path / "base.json", {"b1": 4.0, "b2": 8.5})
        result = _run(current, baseline, "--max-drop-pct", "25")
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout

    def test_fails_on_large_drop(self, tmp_path):
        current = _bench_json(tmp_path / "cur.json", {"b1": 2.0})
        baseline = _bench_json(tmp_path / "base.json", {"b1": 4.0})
        result = _run(current, baseline, "--max-drop-pct", "25")
        assert result.returncode == 1
        assert "FAILED" in result.stderr
        assert "50.0% drop" in result.stderr

    def test_disappeared_speedup_warns_without_failing(self, tmp_path):
        # A renamed/removed benchmark must not wedge the gate (the
        # baseline only advances on green runs).
        current = _bench_json(tmp_path / "cur.json", {})
        baseline = _bench_json(tmp_path / "base.json", {"b1": 4.0})
        result = _run(current, baseline)
        assert result.returncode == 0
        assert "warning" in result.stdout
        assert "renamed or" in result.stdout

    def test_missing_baseline_skips(self, tmp_path):
        current = _bench_json(tmp_path / "cur.json", {"b1": 3.0})
        result = _run(current, tmp_path / "absent.json")
        assert result.returncode == 0
        assert "skipping" in result.stdout

    def test_missing_current_errors(self, tmp_path):
        baseline = _bench_json(tmp_path / "base.json", {"b1": 3.0})
        result = _run(tmp_path / "absent.json", baseline)
        assert result.returncode == 2

    def test_improvements_pass(self, tmp_path):
        current = _bench_json(tmp_path / "cur.json", {"b1": 9.0})
        baseline = _bench_json(tmp_path / "base.json", {"b1": 4.0})
        result = _run(current, baseline)
        assert result.returncode == 0
