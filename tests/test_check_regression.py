"""Tests for the benchmark regression gate script."""

import ast
import importlib.util
import json
import re
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"
SCRIPT = BENCH_DIR / "check_regression.py"


def _load_gate_module():
    spec = importlib.util.spec_from_file_location("check_regression",
                                                  SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _bench_json(path: Path, speedups: dict[str, float]) -> Path:
    payload = {
        "benchmarks": [
            {"name": name, "extra_info": {"speedup": value}}
            for name, value in speedups.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return path


def _run(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *map(str, args)],
        capture_output=True, text=True)


class TestRegressionGate:
    def test_passes_within_tolerance(self, tmp_path):
        current = _bench_json(tmp_path / "cur.json", {"b1": 3.2, "b2": 8.0})
        baseline = _bench_json(tmp_path / "base.json", {"b1": 4.0, "b2": 8.5})
        result = _run(current, baseline, "--max-drop-pct", "25")
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout

    def test_fails_on_large_drop(self, tmp_path):
        current = _bench_json(tmp_path / "cur.json", {"b1": 2.0})
        baseline = _bench_json(tmp_path / "base.json", {"b1": 4.0})
        result = _run(current, baseline, "--max-drop-pct", "25")
        assert result.returncode == 1
        assert "FAILED" in result.stderr
        assert "50.0% drop" in result.stderr

    def test_disappeared_speedup_warns_without_failing(self, tmp_path):
        # A renamed/removed benchmark must not wedge the gate (the
        # baseline only advances on green runs).
        current = _bench_json(tmp_path / "cur.json", {})
        baseline = _bench_json(tmp_path / "base.json", {"b1": 4.0})
        result = _run(current, baseline)
        assert result.returncode == 0
        assert "warning" in result.stdout
        assert "renamed or" in result.stdout

    def test_missing_baseline_skips(self, tmp_path):
        current = _bench_json(tmp_path / "cur.json", {"b1": 3.0})
        result = _run(current, tmp_path / "absent.json")
        assert result.returncode == 0
        assert "skipping" in result.stdout

    def test_missing_current_errors(self, tmp_path):
        baseline = _bench_json(tmp_path / "base.json", {"b1": 3.0})
        result = _run(tmp_path / "absent.json", baseline)
        assert result.returncode == 2

    def test_improvements_pass(self, tmp_path):
        current = _bench_json(tmp_path / "cur.json", {"b1": 9.0})
        baseline = _bench_json(tmp_path / "base.json", {"b1": 4.0})
        result = _run(current, baseline)
        assert result.returncode == 0

    def test_suffix_keys_are_diffed(self, tmp_path):
        """A brand-new ``*_speedup`` key is gated without a code change."""
        payload = {"benchmarks": [{
            "name": "b1", "extra_info": {"novel_speedup": 2.0}}]}
        current = tmp_path / "cur.json"
        current.write_text(json.dumps(payload))
        payload["benchmarks"][0]["extra_info"]["novel_speedup"] = 8.0
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(payload))
        result = _run(current, baseline, "--max-drop-pct", "25")
        assert result.returncode == 1
        assert "novel_speedup" in result.stderr


def _recorded_ratio_keys(source: str) -> set[str]:
    """Every string literal in a bench file that names a speedup-style
    ``extra_info`` ratio (f-string placeholders collapse to their
    suffix, which is what the gate matches on)."""
    keys = set()
    for tree_string in ast.walk(ast.parse(source)):
        values = []
        if isinstance(tree_string, ast.Constant) and \
                isinstance(tree_string.value, str):
            values.append(tree_string.value)
        elif isinstance(tree_string, ast.JoinedStr):
            values.append("".join(
                part.value for part in tree_string.values
                if isinstance(part, ast.Constant)))
        for value in values:
            if re.fullmatch(r"\w*(speedup|efficiency)", value):
                keys.add(value)
    return keys


class TestEveryRecordedSpeedupIsGated:
    """The historical bug: bench_perf recorded ``pool_speedup`` and
    ``campaign_speedup`` for two PRs while the gate only knew three
    hard-coded keys — the trajectories landed in the artifact but were
    never diffed.  Now every ratio any bench file records must satisfy
    ``is_guarded_key``."""

    def test_regressed_keys_now_explicit(self):
        gate = _load_gate_module()
        assert "pool_speedup" in gate.SPEEDUP_KEYS
        assert "campaign_speedup" in gate.SPEEDUP_KEYS
        assert "shard_speedup" in gate.SPEEDUP_KEYS

    def test_all_bench_files_recorded_ratios_guarded(self):
        gate = _load_gate_module()
        checked = 0
        for bench in sorted(BENCH_DIR.glob("bench_*.py")):
            for key in _recorded_ratio_keys(bench.read_text()):
                assert gate.is_guarded_key(key), (bench.name, key)
                checked += 1
        # bench_perf's five ratios + bench_scaling's efficiency keys.
        assert checked >= 7

    def test_load_speedups_picks_up_every_guarded_key(self, tmp_path):
        gate = _load_gate_module()
        extra = {key: 2.0 for key in gate.SPEEDUP_KEYS}
        extra.update({"fresh_efficiency": 1.0, "numpy_ms": 12.0,
                      "gates": 1000})
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(
            {"benchmarks": [{"name": "b", "extra_info": extra}]}))
        loaded = gate.load_speedups(path)
        expected = set(gate.SPEEDUP_KEYS) | {"fresh_efficiency"}
        assert {key for _, key in loaded} == expected
