"""Cross-cutting property-based tests (hypothesis) on core invariants.

These tests tie multiple subsystems together on randomly generated
circuits and stimuli; each property is an invariant the paper's method
relies on.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchgen.generator import generate_from_stats
from repro.benchgen.iscas89 import Iscas89Stats
from repro.core.find_pattern import find_controlled_input_pattern
from repro.netlist.gates import X
from repro.power.scanpower import ShiftPolicy, _episode_waveforms
from repro.scan.testview import ScanDesign, TestVector
from repro.simulation.bitsim import simulate_packed
from repro.simulation.cyclesim import simulate_cycles
from repro.simulation.eval2 import comb_input_lines, simulate_comb
from repro.simulation.eval3 import simulate_comb3
from repro.simulation.values import bit_at, pack_bits
from repro.techmap.mapper import technology_map
from repro.techmap.verify import equivalence_check
from repro.utils.rng import make_rng


def _random_circuit(seed: int, n_pi=5, n_po=4, n_dff=5, n_gates=40):
    stats = Iscas89Stats(f"prop{seed}", n_pi, n_po, n_dff, n_gates)
    return generate_from_stats(stats, seed)


class TestSimulatorAgreement:
    """All four simulators implement the same semantics."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 2 ** 16 - 1))
    def test_packed_equals_scalar(self, seed, stimulus):
        circuit = _random_circuit(seed)
        lines = comb_input_lines(circuit)
        inputs = {line: (stimulus >> i) & 1
                  for i, line in enumerate(lines)}
        scalar = simulate_comb(circuit, inputs)
        words = {line: pack_bits([v]) for line, v in inputs.items()}
        packed = simulate_packed(circuit, words, 1)
        for line, value in scalar.items():
            assert bit_at(packed[line], 0) == value

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 2 ** 16 - 1))
    def test_three_valued_binary_equals_two_valued(self, seed, stimulus):
        circuit = _random_circuit(seed)
        lines = comb_input_lines(circuit)
        inputs = {line: (stimulus >> i) & 1
                  for i, line in enumerate(lines)}
        assert simulate_comb3(circuit, inputs) == \
            simulate_comb(circuit, inputs)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 2 ** 16 - 1),
           st.integers(1, 5))
    def test_x_abstraction_soundness(self, seed, stimulus, n_hidden):
        """Hide a few inputs as X: every binary conclusion of the
        3-valued sim must hold under all completions of the hidden
        inputs."""
        circuit = _random_circuit(seed, n_gates=25)
        lines = comb_input_lines(circuit)
        hidden = lines[:n_hidden]
        visible = {line: (stimulus >> i) & 1
                   for i, line in enumerate(lines) if line not in hidden}
        v3 = simulate_comb3(circuit, visible)
        for combo in itertools.product((0, 1), repeat=len(hidden)):
            full = dict(visible)
            full.update(zip(hidden, combo))
            v2 = simulate_comb(circuit, full)
            for line, value in v3.items():
                if value != X:
                    assert v2[line] == value


class TestMappingProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_mapping_equivalence_random(self, seed):
        circuit = _random_circuit(seed)
        mapped = technology_map(circuit)
        assert equivalence_check(circuit, mapped, n_random=64, seed=seed)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_mapping_bounds_arity(self, seed):
        circuit = _random_circuit(seed)
        mapped = technology_map(circuit, max_arity=3)
        for gate in mapped.combinational_gates():
            assert len(gate.inputs) <= 4  # NAND/NOR <= 3, MUX2 = 3
            if gate.gtype.value in ("NAND", "NOR"):
                assert len(gate.inputs) <= 3


class TestBlockingSoundness:
    """The paper's correctness core, on random circuits: every line the
    pattern search declares constant really is constant while the scan
    chain shifts arbitrary data."""

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_constant_lines_never_toggle_in_shift(self, seed):
        circuit = technology_map(_random_circuit(seed))
        design = ScanDesign.full_scan(circuit)
        controlled = set(circuit.inputs)
        sources = set(circuit.dff_outputs)
        pattern = find_controlled_input_pattern(
            circuit, controlled, sources, max_backtracks=20)

        rng = make_rng(seed)
        vectors = []
        for _ in range(4):
            pi_values = {pi: pattern.assignment.get(pi, 0)
                         for pi in circuit.inputs}
            state = tuple(int(rng.integers(2))
                          for _ in range(design.chain.length))
            vectors.append(TestVector(pi_values=pi_values,
                                      scan_state=state))
        policy = ShiftPolicy(
            name="check",
            pi_values={pi: pattern.assignment.get(pi, 0)
                       for pi in circuit.inputs},
            mux_ties={})
        waveforms, n = _episode_waveforms(design, vectors, policy,
                                          False, None)
        sim = simulate_cycles(circuit, waveforms, n,
                              collect_leakage=False)
        for line, value in pattern.values.items():
            if value != X:
                assert sim.transitions.get(line, 0) == 0, \
                    f"{line} toggled despite binary value {value}"

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000))
    def test_assignment_is_subset_of_controlled(self, seed):
        circuit = technology_map(_random_circuit(seed))
        controlled = set(circuit.inputs)
        sources = set(circuit.dff_outputs)
        pattern = find_controlled_input_pattern(
            circuit, controlled, sources, max_backtracks=20)
        assert set(pattern.assignment) <= controlled
        check = simulate_comb3(circuit, pattern.assignment)
        assert check == pattern.values


class TestScanProtocolProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 5))
    def test_capture_feeds_next_shift(self, seed, n_vectors):
        """The episode waveform generator must start every shift segment
        from the previous vector's captured response."""
        circuit = technology_map(_random_circuit(seed, n_gates=30))
        design = ScanDesign.full_scan(circuit)
        rng = make_rng(seed)
        vectors = []
        for _ in range(n_vectors):
            pi_values = {pi: int(rng.integers(2))
                         for pi in circuit.inputs}
            state = tuple(int(rng.integers(2))
                          for _ in range(design.chain.length))
            vectors.append(TestVector(pi_values=pi_values,
                                      scan_state=state))
        waveforms, n = _episode_waveforms(
            design, vectors, ShiftPolicy(), True, None)
        length = design.chain.length
        # The first shift cycle of segment k shows the captured response
        # of vector k-1, shifted once with the new vector's first bit.
        state = (0,) * length
        cycle = 0
        for vector in vectors:
            expected = design.chain.load_states(state, vector.scan_state)
            for step_state in expected:
                for cell, bit in zip(design.chain.cells, step_state):
                    assert bit_at(waveforms[cell.q], cycle) == bit
                cycle += 1
            cycle += 1  # capture cycle
            state, _pos = design.capture(vector)
