"""Differential properties of the fault x pattern batched replay.

``Backend.fault_simulate_plan`` must be observationally identical to the
scalar big-int reference — detection words bit for bit, ``remaining`` in
exact input order — on every registered backend, in both drop modes, on
mapped and unmapped circuits, for every tile geometry, and under forced
multi-process sharding of **either** axis (fault-major and
pattern-major) with real worker processes.  The generated test sets of
the planned and legacy ATPG paths must be equal too.
"""

from hypothesis import given, settings, strategies as st

from repro.atpg.faults import all_faults
from repro.atpg.faultsim import fault_simulate, scalar_fault_simulate
from repro.benchgen.generator import generate_from_stats
from repro.benchgen.iscas89 import Iscas89Stats
from repro.netlist.circuit import Circuit
from repro.simulation.backends import (
    ShardedBackend,
    available_backends,
    get_backend,
)
from repro.simulation.bitsim import random_input_words
from repro.simulation.fault_episode import (
    FaultSimSession,
    compile_fault_episode_plan,
)
from repro.techmap.mapper import technology_map
from repro.utils.rng import make_rng

BACKENDS = sorted(available_backends())


def _random_circuit(seed: int, n_gates: int = 40, mapped: bool = False
                    ) -> Circuit:
    circuit = generate_from_stats(
        Iscas89Stats("fedge", 5, 3, 4, n_gates), seed)
    return technology_map(circuit) if mapped else circuit


def _assert_same(got, reference, context) -> None:
    assert got.detected == reference.detected, context
    assert list(got.detected) == list(reference.detected), context
    assert got.remaining == reference.remaining, context


class TestPlanEqualsScalarReference:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 200), st.booleans(),
           st.booleans())
    def test_every_backend_both_drop_modes(self, seed, n_patterns,
                                           mapped, drop):
        circuit = _random_circuit(seed, mapped=mapped)
        faults = all_faults(circuit)
        words = random_input_words(circuit, n_patterns, make_rng(seed))
        reference = scalar_fault_simulate(
            get_backend("bigint"), circuit, faults, words, n_patterns,
            drop=drop)
        for name in BACKENDS:
            plan = compile_fault_episode_plan(circuit, faults, words,
                                              n_patterns)
            got = get_backend(name).fault_simulate_plan(plan, drop=drop)
            _assert_same(got, reference, (name, drop))

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 160), st.booleans(),
           st.booleans())
    def test_session_matches_per_batch_path(self, seed, n_patterns,
                                            mapped, drop):
        """One session, plan on vs off: both equal ``fault_simulate``."""
        circuit = _random_circuit(seed, mapped=mapped, n_gates=30)
        faults = all_faults(circuit)
        words = random_input_words(circuit, n_patterns, make_rng(seed))
        reference = fault_simulate(circuit, faults, words, n_patterns,
                                   drop=drop, backend="bigint")
        for name in ("bigint", "numpy"):
            for flag in (True, False):
                session = FaultSimSession(circuit, name, plan=flag)
                got = session.simulate(faults, words, n_patterns,
                                       drop=drop)
                _assert_same(got, reference, (name, flag, drop))

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 170), st.booleans())
    def test_tile_geometry_is_invisible(self, seed, n_patterns, mapped):
        """Forced tiny element budgets (multi-tile on both axes) must
        reproduce the default geometry's words exactly."""
        from repro.simulation.backends.fault_kernel import (
            fault_simulate_matrix,
        )
        circuit = _random_circuit(seed, mapped=mapped, n_gates=25)
        faults = all_faults(circuit)
        words = random_input_words(circuit, n_patterns, make_rng(seed))
        reference = fault_simulate(circuit, faults, words, n_patterns,
                                   backend="bigint")
        state = get_backend("numpy").run(circuit, words, n_patterns)
        for budget in (1, 64, 4096):
            got = fault_simulate_matrix(state, faults,
                                        element_budget=budget)
            _assert_same(got, reference, budget)


class TestTwoAxisSharding:
    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 96),
           st.integers(2, 4))
    def test_fault_axis_shards_invisible(self, seed, n_patterns,
                                         n_shards):
        """Drop-mode plans shard the fault axis across >= 2 real worker
        processes; the merge must equal the single-process result."""
        circuit = _random_circuit(seed, mapped=True, n_gates=25)
        faults = all_faults(circuit)
        words = random_input_words(circuit, n_patterns, make_rng(seed))
        reference = fault_simulate(circuit, faults, words, n_patterns,
                                   backend="bigint")
        backend = ShardedBackend(shards=n_shards, min_faults_per_shard=1)
        plan = compile_fault_episode_plan(circuit, faults, words,
                                          n_patterns)
        got = backend.fault_simulate_plan(plan, drop=True)
        _assert_same(got, reference, n_shards)

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 10_000), st.integers(65, 250),
           st.integers(2, 3), st.booleans())
    def test_pattern_axis_shards_invisible(self, seed, n_patterns,
                                           n_shards, mapped):
        """No-drop plans shard the pattern axis (word-aligned windows)
        across >= 2 real worker processes; the OR-merge must equal the
        single-pass detection matrix bit for bit."""
        circuit = _random_circuit(seed, mapped=mapped, n_gates=25)
        faults = all_faults(circuit)
        words = random_input_words(circuit, n_patterns, make_rng(seed))
        reference = fault_simulate(circuit, faults, words, n_patterns,
                                   drop=False, backend="bigint")
        backend = ShardedBackend(shards=n_shards, min_faults_per_shard=1)
        plan = compile_fault_episode_plan(circuit, faults, words,
                                          n_patterns)
        got = backend.fault_simulate_plan(plan, drop=False)
        _assert_same(got, reference, (n_shards, mapped))


class TestGeneratedTestSetsIdentical:
    @settings(max_examples=3, deadline=None)
    @given(st.integers(0, 10_000), st.booleans())
    def test_plan_toggle_never_changes_the_test_set(self, seed, mapped):
        from repro.atpg.generate import AtpgConfig, generate_tests
        from repro.scan.testview import ScanDesign

        circuit = _random_circuit(seed, mapped=mapped, n_gates=25)
        design = ScanDesign.full_scan(circuit)
        config = AtpgConfig(seed=seed, max_random_batches=4)
        legacy = generate_tests(design, config, fault_backend="bigint",
                                fault_plan=False)
        for name in ("bigint", "numpy"):
            planned = generate_tests(design, config, fault_backend=name,
                                     fault_plan=True)
            assert planned.vectors == legacy.vectors, name
            assert planned.n_detected == legacy.n_detected, name
            assert planned.n_faults == legacy.n_faults, name
            assert planned.n_untestable == legacy.n_untestable, name
            assert planned.n_aborted == legacy.n_aborted, name
