"""Differential properties: every backend is bit-identical.

Random circuits from the benchmark generator are simulated on all
registered backends; packed waveforms, fault-detection words and
scan-power metrics must agree exactly (integers bit-for-bit, floats
IEEE-equal — the backends are required to accumulate in the same order).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.faults import all_faults
from repro.atpg.faultsim import fault_simulate
from repro.benchgen.generator import generate_from_stats
from repro.benchgen.iscas89 import Iscas89Stats
from repro.cells.library import default_library
from repro.leakage.estimator import per_sample_leakage
from repro.leakage.observability import monte_carlo_observability
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.power.scanpower import ShiftPolicy, evaluate_scan_power
from repro.scan.testview import ScanDesign, TestVector
from repro.simulation.backends import (
    ShardedBackend,
    available_backends,
    get_backend,
)
from repro.simulation.bitsim import random_input_words
from repro.simulation.cyclesim import simulate_cycles
from repro.techmap.mapper import technology_map
from repro.utils.rng import make_rng

BACKENDS = sorted(available_backends())
OTHERS = [name for name in BACKENDS if name != "bigint"]


def _random_circuit(seed: int, n_gates: int = 40, mapped: bool = False
                    ) -> Circuit:
    circuit = generate_from_stats(
        Iscas89Stats("diff", 5, 3, 4, n_gates), seed)
    return technology_map(circuit) if mapped else circuit


class TestPackedWordsIdentical:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 200),
           st.booleans())
    def test_simulate_packed(self, seed, n_patterns, mapped):
        circuit = _random_circuit(seed, mapped=mapped)
        words = random_input_words(circuit, n_patterns, make_rng(seed))
        reference = get_backend("bigint").simulate_packed(
            circuit, words, n_patterns)
        for name in OTHERS:
            got = get_backend(name).simulate_packed(
                circuit, words, n_patterns)
            assert got == reference, name

    def test_mux_and_const_gates(self):
        circuit = Circuit("muxy")
        a = circuit.add_input("a")
        b = circuit.add_input("b")
        s = circuit.add_input("s")
        circuit.add_gate("one", GateType.CONST1, ())
        circuit.add_gate("zero", GateType.CONST0, ())
        circuit.add_gate("m1", GateType.MUX2, (s, a, b))
        circuit.add_gate("m2", GateType.MUX2, (a, "one", "zero"))
        circuit.add_gate("y", GateType.XNOR, ("m1", "m2"))
        circuit.add_output("y")
        words = random_input_words(circuit, 130, make_rng(5))
        results = [get_backend(name).simulate_packed(circuit, words, 130)
                   for name in BACKENDS]
        assert all(r == results[0] for r in results)


class TestFaultWordsIdentical:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 128), st.booleans())
    def test_fault_simulate(self, seed, n_patterns, mapped):
        """Detection words and ``remaining`` ordering are pinned across
        every registered backend (incl. the sharded meta-backend), on
        mapped (NAND/NOR/INV) and unmapped (mixed-type) circuits."""
        circuit = _random_circuit(seed, mapped=mapped)
        faults = all_faults(circuit)
        words = random_input_words(circuit, n_patterns, make_rng(seed))
        reference = fault_simulate(circuit, faults, words, n_patterns,
                                   backend="bigint")
        for name in OTHERS:
            got = fault_simulate(circuit, faults, words, n_patterns,
                                 backend=name)
            assert got.detected == reference.detected, name
            assert list(got.detected) == list(reference.detected), name
            assert got.remaining == reference.remaining, name

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 96),
           st.integers(2, 4))
    def test_sharded_partitioning_is_invisible(self, seed, n_patterns,
                                               n_shards):
        """Forcing real multi-process shards (threshold 1) must produce
        the exact single-process result: same words, same ordering."""
        circuit = _random_circuit(seed, mapped=True, n_gates=25)
        faults = all_faults(circuit)
        words = random_input_words(circuit, n_patterns, make_rng(seed))
        reference = fault_simulate(circuit, faults, words, n_patterns,
                                   backend="bigint")
        backend = ShardedBackend(shards=n_shards, min_faults_per_shard=1)
        got = fault_simulate(circuit, faults, words, n_patterns,
                             backend=backend)
        assert got.detected == reference.detected
        assert list(got.detected) == list(reference.detected)
        assert got.remaining == reference.remaining


class TestPowerMetricsIdentical:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 5))
    def test_scan_power_report(self, seed, n_vectors):
        circuit = _random_circuit(seed, mapped=True)
        design = ScanDesign.full_scan(circuit)
        gen = make_rng(seed)
        vectors = [
            TestVector(
                pi_values={pi: int(gen.integers(2))
                           for pi in design.circuit.inputs},
                scan_state=tuple(int(gen.integers(2))
                                 for _ in range(design.chain.length)))
            for _ in range(n_vectors)
        ]
        policy = ShiftPolicy(name="traditional")
        reference = evaluate_scan_power(design, vectors, policy,
                                        backend="bigint")
        for name in OTHERS:
            got = evaluate_scan_power(design, vectors, policy,
                                      backend=name)
            assert got.n_cycles == reference.n_cycles
            assert got.total_transitions == reference.total_transitions
            assert got.dynamic_uw_per_hz == reference.dynamic_uw_per_hz
            assert got.static_uw == reference.static_uw
            assert got.mean_leakage_na == reference.mean_leakage_na

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 100))
    def test_cycle_sim_accounting(self, seed, n_cycles):
        circuit = _random_circuit(seed, mapped=True)
        library = default_library()
        words = random_input_words(circuit, n_cycles, make_rng(seed))
        reference = simulate_cycles(circuit, words, n_cycles, library,
                                    keep_waveforms=True, backend="bigint")
        for name in OTHERS:
            got = simulate_cycles(circuit, words, n_cycles, library,
                                  keep_waveforms=True, backend=name)
            assert got.transitions == reference.transitions
            assert got.waveforms == reference.waveforms
            assert got.leakage_sum_na == reference.leakage_sum_na
            assert got.mean_leakage_na == reference.mean_leakage_na


class TestLeakageEstimatorsIdentical:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 64))
    def test_per_sample_leakage(self, seed, n_samples):
        circuit = _random_circuit(seed, mapped=True)
        words = random_input_words(circuit, n_samples, make_rng(seed))
        reference = per_sample_leakage(circuit, words, n_samples,
                                       backend="bigint")
        for name in OTHERS:
            got = per_sample_leakage(circuit, words, n_samples,
                                     backend=name)
            assert (got == reference).all(), name

    @pytest.mark.parametrize("other", OTHERS)
    def test_monte_carlo_observability(self, other):
        circuit = _random_circuit(3, mapped=True)
        reference = monte_carlo_observability(circuit, 64, seed=0,
                                              backend="bigint")
        got = monte_carlo_observability(circuit, 64, seed=0, backend=other)
        assert got == reference
