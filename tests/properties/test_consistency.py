"""Cross-implementation consistency properties.

Several quantities are computed by two independent code paths (big-int
popcounts vs numpy LUTs, packed vs scalar, analytical vs composed).
These tests pin them against each other on random stimuli.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchgen.generator import generate_from_stats
from repro.benchgen.iscas89 import Iscas89Stats
from repro.cells.library import default_library
from repro.leakage.estimator import per_sample_leakage
from repro.simulation.bitsim import random_input_words
from repro.simulation.cyclesim import simulate_cycles
from repro.spice.constants import default_tech
from repro.spice.stack import blocked_stack_current
from repro.techmap.mapper import technology_map
from repro.utils.rng import make_rng


class TestLeakageAccountingAgreement:
    """cyclesim's popcount accounting vs the numpy per-sample LUT path."""

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 40))
    def test_mean_leakage_two_ways(self, seed, n_samples):
        circuit = technology_map(generate_from_stats(
            Iscas89Stats("cons", 4, 3, 4, 30), seed))
        library = default_library()
        words = random_input_words(circuit, n_samples, make_rng(seed))
        by_cycles = simulate_cycles(circuit, words, n_samples, library)
        by_samples = per_sample_leakage(circuit, words, n_samples,
                                        library)
        assert by_cycles.mean_leakage_na == pytest.approx(
            float(by_samples.mean()), rel=1e-9)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_leakage_sum_covers_all_gates(self, seed):
        circuit = technology_map(generate_from_stats(
            Iscas89Stats("cons2", 4, 3, 4, 30), seed))
        words = random_input_words(circuit, 8, make_rng(seed))
        result = simulate_cycles(circuit, words, 8)
        assert set(result.leakage_sum_na) == set(circuit.topo_order())
        assert all(v >= 0 for v in result.leakage_sum_na.values())


class TestStackSolverProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=4)
           .filter(lambda flags: not all(flags)),
           st.floats(min_value=0.5, max_value=4.0),
           st.sampled_from(["n", "p"]))
    def test_solution_well_formed(self, flags, width, device):
        tech = default_tech()
        sol = blocked_stack_current(tech, flags, width, device)
        assert sol.current_na > 0
        nodes = sol.node_voltages
        assert len(nodes) == len(flags) + 1
        assert nodes[0] == 0.0
        assert nodes[-1] == pytest.approx(tech.vdd)
        for a, b in zip(nodes, nodes[1:]):
            assert a <= b + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 4))
    def test_more_off_devices_less_current(self, n_off):
        tech = default_tech()
        currents = [
            blocked_stack_current(tech, [False] * k, 2.0).current_na
            for k in range(1, n_off + 1)
        ]
        for bigger_stack, smaller_stack in zip(currents[1:], currents):
            assert bigger_stack < smaller_stack

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.25, max_value=8.0),
           st.floats(min_value=1.1, max_value=4.0))
    def test_width_linearity(self, width, factor):
        tech = default_tech()
        base = blocked_stack_current(tech, [False, True], width).current_na
        scaled = blocked_stack_current(
            tech, [False, True], width * factor).current_na
        assert scaled == pytest.approx(base * factor, rel=1e-6)


class TestCharacterisationProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 4))
    def test_all_ones_nand_grows_with_arity(self, k):
        from repro.spice.characterize import characterize_nand
        if k < 3:
            return
        smaller = characterize_nand(k - 1)[(1,) * (k - 1)]
        bigger = characterize_nand(k)[(1,) * k]
        assert bigger > smaller

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 4))
    def test_tables_strictly_positive(self, k):
        from repro.spice.characterize import characterize_nor
        table = characterize_nor(k)
        assert all(v > 0 for v in table.values())
