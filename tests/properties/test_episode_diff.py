"""Differential properties of the batched episode engine.

The batched whole-test-set replay must be observationally identical to
the legacy per-episode path — packed waveforms bit for bit, transition
counts exactly, leakage floats IEEE-equal — on every registered backend,
on mapped and unmapped circuits, and under forced pattern/cycle-axis
sharding with real worker processes.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.benchgen.generator import generate_from_stats
from repro.benchgen.iscas89 import Iscas89Stats
from repro.netlist.circuit import Circuit
from repro.power.scanpower import (
    ShiftPolicy,
    episode_waveforms,
    evaluate_scan_power,
    per_cycle_energy_fj,
)
from repro.scan.testview import ScanDesign, TestVector
from repro.simulation.backends import (
    ShardedBackend,
    available_backends,
    get_backend,
)
from repro.simulation.episode import compile_episode_plan
from repro.techmap.mapper import technology_map
from repro.utils.rng import make_rng

BACKENDS = sorted(available_backends())


def _random_design(seed: int, mapped: bool, n_gates: int = 30
                   ) -> ScanDesign:
    circuit: Circuit = generate_from_stats(
        Iscas89Stats("epi", 4, 2, 5, n_gates), seed)
    if mapped:
        circuit = technology_map(circuit)
    return ScanDesign.full_scan(circuit)


def _random_vectors(design: ScanDesign, n: int, seed: int
                    ) -> list[TestVector]:
    gen = make_rng(seed)
    return [
        TestVector(
            pi_values={pi: int(gen.integers(2))
                       for pi in design.circuit.inputs},
            scan_state=tuple(int(gen.integers(2))
                             for _ in range(design.chain.length)))
        for _ in range(n)
    ]


def _blocking_policy(design: ScanDesign, seed: int) -> ShiftPolicy:
    gen = make_rng(seed)
    return ShiftPolicy(
        name="blocked",
        pi_values={pi: int(gen.integers(2))
                   for pi in design.circuit.inputs},
        mux_ties={q: int(gen.integers(2))
                  for q in design.chain.q_lines
                  if gen.integers(2)})


class TestBatchedEqualsSerial:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 6), st.booleans(),
           st.booleans())
    def test_waveforms_identical(self, seed, n_vectors, mapped,
                                 include_capture):
        design = _random_design(seed, mapped)
        vectors = _random_vectors(design, n_vectors, seed)
        policy = _blocking_policy(design, seed)
        serial = episode_waveforms(design, vectors, policy,
                                   include_capture, episode_batch=False)
        for name in BACKENDS:
            batched = episode_waveforms(design, vectors, policy,
                                        include_capture, backend=name,
                                        episode_batch=True)
            assert batched == serial, name

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 5), st.booleans())
    def test_power_reports_identical(self, seed, n_vectors, mapped):
        design = _random_design(seed, mapped)
        vectors = _random_vectors(design, n_vectors, seed)
        policy = _blocking_policy(design, seed)
        reference = evaluate_scan_power(design, vectors, policy,
                                        backend="bigint",
                                        episode_batch=False)
        for name in BACKENDS:
            batched = evaluate_scan_power(design, vectors, policy,
                                          backend=name,
                                          episode_batch=True)
            assert batched == reference, name

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 4))
    def test_energy_profile_identical(self, seed, n_vectors):
        design = _random_design(seed, mapped=True)
        vectors = _random_vectors(design, n_vectors, seed)
        serial = per_cycle_energy_fj(design, vectors,
                                     episode_batch=False)
        for name in BACKENDS:
            batched = per_cycle_energy_fj(design, vectors, backend=name,
                                          episode_batch=True)
            assert np.array_equal(batched, serial), name


class TestPatternAxisSharding:
    """Forced cycle-axis chunks across real worker processes must be
    invisible: transitions, leakage floats and concatenated waveforms
    equal the unsharded big-int reference exactly."""

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 5), st.integers(2, 3),
           st.booleans())
    def test_sharded_chunks_are_invisible(self, seed, n_vectors,
                                          n_shards, mapped):
        design = _random_design(seed, mapped)
        vectors = _random_vectors(design, n_vectors, seed)
        policy = _blocking_policy(design, seed)
        plan = compile_episode_plan(
            design, vectors, pi_values=policy.pi_values,
            mux_ties=policy.mux_ties, backend="bigint")
        # A tiny element budget forces real multi-chunk dispatch.
        backend = ShardedBackend(shards=n_shards, episode_budget=4)
        assert backend.episode_chunks(plan) > 1
        reference = get_backend("bigint").simulate_episode_batch(
            plan, keep_waveforms=True)
        sharded = backend.simulate_episode_batch(plan,
                                                 keep_waveforms=True)
        assert sharded.transitions == reference.transitions
        assert sharded.leakage_sum_na == reference.leakage_sum_na
        assert list(sharded.leakage_sum_na) == \
            list(reference.leakage_sum_na)
        assert sharded.waveforms == reference.waveforms
        assert sharded.mean_leakage_na == reference.mean_leakage_na

    def test_sharded_report_via_public_entry(self):
        design = _random_design(11, mapped=True)
        vectors = _random_vectors(design, 4, 11)
        reference = evaluate_scan_power(design, vectors,
                                        backend="bigint",
                                        episode_batch=False)
        backend = ShardedBackend(shards=2, episode_budget=4)
        batched = evaluate_scan_power(design, vectors, backend=backend,
                                      episode_batch=True)
        assert batched == reference

    def test_small_plan_runs_inline(self, s27_design, make_vectors):
        plan = compile_episode_plan(s27_design,
                                    make_vectors(s27_design, 2))
        backend = ShardedBackend(shards=4)
        assert backend.episode_chunks(plan) == 1
