"""Differential properties of out-of-core streaming plan evaluation.

A streamed evaluation — packed matrices produced lazily per window
under a ``stream_budget``, partials folded into an accumulator — must
be observationally identical to the resident path: episode transition
counts exactly, leakage floats IEEE-equal, kept waveforms bit for bit,
fault detection words bit for bit with ``remaining`` in exact input
order.  On every registered backend, in both fault drop modes, under
adversarially tiny budgets (one window per cycle / per pattern word),
and composed with real multi-process sharding.  Peak memory must
actually stay bounded: the ``tracemalloc`` test pins that a streamed
pass allocates a fraction of the resident matrix.
"""

import tracemalloc

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.faults import all_faults
from repro.benchgen.generator import generate_from_stats
from repro.benchgen.iscas89 import Iscas89Stats
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.power.scanpower import evaluate_scan_power
from repro.scan.testview import ScanDesign, TestVector
from repro.simulation.backends import (
    ShardedBackend,
    available_backends,
    get_backend,
)
from repro.simulation.bitsim import random_input_words
from repro.simulation.episode import compile_episode_plan
from repro.simulation.fault_episode import (
    FaultSimSession,
    compile_fault_episode_plan,
)
from repro.simulation.streaming import (
    DEFAULT_STREAM_BUDGET_ENV,
    PlanByteStore,
    episode_stream_windows,
    fault_stream_windows,
    resolve_stream_budget,
    set_default_stream_budget,
    state_elements,
    window_word,
)
from repro.techmap.mapper import technology_map
from repro.utils.rng import make_rng

BACKENDS = sorted(available_backends())


@pytest.fixture(autouse=True)
def _no_session_budget():
    """Streaming stays opt-in per test; never leak a session default."""
    set_default_stream_budget(None)
    yield
    set_default_stream_budget(None)


def _random_design(seed: int, mapped: bool = False, n_gates: int = 30
                   ) -> ScanDesign:
    circuit: Circuit = generate_from_stats(
        Iscas89Stats("epi", 4, 2, 5, n_gates), seed)
    if mapped:
        circuit = technology_map(circuit)
    return ScanDesign.full_scan(circuit)


def _random_vectors(design: ScanDesign, n: int, seed: int
                    ) -> list[TestVector]:
    gen = make_rng(seed)
    return [
        TestVector(
            pi_values={pi: int(gen.integers(2))
                       for pi in design.circuit.inputs},
            scan_state=tuple(int(gen.integers(2))
                             for _ in range(design.chain.length)))
        for _ in range(n)
    ]


def _random_circuit(seed: int, n_gates: int = 40, mapped: bool = False
                    ) -> Circuit:
    circuit = generate_from_stats(
        Iscas89Stats("fedge", 5, 3, 4, n_gates), seed)
    return technology_map(circuit) if mapped else circuit


def _assert_same_faults(got, reference, context) -> None:
    assert got.detected == reference.detected, context
    assert list(got.detected) == list(reference.detected), context
    assert got.remaining == reference.remaining, context


class TestBudgetResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_STREAM_BUDGET_ENV, "111")
        set_default_stream_budget(222)
        assert resolve_stream_budget(333) == 333

    def test_session_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_STREAM_BUDGET_ENV, "111")
        set_default_stream_budget(222)
        assert resolve_stream_budget(None) == 222

    def test_env_is_the_fallback(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_STREAM_BUDGET_ENV, "111")
        assert resolve_stream_budget(None) == 111
        monkeypatch.delenv(DEFAULT_STREAM_BUDGET_ENV)
        assert resolve_stream_budget(None) is None

    def test_zero_means_explicitly_off(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_STREAM_BUDGET_ENV, "111")
        assert resolve_stream_budget(0) is None
        set_default_stream_budget(0)
        assert resolve_stream_budget(None) is None

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            resolve_stream_budget(-1)
        with pytest.raises(SimulationError):
            set_default_stream_budget(-5)

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_STREAM_BUDGET_ENV, "lots")
        with pytest.raises(SimulationError):
            resolve_stream_budget(None)


class TestPlanByteStore:
    def test_spilled_store_windows_match_resident(self):
        waveforms = {f"L{i}": int(make_rng(i).integers(2**62)) << 64 | i
                     for i in range(5)}
        n_cycles = 130
        resident = PlanByteStore(waveforms, n_cycles)
        spilled = PlanByteStore(waveforms, n_cycles, spill_bytes=1)
        assert not resident.spilled and spilled.spilled
        for start, stop in [(0, 1), (0, 130), (63, 65), (64, 128),
                            (129, 130), (7, 70)]:
            assert spilled.window(start, stop) == \
                resident.window(start, stop), (start, stop)

    def test_window_word_straddles_byte_edges(self):
        word = 0xDEADBEEFCAFEF00D5577AA33
        raw = word.to_bytes(16, "little")
        for start, stop in [(0, 96), (3, 9), (8, 16), (5, 95), (90, 96)]:
            expected = (word >> start) & ((1 << (stop - start)) - 1)
            assert window_word(raw, start, stop) == expected

    def test_from_bytes_round_trip(self):
        waveforms = {"a": 0b1011, "b": 0}
        store = PlanByteStore(waveforms, 4)
        clone = PlanByteStore.from_bytes(
            {"a": (0b1011).to_bytes(1, "little"),
             "b": (0).to_bytes(1, "little")}, 4)
        assert clone.window(0, 4) == store.window(0, 4) == waveforms


class TestWindowPlans:
    def test_episode_windows_cover_every_cycle_once(self):
        design = _random_design(0)
        plan = compile_episode_plan(design, _random_vectors(design, 3, 0))
        bounds = episode_stream_windows(plan, 1)
        assert bounds[0][0] == 0 and bounds[-1][1] == plan.n_cycles
        for (a, b), (c, _) in zip(bounds, bounds[1:]):
            assert a < b == c
        assert len(bounds) == plan.n_cycles  # budget 1: maximal split

    def test_fault_windows_are_word_aligned(self):
        bounds = fault_stream_windows(200, 1, circuit=_random_circuit(0),
                                      n_stimulus_lines=9)
        assert bounds[0][0] == 0 and bounds[-1][1] == 200
        for start, stop in bounds[:-1]:
            assert start % 64 == 0 and stop % 64 == 0


class TestStreamedEpisodeEqualsResident:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 5), st.booleans())
    def test_every_backend_tiny_budgets(self, seed, n_vectors, mapped):
        design = _random_design(seed, mapped)
        vectors = _random_vectors(design, n_vectors, seed)
        plan = compile_episode_plan(design, vectors)
        budgets = (1, plan.state_elements() // max(plan.n_cycles, 1) or 1,
                   64)
        for name in BACKENDS:
            engine = get_backend(name)
            resident = engine.simulate_episode_batch(
                plan, keep_waveforms=True, stream_budget=0)
            for budget in budgets:
                streamed = engine.simulate_episode_batch(
                    plan, keep_waveforms=True, stream_budget=budget)
                assert streamed == resident, (name, budget)

    def test_scan_power_reports_identical(self):
        design = _random_design(3, mapped=True)
        vectors = _random_vectors(design, 4, 3)
        resident = evaluate_scan_power(design, vectors, stream_budget=0)
        for name in BACKENDS:
            streamed = evaluate_scan_power(design, vectors, backend=name,
                                           stream_budget=1)
            assert streamed == resident, name

    def test_env_budget_engages_streaming(self, monkeypatch):
        """$REPRO_STREAM_BUDGET alone must route through the streamer."""
        import repro.simulation.streaming as streaming_mod

        design = _random_design(5)
        vectors = _random_vectors(design, 3, 5)
        resident = evaluate_scan_power(design, vectors, backend="bigint")

        calls = []
        real = streaming_mod.stream_episode_batch

        def spy(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        # base.py imports the streamer lazily inside the gate, so the
        # spy must live on the streaming module itself.
        monkeypatch.setattr(streaming_mod, "stream_episode_batch", spy)
        monkeypatch.setenv(DEFAULT_STREAM_BUDGET_ENV, "1")
        streamed = evaluate_scan_power(design, vectors, backend="bigint")
        assert calls, "streaming never engaged under the env budget"
        assert streamed == resident


class TestStreamedFaultsEqualResident:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 150), st.booleans(),
           st.booleans())
    def test_every_backend_both_drop_modes(self, seed, n_patterns,
                                           mapped, drop):
        circuit = _random_circuit(seed, mapped=mapped)
        faults = all_faults(circuit)
        words = random_input_words(circuit, n_patterns, make_rng(seed))
        plan = compile_fault_episode_plan(circuit, faults, words,
                                          n_patterns)
        budgets = (1, plan.state_elements() // max(plan.n_words, 1) or 1)
        for name in BACKENDS:
            engine = get_backend(name)
            resident = engine.fault_simulate_plan(plan, drop=drop,
                                                  stream_budget=0)
            for budget in budgets:
                streamed = engine.fault_simulate_plan(
                    plan, drop=drop, stream_budget=budget)
                _assert_same_faults(streamed, resident,
                                    (name, drop, budget))

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 10_000), st.booleans())
    def test_session_budget_matches_resident_session(self, seed, drop):
        circuit = _random_circuit(seed, n_gates=30)
        faults = all_faults(circuit)
        words = random_input_words(circuit, 130, make_rng(seed))
        resident = FaultSimSession(circuit, "bigint").simulate(
            faults, words, 130, drop=drop)
        for name in ("bigint", "numpy"):
            session = FaultSimSession(circuit, name, stream_budget=1)
            got = session.simulate(faults, words, 130, drop=drop)
            _assert_same_faults(got, resident, (name, drop))


class TestStreamingComposesWithSharding:
    def test_episode_chunks_sub_stream(self):
        """Real worker processes, each folding its own sub-windows."""
        design = _random_design(11, mapped=True)
        vectors = _random_vectors(design, 6, 11)
        plan = compile_episode_plan(design, vectors)
        resident = get_backend("numpy").simulate_episode_batch(
            plan, keep_waveforms=True, stream_budget=0)
        sharded = ShardedBackend(shards=2, episode_budget=4)
        streamed = sharded.simulate_episode_batch(
            plan, keep_waveforms=True, stream_budget=8)
        assert streamed == resident

    @pytest.mark.parametrize("drop", [True, False])
    def test_fault_shards_stream_their_windows(self, drop):
        circuit = _random_circuit(13, n_gates=40, mapped=True)
        faults = all_faults(circuit)
        words = random_input_words(circuit, 192, make_rng(13))
        plan = compile_fault_episode_plan(circuit, faults, words, 192)
        resident = get_backend("numpy").fault_simulate_plan(
            plan, drop=drop, stream_budget=0)
        sharded = ShardedBackend(shards=2, min_faults_per_shard=1)
        streamed = sharded.fault_simulate_plan(
            plan, drop=drop,
            stream_budget=plan.state_elements() // 4 or 1)
        _assert_same_faults(streamed, resident, drop)


class TestPeakMemoryBounded:
    def test_streamed_fault_pass_allocates_a_fraction(self):
        """tracemalloc peak: budget = elements/16 must cut the resident
        state-matrix allocation by at least 3x (numpy >= 1.11 routes
        array data through the traced allocator)."""
        circuit = _random_circuit(1, n_gates=400, mapped=True)
        faults = all_faults(circuit)[:40]
        n = 4096
        words = random_input_words(circuit, n, make_rng(1))
        engine = get_backend("numpy")

        def measure(budget):
            plan = compile_fault_episode_plan(circuit, faults, words, n)
            tracemalloc.start()
            tracemalloc.reset_peak()
            engine.fault_simulate_plan(plan, drop=False,
                                       stream_budget=budget)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        measure(0)  # warm schedule + plan caches outside the trace
        resident_peak = measure(0)
        budget = state_elements(len(words), circuit, n) // 16
        streamed_peak = measure(budget)
        assert streamed_peak * 3 < resident_peak, (
            f"streamed peak {streamed_peak} not < 1/3 of resident "
            f"{resident_peak}")
