"""Tests for the delay models."""

import pytest

from repro.cells.capacitance import line_load_ff
from repro.cells.library import default_library
from repro.netlist import builders
from repro.timing.delay import LibraryDelay, UnitDelay


class TestUnitDelay:
    def test_every_gate_costs_one(self, s27):
        model = UnitDelay(s27)
        for line in s27.topo_order():
            assert model.delay_of(line) == 1.0

    def test_sources_launch_at_zero(self, s27):
        model = UnitDelay(s27)
        assert model.launch_of("G0") == 0.0
        assert model.launch_of("G5") == 0.0


class TestLibraryDelay:
    def test_delay_matches_formula(self, s27_mapped, library):
        model = LibraryDelay(s27_mapped, library)
        for line in s27_mapped.topo_order():
            gate = s27_mapped.gates[line]
            load = line_load_ff(s27_mapped, line, library,
                                include_internal=False)
            expected = library.delay_ps(gate.gtype, len(gate.inputs), load)
            assert model.delay_of(line) == pytest.approx(expected)

    def test_flop_outputs_launch_at_clk_to_q(self, s27_mapped, library):
        model = LibraryDelay(s27_mapped, library)
        clk_to_q = library.spec(
            s27_mapped.dff_gates[0].gtype, 1).intrinsic_delay_ps
        for q in s27_mapped.dff_outputs:
            assert model.launch_of(q) == clk_to_q

    def test_pis_launch_at_zero(self, s27_mapped, library):
        model = LibraryDelay(s27_mapped, library)
        for pi in s27_mapped.inputs:
            assert model.launch_of(pi) == 0.0

    def test_combinational_circuit_no_launch(self, c17, library):
        model = LibraryDelay(c17, library)
        assert model.launch_of(c17.inputs[0]) == 0.0

    def test_loaded_gate_is_slower(self, library):
        """A gate driving many sinks must be slower than a copy driving
        one sink."""
        light = builders.chain_of_inverters(2, "light")
        model_light = LibraryDelay(light, library)
        heavy = builders.wide_gate_circuit(4, "heavy")
        # i0 in heavy feeds two wide gates; compare the NOT in light
        # driving a single NOT vs the same cell driving more load.
        assert model_light.delay_of("s0") < library.delay_ps(
            light.gates["s0"].gtype, 1, 50.0)
