"""Tests for static timing analysis."""

import pytest

from repro.errors import TimingError
from repro.netlist import builders
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.timing.delay import LibraryDelay, UnitDelay
from repro.timing.sta import (
    critical_path,
    run_sta,
    timing_endpoints,
    timing_sources,
)


class TestSourcesEndpoints:
    def test_sources(self, s27):
        sources = timing_sources(s27)
        assert sources[:4] == list(s27.inputs)
        assert set(sources[4:]) == {"G5", "G6", "G7"}

    def test_endpoints_include_pos_and_d_lines(self, s27):
        endpoints = timing_endpoints(s27)
        assert "G17" in endpoints           # PO
        assert "G10" in endpoints           # D of G5
        assert len(endpoints) == len(set(endpoints))


class TestUnitDelaySta:
    def test_inverter_chain_critical_delay(self):
        chain = builders.chain_of_inverters(9)
        sta = run_sta(chain, UnitDelay(chain))
        assert sta.critical_delay == 9.0

    def test_arrival_equals_level_for_unit_delay(self, s27):
        sta = run_sta(s27, UnitDelay(s27))
        for line in s27.topo_order():
            assert sta.arrival[line] == s27.level_of(line)

    def test_critical_lines_have_zero_slack(self, s27):
        sta = run_sta(s27, UnitDelay(s27))
        endpoints = timing_endpoints(s27)
        worst = max(endpoints, key=lambda e: sta.arrival[e])
        assert sta.slack(worst) == pytest.approx(0.0)

    def test_all_slacks_non_negative_at_critical_period(self, s27):
        sta = run_sta(s27, UnitDelay(s27))
        for line, slack in sta.slacks().items():
            assert slack >= -1e-9, line

    def test_explicit_period(self, s27):
        sta = run_sta(s27, UnitDelay(s27), period=100.0)
        for slack in sta.slacks().values():
            assert slack > 0

    def test_unknown_line_slack_raises(self, s27):
        sta = run_sta(s27, UnitDelay(s27))
        with pytest.raises(TimingError):
            sta.slack("nonexistent")


class TestSourceOffsets:
    def test_offset_on_critical_source_moves_delay(self):
        chain = builders.chain_of_inverters(5)
        model = UnitDelay(chain)
        base = run_sta(chain, model)
        shifted = run_sta(chain, model, source_offsets={"in": 2.5})
        assert shifted.critical_delay == base.critical_delay + 2.5

    def test_offset_within_slack_harmless(self):
        c = Circuit("two_paths")
        c.add_input("fast")
        c.add_input("slow")
        c.add_gate("s1", GateType.NOT, ("slow",))
        c.add_gate("s2", GateType.NOT, ("s1",))
        c.add_gate("s3", GateType.NOT, ("s2",))
        c.add_gate("f1", GateType.NOT, ("fast",))
        c.add_gate("y", GateType.NAND, ("s3", "f1"))
        c.add_output("y")
        model = UnitDelay(c)
        base = run_sta(c, model)
        slack_fast = base.slack("fast")
        assert slack_fast == pytest.approx(2.0)
        bumped = run_sta(c, model, source_offsets={"fast": 2.0})
        assert bumped.critical_delay == base.critical_delay

    def test_offset_beyond_slack_extends(self):
        c = Circuit("two_paths")
        c.add_input("fast")
        c.add_input("slow")
        c.add_gate("s1", GateType.NOT, ("slow",))
        c.add_gate("s2", GateType.NOT, ("s1",))
        c.add_gate("f1", GateType.NOT, ("fast",))
        c.add_gate("y", GateType.NAND, ("s2", "f1"))
        c.add_output("y")
        model = UnitDelay(c)
        base = run_sta(c, model)
        bumped = run_sta(c, model,
                         source_offsets={"fast": base.slack("fast") + 1})
        assert bumped.critical_delay == base.critical_delay + 1


class TestCriticalPath:
    def test_path_is_connected_and_maximal(self, s27_mapped, library):
        model = LibraryDelay(s27_mapped, library)
        sta = run_sta(s27_mapped, model)
        path = critical_path(s27_mapped, model, sta)
        assert sta.arrival[path[-1]] == pytest.approx(sta.critical_delay)
        for upstream, downstream in zip(path, path[1:]):
            gate = s27_mapped.gates[downstream]
            assert upstream in gate.inputs

    def test_path_starts_at_source(self, s27_mapped, library):
        model = LibraryDelay(s27_mapped, library)
        sta = run_sta(s27_mapped, model)
        path = critical_path(s27_mapped, model, sta)
        start = path[0]
        assert s27_mapped.is_input(start) or \
            start in s27_mapped.dff_outputs

    def test_empty_for_no_endpoints(self):
        c = Circuit("empty-ish")
        c.add_input("a")
        model = UnitDelay(c)
        sta = run_sta(c, model)
        assert critical_path(c, model, sta) == []


class TestLibrarySta:
    def test_mapped_s27_timing_sane(self, s27_mapped, library):
        sta = run_sta(s27_mapped, LibraryDelay(s27_mapped, library))
        # clk-to-q (45) + a handful of gates: between 100 and 500 ps.
        assert 100 < sta.critical_delay < 500

    def test_arrival_includes_launch(self, s27_mapped, library):
        model = LibraryDelay(s27_mapped, library)
        sta = run_sta(s27_mapped, model)
        for q in s27_mapped.dff_outputs:
            assert sta.arrival[q] == model.launch_of(q)
