"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running performance tests (deselect with "
        "-m 'not slow')")

from repro.cells.library import default_library
from repro.netlist import builders
from repro.scan.testview import ScanDesign, TestVector
from repro.techmap.mapper import technology_map
from repro.utils.rng import make_rng


@pytest.fixture(autouse=True)
def _reset_session_runtime_options():
    """Clear the session-default runtime options after every test.

    ``repro.cli.main`` installs process-global session defaults (one
    :class:`repro.runtime.RuntimeOptions`); without this reset a CLI
    test running e.g. ``--episode-batch off`` would leak the override
    into later tests and make the suite order-dependent.
    """
    yield
    from repro.runtime import RuntimeOptions, set_session_defaults
    set_session_defaults(RuntimeOptions())


@pytest.fixture
def s27():
    """The real ISCAS89 s27 circuit (4 PI, 1 PO, 3 DFF)."""
    return builders.s27()


@pytest.fixture
def s27_mapped(s27):
    """s27 technology-mapped to NAND/NOR/INV."""
    return technology_map(s27)


@pytest.fixture
def c17():
    """The combinational ISCAS85 c17 circuit."""
    return builders.c17()


@pytest.fixture
def toy():
    """The 6-flop toy scan circuit (mixed gate types)."""
    return builders.toy_scan_circuit()


@pytest.fixture
def toy_mapped(toy):
    return technology_map(toy)


@pytest.fixture
def library():
    """The default calibrated cell library (shared instance)."""
    return default_library()


@pytest.fixture
def rng():
    """A deterministic RNG for tests that need randomness."""
    return make_rng(12345)


@pytest.fixture
def s27_design(s27_mapped):
    """Full-scan design over mapped s27."""
    return ScanDesign.full_scan(s27_mapped)


def random_vectors(design: ScanDesign, n: int, seed: int = 0
                   ) -> list[TestVector]:
    """Deterministic random test vectors for a design (test helper)."""
    gen = make_rng(seed)
    vectors = []
    for _ in range(n):
        pi_values = {pi: int(gen.integers(2))
                     for pi in design.circuit.inputs}
        state = tuple(int(gen.integers(2))
                      for _ in range(design.chain.length))
        vectors.append(TestVector(pi_values=pi_values, scan_state=state))
    return vectors


@pytest.fixture
def make_vectors():
    """Factory fixture: ``make_vectors(design, n, seed)``."""
    return random_vectors
