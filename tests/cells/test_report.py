"""Tests for the cell library report."""

import pytest

from repro.cells.report import describe_library, leakage_summary
from repro.netlist.gates import GateType


class TestLeakageSummary:
    def test_min_mean_max_ordering(self, library):
        lo, mean, hi = leakage_summary(library, GateType.NAND, 2)
        assert lo <= mean <= hi

    def test_nand2_extremes_match_figure2(self, library):
        lo, _mean, hi = leakage_summary(library, GateType.NAND, 2)
        assert lo == pytest.approx(73.0, rel=0.02)
        assert hi == pytest.approx(408.0, rel=0.02)


class TestDescribeLibrary:
    def test_lists_all_native_cells(self, library):
        text = describe_library(library)
        for name in ("INV", "NAND2", "NAND4", "NOR3", "MUX2"):
            assert name in text

    def test_header_has_conditions(self, library):
        text = describe_library(library)
        assert "VDD=0.9" in text
        assert "fF/fanout" in text
