"""Tests for the cell library."""

import pytest

from repro.cells.library import CellLibrary, default_library
from repro.errors import TimingError
from repro.netlist.gates import GateType


@pytest.fixture(scope="module")
def lib():
    return default_library()


class TestSpecs:
    def test_native_cells_present(self, lib):
        for gtype, arity in [(GateType.NAND, 2), (GateType.NAND, 4),
                             (GateType.NOR, 3), (GateType.NOT, 1)]:
            spec = lib.spec(gtype, arity)
            assert spec.pin_cap_ff > 0
            assert spec.intrinsic_delay_ps > 0

    def test_arity_normalisation(self, lib):
        assert lib.spec(GateType.MUX2, 3).name == "MUX2"
        assert lib.spec(GateType.DFF, 1).name == "SDFF"
        assert lib.spec(GateType.CONST0, 0).name == "TIE0"

    def test_wide_gate_rejected(self, lib):
        with pytest.raises(TimingError, match="techmap"):
            lib.spec(GateType.NAND, 7)

    def test_wider_cells_cost_more(self, lib):
        d2 = lib.spec(GateType.NAND, 2)
        d4 = lib.spec(GateType.NAND, 4)
        assert d4.intrinsic_delay_ps > d2.intrinsic_delay_ps
        assert d4.pin_cap_ff > d2.pin_cap_ff
        assert d4.area_um2 > d2.area_um2


class TestLeakageAccess:
    def test_leakage_matches_figure2(self, lib):
        assert lib.leakage_na(GateType.NAND, (0, 1)) == pytest.approx(
            73.0, rel=0.02)

    def test_leakage_table_cached(self, lib):
        a = lib.leakage_table(GateType.NOR, 2)
        b = lib.leakage_table(GateType.NOR, 2)
        assert a is b

    def test_tie_cells_leak_nothing(self, lib):
        assert lib.leakage_na(GateType.CONST0, ()) == 0.0
        assert lib.leakage_na(GateType.CONST1, ()) == 0.0


class TestEnergyAndDelay:
    def test_switching_energy_formula(self, lib):
        # 0.5 * C * V^2: 2 fF at 0.9 V -> 0.81 fJ
        assert lib.switching_energy_fj(2.0) == pytest.approx(0.81)

    def test_delay_increases_with_load(self, lib):
        light = lib.delay_ps(GateType.NAND, 2, 1.0)
        heavy = lib.delay_ps(GateType.NAND, 2, 10.0)
        assert heavy > light

    def test_mux_spec(self, lib):
        assert lib.mux_spec.gtype is GateType.MUX2


class TestIdentity:
    def test_equality_and_hash(self):
        a = CellLibrary()
        b = CellLibrary()
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_wire_cap(self):
        a = CellLibrary()
        b = CellLibrary(wire_cap_per_fanout_ff=0.9)
        assert a != b

    def test_default_library_is_singleton(self):
        assert default_library() is default_library()
