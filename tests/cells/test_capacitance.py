"""Tests for load capacitance extraction."""

import pytest

from repro.cells.capacitance import line_load_ff, load_map_ff, switched_caps_ff
from repro.cells.library import default_library
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType


@pytest.fixture(scope="module")
def lib():
    return default_library()


def fan_circuit() -> Circuit:
    c = Circuit("fan")
    c.add_input("a")
    c.add_gate("n1", GateType.NOT, ("a",))
    c.add_gate("n2", GateType.NAND, ("n1", "a"))
    c.add_gate("n3", GateType.NOR, ("n1", "a"))
    c.add_output("n2")
    return c


class TestLineLoad:
    def test_sums_fanout_pins_and_wire(self, lib):
        c = fan_circuit()
        # n1 drives one NAND2 pin and one NOR2 pin
        expected = (lib.pin_cap_ff(GateType.NAND, 2)
                    + lib.pin_cap_ff(GateType.NOR, 2)
                    + 2 * lib.wire_cap_per_fanout_ff
                    + lib.spec(GateType.NOT, 1).internal_cap_ff)
        assert line_load_ff(c, "n1", lib) == pytest.approx(expected)

    def test_primary_output_load_added(self, lib):
        c = fan_circuit()
        with_po = line_load_ff(c, "n2", lib, include_internal=False)
        assert with_po == pytest.approx(lib.output_load_ff)

    def test_internal_cap_toggle(self, lib):
        c = fan_circuit()
        with_internal = line_load_ff(c, "n1", lib, include_internal=True)
        without = line_load_ff(c, "n1", lib, include_internal=False)
        assert with_internal - without == pytest.approx(
            lib.spec(GateType.NOT, 1).internal_cap_ff)

    def test_input_line_has_no_internal_cap(self, lib):
        c = fan_circuit()
        # "a" drives the NOT, the NAND and the NOR; no internal cap since
        # it is not a gate output.
        load = line_load_ff(c, "a", lib)
        expected = (lib.pin_cap_ff(GateType.NOT, 1)
                    + lib.pin_cap_ff(GateType.NAND, 2)
                    + lib.pin_cap_ff(GateType.NOR, 2)
                    + 3 * lib.wire_cap_per_fanout_ff)
        assert load == pytest.approx(expected)

    def test_dangling_gate_load(self, lib):
        c = fan_circuit()
        # n3 drives nothing and is not a PO: internal cap only.
        assert line_load_ff(c, "n3", lib) == pytest.approx(
            lib.spec(GateType.NOR, 2).internal_cap_ff)


class TestMaps:
    def test_load_map_covers_all_lines(self, lib, s27):
        caps = load_map_ff(s27, lib)
        assert set(caps) == set(s27.lines())
        assert all(v >= 0 for v in caps.values())

    def test_switched_caps_alias(self, lib, s27):
        assert switched_caps_ff(s27, lib) == load_map_ff(
            s27, lib, include_internal=True)
