"""Tests for the benchmark loader and provenance logic."""

import pytest

from repro.benchgen.loader import (
    available_circuits,
    circuit_provenance,
    load_circuit,
    table1_circuits,
)
from repro.netlist.bench import write_bench_file
from repro.netlist import builders


class TestProvenance:
    def test_s27_embedded(self):
        assert circuit_provenance("s27") == "embedded"

    def test_synthetic_default(self):
        assert circuit_provenance("s344") == "synthetic"

    def test_real_file_override(self, tmp_path):
        real = builders.toy_scan_circuit()
        write_bench_file(real, tmp_path / "s344.bench")
        assert circuit_provenance("s344", search_dir=tmp_path) == \
            "real-file"
        loaded = load_circuit("s344", search_dir=tmp_path)
        assert set(loaded.gates) == set(real.gates)
        assert loaded.name == "s344"

    def test_env_var_override(self, tmp_path, monkeypatch):
        real = builders.s27()
        write_bench_file(real, tmp_path / "s27.bench")
        monkeypatch.setenv("REPRO_ISCAS89_DIR", str(tmp_path))
        assert circuit_provenance("s27") == "real-file"

    def test_missing_file_falls_through(self, tmp_path):
        assert circuit_provenance("s382", search_dir=tmp_path) == \
            "synthetic"


class TestLoadCircuit:
    def test_embedded_s27(self):
        circuit = load_circuit("s27")
        assert circuit.name == "s27"
        assert len(circuit.dff_gates) == 3

    def test_synthetic_seeded(self):
        a = load_circuit("s344", seed=5)
        b = load_circuit("s344", seed=5)
        assert list(a.gates) == list(b.gates)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_circuit("not_a_circuit")


class TestListing:
    def test_available_includes_table1(self):
        names = available_circuits()
        for name in table1_circuits():
            assert name in names

    def test_sorted_by_size_then_name(self):
        names = available_circuits()
        assert names.index("s27") < names.index("s344")
