"""Tests for the synthetic benchmark generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchgen.generator import generate_circuit, generate_from_stats
from repro.benchgen.iscas89 import Iscas89Stats, stats_for


class TestStatisticsFidelity:
    @pytest.mark.parametrize("name", ["s344", "s382", "s510", "s1196"])
    def test_interface_counts_match_published(self, name):
        circuit = generate_circuit(name, seed=1)
        stats = stats_for(name)
        assert len(circuit.inputs) == stats.n_inputs
        assert len(circuit.outputs) == stats.n_outputs
        assert len(circuit.dff_gates) == stats.n_dffs
        assert len(circuit.combinational_gates()) == stats.n_gates

    def test_validates(self):
        generate_circuit("s344", seed=1).validate()


class TestDeterminism:
    def test_same_seed_same_netlist(self):
        a = generate_circuit("s382", seed=7)
        b = generate_circuit("s382", seed=7)
        assert list(a.gates) == list(b.gates)
        for line in a.gates:
            assert a.gates[line].inputs == b.gates[line].inputs
            assert a.gates[line].gtype == b.gates[line].gtype

    def test_different_seed_different_netlist(self):
        a = generate_circuit("s382", seed=1)
        b = generate_circuit("s382", seed=2)
        same = all(a.gates[line].inputs == b.gates[line].inputs
                   for line in a.gates)
        assert not same

    def test_name_isolated_streams(self):
        """The same seed must give unrelated circuits per name (derived
        child seeds)."""
        a = generate_from_stats(Iscas89Stats("x1", 4, 3, 4, 30), seed=1)
        b = generate_from_stats(Iscas89Stats("x2", 4, 3, 4, 30), seed=1)
        assert any(a.gates[f"G{i}"].inputs != b.gates[f"G{i}"].inputs
                   for i in range(10))


class TestStructuralQuality:
    def test_no_dangling_gates(self):
        circuit = generate_circuit("s344", seed=1)
        roots = set(circuit.outputs)
        for dff in circuit.dff_gates:
            roots.add(dff.inputs[0])
        for gate in circuit.combinational_gates():
            assert circuit.fanout_count(gate.output) > 0 or \
                gate.output in roots, gate.output

    def test_every_pi_used(self):
        circuit = generate_circuit("s344", seed=1)
        for pi in circuit.inputs:
            assert circuit.fanout_count(pi) > 0 or \
                circuit.is_output(pi), pi

    def test_every_flop_observed_or_observing(self):
        circuit = generate_circuit("s344", seed=1)
        for q in circuit.dff_outputs:
            assert circuit.fanout_count(q) > 0 or circuit.is_output(q), q

    def test_reasonable_depth(self):
        circuit = generate_circuit("s1196", seed=1)
        assert 10 <= circuit.depth() <= 120

    def test_outputs_are_distinct(self):
        circuit = generate_circuit("s641", seed=1)
        assert len(circuit.outputs) == len(set(circuit.outputs))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_arbitrary_seeds_produce_valid_circuits(self, seed):
        stats = Iscas89Stats("fuzz", 6, 5, 7, 50)
        circuit = generate_from_stats(stats, seed)
        circuit.validate()
        assert len(circuit.combinational_gates()) == 50

    def test_gate_budget_below_dffs_rejected(self):
        with pytest.raises(ValueError):
            generate_from_stats(Iscas89Stats("bad", 2, 2, 10, 5), seed=1)
