"""Tests for the published ISCAS89 statistics table."""

import pytest

from repro.benchgen.iscas89 import (
    ISCAS89_STATS,
    TABLE1_CIRCUITS,
    stats_for,
)


class TestStatsTable:
    def test_table1_circuits_present(self):
        for name in TABLE1_CIRCUITS:
            assert name in ISCAS89_STATS

    def test_table1_order_matches_paper(self):
        assert TABLE1_CIRCUITS[0] == "s344"
        assert TABLE1_CIRCUITS[-1] == "s9234"
        assert len(TABLE1_CIRCUITS) == 12

    def test_s27_values(self):
        s = stats_for("s27")
        assert (s.n_inputs, s.n_outputs, s.n_dffs, s.n_gates) == \
            (4, 1, 3, 10)

    def test_s344_values(self):
        s = stats_for("s344")
        assert (s.n_inputs, s.n_outputs, s.n_dffs, s.n_gates) == \
            (9, 11, 15, 160)

    def test_unknown_raises_with_guidance(self):
        with pytest.raises(KeyError, match="known:"):
            stats_for("s99999")

    def test_all_entries_positive(self):
        for stats in ISCAS89_STATS.values():
            assert stats.n_inputs > 0
            assert stats.n_outputs > 0
            assert stats.n_dffs > 0
            assert stats.n_gates > 0
