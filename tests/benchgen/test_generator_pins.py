"""Pins for the de-quadraticized generator (PR-6 scaling bugfixes).

The generator's draw sequence is part of the repo's reproducibility
contract: every published result keys on (circuit name, seed).  The
O(n^2) ``available.index`` sort and the per-draw ``sorted(unused)``
rebuild were replaced with a Fenwick-indexed pool, and the
potentially-nonterminating PO tail-pick rejection loop with an
up-front feasibility check — all of which had to keep the historical
draw sequence bit-identical.  These fingerprints were recorded from
the pre-rewrite generator and pin exactly that.
"""

import pytest

from repro.benchgen import (
    Iscas89Stats,
    TABLE1_CIRCUITS,
    generate_circuit,
    generate_from_stats,
    generate_scaled,
    scaled_stats,
)

#: ``circuit.fingerprint()`` of every named circuit x test seed,
#: recorded before the Fenwick-pool rewrite.  A change here means the
#: generator's draw sequence moved and every downstream artefact
#: (golden files, Table-I rows, cached campaign results) silently
#: refers to different netlists.
NAMED_FINGERPRINTS = {
    ("s27", 1): "0e21be6497eb47ec8bd39e43d0b9e68c39475694a313493af2ca5b4df4a1214e",
    ("s27", 2): "ec458a1f58dbd33b7ce3a9772281e101c80b67478e0c77c50771944c6acf7676",
    ("s27", 7): "a1fc2455af7f74a2ff39e294dce3ab0a9d3361c452f67d5d476d166f053f4f14",
    ("s344", 1): "62c9caa6994f3db4b72ff21bbd74572acf32bdd5117cebbb294071da2494357b",
    ("s344", 2): "068c9cd4bdebe6f65ab2334a63c46d883a0be608428908017062c883a14cdefe",
    ("s344", 7): "2abfd0959879d0eafe9b31f6e6d84927b952df132746f4d4f1ae24263c2b7302",
    ("s349", 1): "62f279960f0c77fb2c8aafc12df13f660996d9192a97e9f8ea76fe521aa5f169",
    ("s349", 2): "6e7aecf8d284a9feacdace60198b0dc340c68bef49e1b81dcd0f2218d4b3189e",
    ("s349", 7): "9ded1d8535f4189e63b6ec90f9e746bc05c97890cb366924d038276118793a6f",
    ("s382", 1): "f0db055d75be9db519d6e8f608445c41a2f586aa5c447c44cabd2e18286b70d5",
    ("s382", 2): "629c599a9d0572a1206716b5b0e58ba731f8596657f33e1785bc9fae1dfa9ae4",
    ("s382", 7): "312b298a19f0630ca20fbd7d37dd3a7f2ba95ff2c910a7976b6bc1ea3ae148b3",
    ("s386", 1): "290d28dd5245676f549f687879cd935387056bf284e08547cdc3056c6579d783",
    ("s386", 2): "9b3da8b3cddb903d8358f48a71bad197b6a91b34087e631178c04f7fef1ffb16",
    ("s386", 7): "729bf5766eec954a57be5ed10db7710262daf922cbd4e84dbefb316186b8cb20",
    ("s400", 1): "232e6f3b304b7728bb9dd14e70761ad3d18a5f2931bd2ef46fb50ce0dd40c1b8",
    ("s400", 2): "2d4e09bbf3f88217a77d3885c6b8a17f672b82cfe0ba6f103b7a4ad744c6af1e",
    ("s400", 7): "47ffdeb247ad922b806fb2a382febc6d18c3ad2bda7145166933c572ff1ca193",
    ("s420", 1): "1c3184c871a6c71bf37f30bc54cbc1b85f449eeb795b7416070efe5dbe3363fc",
    ("s420", 2): "7f793a560382d50f0ef21b5777887ce29cf260ba9252722cf0a295d2a927b3e3",
    ("s420", 7): "f6b4b222b93cac8814bebf165ee35325539ee60c2d324ba58105bc8d0baa4bd8",
    ("s444", 1): "477df040921c01031197586ad93116b0cd895f7ffac901ac373ce43853b0d339",
    ("s444", 2): "5414bf3a1c4016d4160612c9d14a6b8b19b9d252debbb4951c36d3e43b51e565",
    ("s444", 7): "2b69347a2381192e216ce24cf5eb4bb68d80130d04ecc2429e0693f83a4e4257",
    ("s510", 1): "fbf1bdef836aabe9e9c87f9c5d9ec9ee561b956b05ebac70172818eda781e501",
    ("s510", 2): "71a9a4b12c137b019edb5ca255e5bff31be91ef75e0daec4dd205308e5e366eb",
    ("s510", 7): "19332cacd39afbab3fd290d92d60718fb08eca1a2ad69c6c7fd59d8da96b0e6c",
    ("s526", 1): "6cafc8cfd779038eaa8b32dcd314281bd8f09795e69c07f90485e90f7fae0287",
    ("s526", 2): "618ca5145d01c16e149821dca417cc4c4dbb1b935aaf25837d6c9ece116b1ca9",
    ("s526", 7): "fe3b1e90207c1b49de0e73f8b34c8cbec1204e41fdf660aed1564c92fc41afeb",
    ("s641", 1): "d7e69999209cabf6aeb50af77d13251e7a93b496a8e984575331af48944f6280",
    ("s641", 2): "1e0f2f44990080c5b82f67cb1a26cccf3138090c5115caaeedaf5168f9a1c5c8",
    ("s641", 7): "ac32123827219149d9db82d8dda77697ef32c9255d172b2fc7e6ef1ba06d6166",
    ("s713", 1): "867ea8c21859539ab3a54774b5b6ae84e95e3b5960e3ef55bab1e8b9d4839055",
    ("s713", 2): "8aea38f3d1dfd6ae3a676c050358ac1f3a80b5c9ddf32f78b813e06755a9c560",
    ("s713", 7): "16795961773ebc05331adccd25e06eadc93148338f80613d1b179bb61f8d166d",
    ("s820", 1): "770a01e0bb7d63deeb3e28af79a35c02151e55b5881eb9bdd04f3558ec9f16f3",
    ("s820", 2): "e198bda6d9b5ae4ff8acc709eed067335359df3f84c4d7a74292ee8c30ca93cd",
    ("s820", 7): "01a445da8e040a1fd48320c581cba30789fd70d0cfaeefdb0d1ffdf34db13d65",
    ("s832", 1): "ea37214daa65d75cd7ed608ff4be7defcf9c7044b405484b7400ffc14a4c5d88",
    ("s832", 2): "fabf9bbf5ac1adf5427d817013b4583aaac85e38dbc92e9407800108b20bf283",
    ("s832", 7): "358c6832062f2225290c582bbfb3dbadd8d6fffaf5121ec14d6180812a6c9e51",
    ("s838", 1): "3b1eae6173f86b000fc32527b0de2a67921ebb240a96be715e4be5d65d3d143b",
    ("s838", 2): "09590663cdb2fb064ba9c5570c4bf54326457e9448615598002f8a651f3f6d13",
    ("s838", 7): "043de88f472c7c6232d1de047e1f0bc99fe71338ba38484ad30f1e991f31eaf3",
    ("s953", 1): "463cf4990419eabaa719021722d87e5194b07c31a898f242bf9c4f588843f214",
    ("s953", 2): "30c22d8d7ab9b73c1d6146002d90ba053a0e986b78d8ed27d58480eeb4bab14c",
    ("s953", 7): "0048e1894e991fe226ea458e32216d824499a343e6536af32c08b7174d6753fa",
    ("s1196", 1): "940a96985eba182dba15b49c0d407b94bf8ab31d0861c53b6ca567f8a19da88e",
    ("s1196", 2): "68060baf9a8793a870d56ce371027dda0c1dc9e1bb787300cb72a89d9e87f973",
    ("s1196", 7): "4c8a02d20f332c2ee158a5de438da1e4bf4279d6049650116e2afb2cbb3f4a70",
    ("s1238", 1): "15963f7666b79977a4358f487ec1e1b89739d330407c5466032fa8afa399d10b",
    ("s1238", 2): "47e4a6776272cbe397ca24ce951cc5057d6f85737bceac7e41fa848ef2fdc278",
    ("s1238", 7): "ddc2ca1bd5bde4b3a9d324f42b80a59909cf91c298250cc742508c03f70a2571",
    ("s1423", 1): "c25bab66c447cb8936516cc8a6f6ecee3b91843ee4e188df558bd76f03665a52",
    ("s1423", 2): "9ce7c58db5d71c5a44d2062d8c236b66bcd34013d9c38dcb9404e496849aaa77",
    ("s1423", 7): "09779a170733fadb73c4cbe6f71b8a06e056db2bfa72becc71b88cd90c6dfffd",
    ("s1488", 1): "eaa2b1296597bd33ce798971746f550966a21f4c4dacf2895eeafdcdffc53155",
    ("s1488", 2): "b0b8aa6e5759af610455dea7b4d8b69c9b9b01fd956acd05c3604bd33a78c010",
    ("s1488", 7): "4096e6f6c5949594d9657cbbae67dd52849c802629032581e20de087de0af2c9",
    ("s1494", 1): "e56f436200d1b27f6e1a5c5016337a30bc036d0cd11cc4b0184eda8360d08b41",
    ("s1494", 2): "29abd103ade804cedebf5650341269be9242beb59f4f04cc338c8a7436512daa",
    ("s1494", 7): "efd6b66d7d4f7b56bba427b93813ca3832af2466c454c1fbadf59a05afdeb4c0",
    ("s5378", 1): "413f386a3a94d82f43fa9e877025430751fc842336cfe5b556561d49aed7b6f5",
    ("s5378", 2): "1574b6437e8924360ef7c2c9f37ff7ce9e688efe6f5a60e437e69e65f89d6f9f",
    ("s5378", 7): "4dd21d59980ade947c262675d1b0fc2a625f0befc8592f0578001877bd6f2571",
    ("s9234", 1): "477b06b38ac6b62376c7a96566366e97df89647dd4abc873a5b1bc0d9e78f677",
    ("s9234", 2): "fb4e1fd43b4b3afd677e491ba3621e7c50b80a1d252a10328ea7524dd04750ee",
    ("s9234", 7): "ac9c6b0a4398b5e78c155d351a600dca0da957074011556bdb7317c903f0a687",
}

#: Fingerprints of the synthetic stats records the property suites use.
SYNTH_FINGERPRINTS = {
    (("epi", 4, 2, 5, 30), 0):
        "a6a894825f0778205a7191ba7e2ef5169523c2255d66dc642807d06821f1da62",
    (("epi", 4, 2, 5, 30), 1):
        "45fcb67309736540e3328e2a78a933592ba05c7574dbc48d7899672dde9c825a",
    (("fedge", 5, 3, 4, 40), 0):
        "1494a5bf3ad018d686e040d2c37c68320a26bea4120b48178e0a810bccdb877e",
    (("fedge", 5, 3, 4, 40), 1):
        "b90e22ff27cd4c8017bb4dd5e028b53c8e753d461b5e6cf387c1982482a8f966",
    (("fuzz", 6, 5, 7, 50), 0):
        "c6b416f78f4fd87e8ad72ce88a3887718f8ceb3e9561fb93c3c8c6c84092f0f9",
    (("fuzz", 6, 5, 7, 50), 1):
        "d407ae1a84fb298dcfffa6adf8344503077db95998474b0978bfd6daec7a5af8",
}


class TestDrawSequencePinned:
    @pytest.mark.parametrize("name",
                             sorted({k[0] for k in NAMED_FINGERPRINTS}))
    def test_named_circuits_bit_identical(self, name):
        for (pinned_name, seed), expected in NAMED_FINGERPRINTS.items():
            if pinned_name == name:
                assert generate_circuit(name, seed).fingerprint() == \
                    expected, (name, seed)

    def test_every_table1_circuit_is_pinned(self):
        pinned = {name for name, _ in NAMED_FINGERPRINTS}
        assert set(TABLE1_CIRCUITS) <= pinned

    def test_synthetic_stats_bit_identical(self):
        for (spec, seed), expected in SYNTH_FINGERPRINTS.items():
            circuit = generate_from_stats(Iscas89Stats(*spec), seed)
            assert circuit.fingerprint() == expected, (spec, seed)


class TestTailPickTermination:
    def test_infeasible_po_count_raises_instead_of_hanging(self):
        """Regression: 10 POs over 4 distinct candidates used to loop
        forever in the tail pick; now it is rejected up front."""
        with pytest.raises(ValueError, match="exceeds"):
            generate_from_stats(Iscas89Stats("hang", 1, 10, 1, 3), seed=1)

    def test_exactly_feasible_po_count_terminates(self):
        """POs == distinct candidates is the tightest legal corner."""
        stats = Iscas89Stats("tight", 1, 4, 1, 3)
        circuit = generate_from_stats(stats, seed=1)
        circuit.validate()
        assert len(circuit.outputs) == 4


class TestScaledGeneration:
    def test_scaled_stats_defaults(self):
        stats = scaled_stats(100_000)
        assert stats.name == "synth100000"
        assert stats.n_gates == 100_000
        assert stats.n_dffs == 100_000 // 16
        assert stats.n_inputs >= 8 and stats.n_outputs >= 4

    def test_scaled_stats_overrides(self):
        stats = scaled_stats(5_000, name="big", n_inputs=10,
                             n_outputs=6, n_dffs=32)
        assert (stats.name, stats.n_inputs, stats.n_outputs,
                stats.n_dffs) == ("big", 10, 6, 32)

    def test_scaled_stats_rejects_bad_budgets(self):
        with pytest.raises(ValueError):
            scaled_stats(2)
        with pytest.raises(ValueError):
            scaled_stats(100, n_dffs=100)

    def test_generate_scaled_valid_and_deterministic(self):
        a = generate_scaled(2_000, seed=3, n_dffs=16)
        b = generate_scaled(2_000, seed=3, n_dffs=16)
        a.validate()
        assert a.fingerprint() == b.fingerprint()
        assert len(a.combinational_gates()) == 2_000

    def test_generate_scaled_is_fast_at_scale(self):
        """The de-quadraticized pool: 100k gates in seconds, not hours.

        The old ``available.index`` sort alone did ~1e10 comparisons at
        this size; a loose wall-clock ceiling keeps the O(n^2) path
        from silently returning.
        """
        import time
        start = time.perf_counter()
        circuit = generate_scaled(100_000, seed=1, n_dffs=64)
        elapsed = time.perf_counter() - start
        assert len(circuit.combinational_gates()) == 100_000
        assert elapsed < 60, f"100k-gate generation took {elapsed:.0f}s"
