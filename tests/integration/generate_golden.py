"""Regenerate ``tests/golden_s27_seed1.json`` from the current code.

Run from the repo root::

    PYTHONPATH=src python tests/integration/generate_golden.py

Only commit the regenerated file for *intentional* behaviour changes —
the golden test exists precisely to catch unintentional drift.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import FlowConfig
from repro.core.flow import ProposedFlow
from repro.netlist import builders

GOLDEN = Path(__file__).parent.parent / "golden_s27_seed1.json"


def build_golden() -> dict:
    result = ProposedFlow(FlowConfig(seed=1)).run(builders.s27())
    return {
        "muxable": sorted(result.addmux.muxable),
        "blocked_gates": sorted(result.pattern.blocked_gates),
        "control_values": result.control_values,
        "n_vectors": len(result.test_set.vectors),
        "reports": {
            method: {
                "n_cycles": report.n_cycles,
                "total_transitions": report.total_transitions,
                "dynamic_uw_per_hz": report.dynamic_uw_per_hz,
                "static_uw": report.static_uw,
            }
            for method, report in result.reports.items()
        },
    }


if __name__ == "__main__":
    GOLDEN.write_text(json.dumps(build_golden(), indent=2, sort_keys=True)
                      + "\n")
    print(f"wrote {GOLDEN}")
