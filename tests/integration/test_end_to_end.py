"""End-to-end integration tests across the whole stack."""

import pytest

from repro.atpg.generate import AtpgConfig, generate_tests
from repro.benchgen.loader import load_circuit
from repro.core.config import FlowConfig
from repro.core.flow import ProposedFlow
from repro.experiments.results import PAPER_TABLE1, Table1Row
from repro.netlist.bench import parse_bench, write_bench
from repro.scan.mux import SHIFT_ENABLE, insert_muxes
from repro.scan.testview import ScanDesign
from repro.simulation.eval2 import comb_input_lines, simulate_comb
from repro.techmap.mapper import technology_map
from repro.techmap.verify import equivalence_check


@pytest.fixture(scope="module")
def s344_result():
    """One full flow run on the synthetic s344 (medium circuit)."""
    config = FlowConfig(seed=1, observability_samples=256, ivc_trials=32)
    return ProposedFlow(config).run(load_circuit("s344", seed=1))


class TestFullFlowS344:
    def test_shape_matches_paper_direction(self, s344_result):
        row = Table1Row.from_reports(
            "s344",
            s344_result.reports["traditional"],
            s344_result.reports["input_control"],
            s344_result.reports["proposed"])
        paper = PAPER_TABLE1["s344"]
        # Directional agreement with the paper on every comparison:
        assert row.imp_trad_dynamic > 0
        assert row.imp_trad_static > 0
        assert row.imp_ic_static > 0
        # Large dynamic win over traditional scan, as in the paper (44.8%)
        assert row.imp_trad_dynamic > 20.0
        # Static improvements land in a sane band around the paper's 14.65
        assert 3.0 < row.imp_trad_static < 40.0
        assert paper.imp_trad_dynamic > 0  # sanity on reference data

    def test_mux_coverage_substantial(self, s344_result):
        """The method needs slack on most pseudo-inputs to win; the
        synthetic s344 should offer plenty."""
        assert s344_result.addmux.coverage > 0.3

    def test_test_set_quality(self, s344_result):
        assert s344_result.test_set.fault_coverage > 0.7
        assert len(s344_result.test_set.vectors) >= 10

    def test_input_control_between_traditional_and_proposed(
            self, s344_result):
        trad = s344_result.reports["traditional"]
        ic = s344_result.reports["input_control"]
        prop = s344_result.reports["proposed"]
        assert prop.dynamic_uw_per_hz <= ic.dynamic_uw_per_hz
        assert ic.dynamic_uw_per_hz <= trad.dynamic_uw_per_hz


class TestPhysicalRewriteConsistency:
    def test_full_plan_insertion_keeps_function_and_timing(
            self, s344_result, library):
        """Physically inserting the entire MUX plan must not change the
        normal-mode function or the critical delay."""
        from repro.timing.delay import LibraryDelay
        from repro.timing.sta import run_sta

        mapped = s344_result.circuit
        rewritten = insert_muxes(mapped, s344_result.mux_plan)

        base_sta = run_sta(mapped, LibraryDelay(mapped, library))
        new_sta = run_sta(rewritten, LibraryDelay(rewritten, library))
        assert new_sta.critical_delay == pytest.approx(
            base_sta.critical_delay)

        # Normal mode (shift enable low): spot-check functional identity.
        lines = comb_input_lines(mapped)
        for seed in range(8):
            inputs = {line: (hash((seed, line)) & 1) for line in lines}
            base = simulate_comb(mapped, inputs)
            values = dict(inputs)
            values[SHIFT_ENABLE] = 0
            new = simulate_comb(rewritten, values)
            for po in mapped.outputs:
                assert new[po] == base[po]


class TestBenchRoundTripPipeline:
    def test_flow_runs_on_reparsed_circuit(self):
        """write_bench -> parse_bench -> full flow must behave the same
        as the original object (serialisation is lossless for the
        pipeline)."""
        original = load_circuit("s27")
        reparsed = parse_bench(write_bench(original), "s27")
        config = FlowConfig(seed=4)
        a = ProposedFlow(config).run(original)
        b = ProposedFlow(config).run(reparsed)
        assert a.reports["proposed"] == b.reports["proposed"]


class TestAtpgPowersPipeline:
    def test_vectors_apply_cleanly_to_scan_design(self):
        circuit = technology_map(load_circuit("s382", seed=1))
        design = ScanDesign.full_scan(circuit)
        tests = generate_tests(design, AtpgConfig(seed=1))
        # Capture every vector: the scan protocol must accept them all.
        for vector in tests.vectors:
            captured, _pos = design.capture(vector)
            assert len(captured) == design.chain.length

    def test_mapping_before_atpg_preserves_function(self):
        original = load_circuit("s382", seed=1)
        mapped = technology_map(original)
        assert equivalence_check(original, mapped, n_random=256)
