"""Golden regression test: the seed-1 s27 flow must stay bit-stable.

The reference values in ``tests/golden_s27_seed1.json`` were produced by
the shipped code; any algorithmic drift (heuristic tweaks, RNG stream
changes, accounting changes) shows up here first, deliberately.  Update
the golden file only for *intentional* behaviour changes::

    PYTHONPATH=src python tests/integration/generate_golden.py
"""

import json
from pathlib import Path

import pytest

from repro.core.config import FlowConfig
from repro.core.flow import ProposedFlow
from repro.netlist import builders

_GOLDEN = Path(__file__).parent.parent / "golden_s27_seed1.json"


@pytest.fixture(scope="module")
def golden():
    if not _GOLDEN.exists():
        pytest.skip(
            f"golden fixture {_GOLDEN} is missing; regenerate it with "
            f"'PYTHONPATH=src python tests/integration/generate_golden.py'")
    return json.loads(_GOLDEN.read_text())


@pytest.fixture(scope="module")
def result():
    return ProposedFlow(FlowConfig(seed=1)).run(builders.s27())


class TestGoldenS27:
    def test_structural_decisions(self, golden, result):
        assert sorted(result.addmux.muxable) == golden["muxable"]
        assert sorted(result.pattern.blocked_gates) == \
            golden["blocked_gates"]
        assert result.control_values == golden["control_values"]

    def test_test_set_size(self, golden, result):
        assert len(result.test_set.vectors) == golden["n_vectors"]

    @pytest.mark.parametrize("method", ["traditional", "input_control",
                                        "proposed"])
    def test_power_numbers(self, golden, result, method):
        want = golden["reports"][method]
        got = result.reports[method]
        assert got.n_cycles == want["n_cycles"]
        assert got.total_transitions == want["total_transitions"]
        assert got.dynamic_uw_per_hz == pytest.approx(
            want["dynamic_uw_per_hz"], rel=1e-6)
        assert got.static_uw == pytest.approx(
            want["static_uw"], rel=1e-6)
