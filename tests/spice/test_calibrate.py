"""Tests for the Figure 2 calibration."""

import pytest

from repro.errors import CharacterizationError
from repro.spice.calibrate import calibrate_to_figure2, nand2_error
from repro.spice.constants import PAPER_NAND2_LEAKAGE_NA, TechParams, \
    default_tech


class TestDefaults:
    def test_shipped_defaults_match_figure2(self):
        """The frozen default TechParams must reproduce Figure 2."""
        assert nand2_error(default_tech()) < 1e-6


class TestCalibration:
    def test_recalibration_from_far_start(self):
        start = TechParams(s_n=20000, s_p=9000, g_n=85, g_p=17,
                           eta_dibl=0.09)
        fitted = calibrate_to_figure2(start)
        assert nand2_error(fitted) < 0.02

    def test_only_fit_fields_change(self):
        start = TechParams(s_n=20000, s_p=9000, g_n=85, g_p=17,
                           eta_dibl=0.09)
        fitted = calibrate_to_figure2(start)
        assert fitted.vdd == start.vdd
        assert fitted.vt0_n == start.vt0_n
        assert fitted.n_sub == start.n_sub

    def test_custom_targets(self):
        targets = {k: v * 2 for k, v in PAPER_NAND2_LEAKAGE_NA.items()}
        fitted = calibrate_to_figure2(targets=targets)
        assert nand2_error(fitted, targets) < 0.02
        # doubling all targets should roughly double the scales
        assert fitted.s_n > default_tech().s_n

    def test_impossible_targets_raise(self):
        targets = {(0, 0): 1e9, (0, 1): 1e-9, (1, 0): 1e9, (1, 1): 1e-9}
        with pytest.raises(CharacterizationError):
            calibrate_to_figure2(targets=targets, tolerance=0.01)

    def test_error_metric_is_max_relative(self):
        params = default_tech().replace(s_n=default_tech().s_n * 1.5)
        assert nand2_error(params) > 0.01
