"""Tests for the device-level current equations (paper eqs. 2 and 4)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.spice.bsim import (
    gate_leakage_off,
    gate_leakage_on,
    subthreshold_current,
    tunneling_current_density,
)
from repro.spice.constants import TechParams, default_tech


@pytest.fixture(scope="module")
def tech():
    return default_tech()


class TestSubthreshold:
    def test_zero_vds_no_current(self, tech):
        assert subthreshold_current(tech, 0.0, 0.0, 0.0, 1.0) == 0.0

    def test_positive(self, tech):
        current = subthreshold_current(tech, 0.0, tech.vdd, 0.0, 1.0)
        assert current > 0

    def test_width_scaling_linear(self, tech):
        one = subthreshold_current(tech, 0.0, tech.vdd, 0.0, 1.0)
        three = subthreshold_current(tech, 0.0, tech.vdd, 0.0, 3.0)
        assert three == pytest.approx(3 * one)

    def test_vgs_exponential_slope(self, tech):
        """One n*kT/q of extra VGS multiplies the current by e."""
        base = subthreshold_current(tech, 0.0, tech.vdd, 0.0, 1.0)
        boosted = subthreshold_current(tech, tech.n_vt, tech.vdd, 0.0, 1.0)
        assert boosted / base == pytest.approx(math.e, rel=1e-9)

    def test_dibl_raises_current(self, tech):
        low = subthreshold_current(tech, 0.0, 0.5, 0.0, 1.0)
        high = subthreshold_current(tech, 0.0, tech.vdd, 0.0, 1.0)
        assert high > low

    def test_body_effect_lowers_current(self, tech):
        no_body = subthreshold_current(tech, 0.0, 0.5, 0.0, 1.0)
        body = subthreshold_current(tech, 0.0, 0.5, 0.2, 1.0)
        assert body < no_body

    def test_pmos_uses_its_own_scale(self, tech):
        n = subthreshold_current(tech, 0.0, tech.vdd, 0.0, 1.0, "n")
        p = subthreshold_current(tech, 0.0, tech.vdd, 0.0, 1.0, "p")
        assert n != p

    @given(st.floats(min_value=0.01, max_value=0.9),
           st.floats(min_value=0.02, max_value=0.9))
    def test_monotonic_in_vds(self, vds_low, delta):
        tech = default_tech()
        low = subthreshold_current(tech, 0.0, vds_low, 0.0, 1.0)
        high = subthreshold_current(tech, 0.0, min(vds_low + delta, 1.8),
                                    0.0, 1.0)
        assert high >= low


class TestTunneling:
    def test_zero_vox_no_current(self, tech):
        assert tunneling_current_density(tech, 0.0) == 0.0

    def test_calibration_anchor_at_vdd(self, tech):
        """At vox = VDD the density equals the calibrated scale."""
        assert tunneling_current_density(tech, tech.vdd, "n") == \
            pytest.approx(tech.g_n)
        assert tunneling_current_density(tech, tech.vdd, "p") == \
            pytest.approx(tech.g_p)

    def test_monotonic_in_vox(self, tech):
        values = [tunneling_current_density(tech, v)
                  for v in (0.2, 0.4, 0.6, 0.8, 0.9)]
        assert values == sorted(values)

    def test_electron_dominates_holes(self, tech):
        n = tunneling_current_density(tech, tech.vdd, "n")
        p = tunneling_current_density(tech, tech.vdd, "p")
        assert n > p

    def test_small_vox_is_negligible(self, tech):
        """Gate leakage at threshold-ish Vox is orders below full VDD."""
        partial = tunneling_current_density(tech, 0.3, "n")
        full = tunneling_current_density(tech, tech.vdd, "n")
        assert partial < 0.2 * full

    def test_continuity_beyond_barrier(self, tech):
        # The real continuation must not blow up past vox = phi.
        just_below = tunneling_current_density(tech, tech.phi_ox_n - 0.01)
        just_above = tunneling_current_density(tech, tech.phi_ox_n + 0.01)
        assert just_above == pytest.approx(just_below, rel=0.2)


class TestGateLeakageHelpers:
    def test_on_scales_with_width(self, tech):
        one = gate_leakage_on(tech, tech.vdd, 1.0)
        two = gate_leakage_on(tech, tech.vdd, 2.0)
        assert two == pytest.approx(2 * one)

    def test_off_uses_edt_fraction(self, tech):
        on = gate_leakage_on(tech, tech.vdd, 1.0)
        off = gate_leakage_off(tech, tech.vdd, 1.0)
        assert off == pytest.approx(tech.edt_fraction * on)

    def test_off_negative_vgd_uses_magnitude(self, tech):
        assert gate_leakage_off(tech, -tech.vdd, 1.0) == \
            gate_leakage_off(tech, tech.vdd, 1.0)
