"""Tests for cell leakage characterisation."""

import itertools

import pytest

from repro.errors import CharacterizationError
from repro.netlist.gates import GateType
from repro.spice.characterize import (
    cell_leakage_table,
    characterize_inv,
    characterize_nand,
    characterize_nor,
)
from repro.spice.constants import (
    PAPER_NAND2_LEAKAGE_NA,
    default_tech,
)


class TestNand2PaperAnchor:
    def test_matches_figure2(self):
        table = characterize_nand(2)
        for pattern, target in PAPER_NAND2_LEAKAGE_NA.items():
            assert table[pattern] == pytest.approx(target, rel=0.02)

    def test_ordering_01_below_10(self):
        """The stack-position asymmetry the reordering step exploits."""
        table = characterize_nand(2)
        assert table[(0, 1)] < table[(1, 0)]

    def test_all_ones_is_worst(self):
        table = characterize_nand(2)
        assert table[(1, 1)] == max(table.values())


class TestCharacterizeShapes:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_nand_complete_tables(self, k):
        table = characterize_nand(k)
        assert set(table) == set(itertools.product((0, 1), repeat=k))
        assert all(v > 0 for v in table.values())

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_nor_complete_tables(self, k):
        table = characterize_nor(k)
        assert set(table) == set(itertools.product((0, 1), repeat=k))
        assert all(v > 0 for v in table.values())

    def test_arity_bounds(self):
        with pytest.raises(CharacterizationError):
            characterize_nand(5)
        with pytest.raises(CharacterizationError):
            characterize_nor(0)

    def test_inv_two_entries(self):
        table = characterize_inv()
        assert set(table) == {(0,), (1,)}

    def test_nor_dual_asymmetry(self):
        """NOR2 should show the mirrored stack asymmetry: the single-one
        state with the OFF PMOS nearest VDD differs from the other."""
        table = characterize_nor(2)
        assert table[(0, 1)] != table[(1, 0)]


class TestCompositeCells:
    def test_buff_is_two_inverters(self):
        buff = cell_leakage_table(GateType.BUFF, 1)
        inv = characterize_inv()
        # BUFF(0) = INV(0) + INV(1): the internal node is inverted.
        assert buff[(0,)] == pytest.approx(inv[(0,)] + inv[(1,)])
        assert buff[(1,)] == pytest.approx(inv[(1,)] + inv[(0,)])

    def test_and_is_nand_plus_inv(self):
        and2 = cell_leakage_table(GateType.AND, 2)
        nand2 = characterize_nand(2)
        inv = characterize_inv()
        for pattern in nand2:
            internal = 0 if all(pattern) else 1
            assert and2[pattern] == pytest.approx(
                nand2[pattern] + inv[(internal,)])

    def test_xor_symmetry_two_input(self):
        xor2 = cell_leakage_table(GateType.XOR, 2)
        assert set(xor2) == {(0, 0), (0, 1), (1, 0), (1, 1)}
        assert all(v > 0 for v in xor2.values())

    def test_mux2_table_complete(self):
        mux = cell_leakage_table(GateType.MUX2, 3)
        assert len(mux) == 8

    def test_xor3_table_complete(self):
        xor3 = cell_leakage_table(GateType.XOR, 3)
        assert len(xor3) == 8

    def test_const_cells_free(self):
        assert cell_leakage_table(GateType.CONST0, 0) == {(): 0.0}

    def test_dff_flat_positive(self):
        table = cell_leakage_table(GateType.DFF, 1)
        assert table[(0,)] == table[(1,)] > 0


class TestCaching:
    def test_same_params_same_object(self):
        a = cell_leakage_table(GateType.NAND, 2)
        b = cell_leakage_table(GateType.NAND, 2)
        assert a is b

    def test_different_corner_differs(self):
        base = cell_leakage_table(GateType.NAND, 2)
        hot = cell_leakage_table(
            GateType.NAND, 2, default_tech().replace(s_n=1e5))
        assert hot is not base
        assert hot[(1, 0)] != base[(1, 0)]
