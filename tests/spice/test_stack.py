"""Tests for the series-stack leakage solver."""

import pytest

from repro.errors import CharacterizationError
from repro.spice.bsim import subthreshold_current
from repro.spice.constants import default_tech
from repro.spice.stack import blocked_stack_current, parallel_off_current


@pytest.fixture(scope="module")
def tech():
    return default_tech()


class TestBlockedStack:
    def test_conducting_stack_rejected(self, tech):
        with pytest.raises(CharacterizationError):
            blocked_stack_current(tech, [True, True], 1.0)

    def test_empty_stack_rejected(self, tech):
        with pytest.raises(CharacterizationError):
            blocked_stack_current(tech, [], 1.0)

    def test_single_off_full_vds(self, tech):
        sol = blocked_stack_current(tech, [False], 1.0)
        direct = subthreshold_current(tech, 0.0, tech.vdd, 0.0, 1.0)
        assert sol.current_na == pytest.approx(direct)
        assert sol.effective_top == tech.vdd

    def test_stack_effect(self, tech):
        """Two series OFF devices leak substantially less than one.

        At the Figure 2 calibration point the subthreshold suppression
        factor is ~3.7x (eta is small there); the invariant we rely on is
        a clear super-halving, not a specific factor.
        """
        one = blocked_stack_current(tech, [False], 2.0).current_na
        two = blocked_stack_current(tech, [False, False], 2.0).current_na
        assert two < one / 2

    def test_deeper_stacks_leak_less(self, tech):
        currents = [
            blocked_stack_current(tech, [False] * k, 2.0).current_na
            for k in (1, 2, 3, 4)
        ]
        assert currents == sorted(currents, reverse=True)
        assert all(c > 0 for c in currents)

    def test_pass_degradation_orientation(self, tech):
        """OFF at top (rail-far) sees full VDS; OFF at bottom sees
        VDD - VT through the ON pass device: the paper's 01 vs 10
        asymmetry (Figure 2: 73 vs 264 nA)."""
        top_off = blocked_stack_current(tech, [True, False], 2.0)
        bottom_off = blocked_stack_current(tech, [False, True], 2.0)
        assert top_off.effective_top == tech.vdd
        assert bottom_off.effective_top == pytest.approx(
            tech.vdd - tech.vt0_n)
        assert top_off.current_na > bottom_off.current_na

    def test_equal_current_constraint(self, tech):
        """Internal nodes must equalise the per-device currents."""
        sol = blocked_stack_current(tech, [False, False], 1.0)
        nodes = sol.node_voltages
        v_mid = nodes[1]
        i_bottom = subthreshold_current(tech, -0.0, v_mid, 0.0, 1.0)
        # bottom device: source 0, drain v_mid, gate 0
        i_bottom = subthreshold_current(tech, 0.0, v_mid, 0.0, 1.0)
        # top device: source v_mid, gate 0 => vgs = -v_mid
        i_top = subthreshold_current(
            tech, -v_mid, sol.effective_top - v_mid, v_mid, 1.0)
        assert i_top == pytest.approx(i_bottom, rel=1e-6)
        assert i_top == pytest.approx(sol.current_na, rel=1e-6)

    def test_node_voltages_monotone(self, tech):
        sol = blocked_stack_current(tech, [False, False, False], 3.0)
        nodes = sol.node_voltages
        assert all(a <= b + 1e-12 for a, b in zip(nodes, nodes[1:]))
        assert nodes[0] == 0.0
        assert nodes[-1] == tech.vdd

    def test_on_run_collapses_nodes(self, tech):
        # bottom ON, middle OFF, top ON: node below OFF is 0 (through the
        # ON device), node above is vdd - vt (pass degradation).
        sol = blocked_stack_current(tech, [True, False, True], 3.0)
        nodes = sol.node_voltages
        assert nodes[1] == pytest.approx(0.0)
        assert nodes[2] == pytest.approx(tech.vdd - tech.vt0_n)

    def test_pmos_mirrors_nmos_shape(self, tech):
        n_top = blocked_stack_current(tech, [True, False], 1.0, "n")
        p_top = blocked_stack_current(tech, [True, False], 1.0, "p")
        # Same structure, different scales: both positive, p uses s_p.
        assert p_top.current_na > 0
        assert p_top.current_na != n_top.current_na

    def test_width_scales_current(self, tech):
        w1 = blocked_stack_current(tech, [False, False], 1.0).current_na
        w2 = blocked_stack_current(tech, [False, False], 2.0).current_na
        assert w2 == pytest.approx(2 * w1, rel=1e-6)


class TestParallelOff:
    def test_additivity(self, tech):
        one = parallel_off_current(tech, 1, 2.0, "p")
        three = parallel_off_current(tech, 3, 2.0, "p")
        assert three == pytest.approx(3 * one)

    def test_zero_devices(self, tech):
        assert parallel_off_current(tech, 0, 1.0) == 0.0

    def test_negative_rejected(self, tech):
        with pytest.raises(CharacterizationError):
            parallel_off_current(tech, -1, 1.0)
