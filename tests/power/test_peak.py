"""Tests for peak-power analysis."""

import pytest

from repro.power.peak import analyze_peak_power
from repro.power.scanpower import ShiftPolicy


class TestAnalyzePeakPower:
    def test_basic_statistics(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 8)
        report = analyze_peak_power(s27_design, vectors)
        assert report.peak_fj >= report.p99_fj >= 0
        assert report.peak_fj >= report.mean_fj
        assert report.n_boundaries == 8 * 4 - 1

    def test_blocked_policy_raises_quiet_fraction(self, s27_design,
                                                  make_vectors):
        vectors = make_vectors(s27_design, 8)
        base = analyze_peak_power(s27_design, vectors)
        blocked = analyze_peak_power(
            s27_design, vectors,
            ShiftPolicy(name="blocked",
                        pi_values={pi: 0
                                   for pi in s27_design.circuit.inputs},
                        mux_ties={q: 0
                                  for q in s27_design.chain.q_lines}))
        assert blocked.quiet_boundaries > base.quiet_boundaries

    def test_budget_violations(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 6)
        free = analyze_peak_power(s27_design, vectors, budget_fj=1e9)
        assert free.violations == 0
        tight = analyze_peak_power(s27_design, vectors, budget_fj=0.0)
        assert tight.violations > 0

    def test_crest_factor(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 6)
        report = analyze_peak_power(s27_design, vectors)
        assert report.peak_to_mean >= 1.0

    def test_describe(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 4)
        text = analyze_peak_power(s27_design, vectors,
                                  budget_fj=50.0).describe()
        assert "peak" in text and "crest" in text and "above" in text
