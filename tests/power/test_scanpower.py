"""Tests for the scan-shift power evaluator (Table I semantics)."""

import pytest

from repro.errors import ScanError
from repro.power.scanpower import (
    ScanPowerReport,
    ShiftPolicy,
    evaluate_scan_power,
    per_cycle_energy_fj,
)
from repro.scan.testview import ScanDesign, TestVector


class TestEpisodeStructure:
    def test_cycle_count_with_capture(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 5)
        report = evaluate_scan_power(s27_design, vectors)
        chain_length = s27_design.chain.length
        assert report.n_cycles == 5 * (chain_length + 1)
        assert report.n_vectors == 5

    def test_cycle_count_without_capture(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 5)
        report = evaluate_scan_power(s27_design, vectors,
                                     include_capture=False)
        assert report.n_cycles == 5 * s27_design.chain.length

    def test_empty_test_set_rejected(self, s27_design):
        with pytest.raises(ScanError):
            evaluate_scan_power(s27_design, [])

    def test_unknown_mux_tie_rejected(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 2)
        policy = ShiftPolicy(mux_ties={"nonexistent": 0})
        with pytest.raises(ScanError):
            evaluate_scan_power(s27_design, vectors, policy)

    def test_wrong_state_length_rejected(self, s27_design):
        bad = TestVector(
            pi_values={pi: 0 for pi in s27_design.circuit.inputs},
            scan_state=(0,))
        with pytest.raises(ScanError):
            evaluate_scan_power(s27_design, [bad])


class TestBlockingEverything:
    def test_full_mux_constant_pis_kills_shift_activity(
            self, s27_design, make_vectors):
        """All pseudo-inputs muxed + constant PIs + no capture cycles:
        the combinational part must see zero transitions."""
        vectors = make_vectors(s27_design, 6)
        policy = ShiftPolicy(
            name="block_all",
            pi_values={pi: 0 for pi in s27_design.circuit.inputs},
            mux_ties={q: 0 for q in s27_design.chain.q_lines})
        report = evaluate_scan_power(s27_design, vectors, policy,
                                     include_capture=False)
        assert report.total_transitions == 0
        assert report.dynamic_uw_per_hz == 0.0

    def test_capture_cycles_reintroduce_some_activity(
            self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 6)
        policy = ShiftPolicy(
            name="block_all",
            pi_values={pi: 0 for pi in s27_design.circuit.inputs},
            mux_ties={q: 0 for q in s27_design.chain.q_lines})
        report = evaluate_scan_power(s27_design, vectors, policy,
                                     include_capture=True)
        assert report.total_transitions > 0


class TestRelativeBehaviour:
    def test_partial_blocking_reduces_dynamic(self, s27_design,
                                              make_vectors):
        vectors = make_vectors(s27_design, 12)
        traditional = evaluate_scan_power(s27_design, vectors)
        blocked = evaluate_scan_power(
            s27_design, vectors,
            ShiftPolicy(name="blocked",
                        pi_values={pi: 0
                                   for pi in s27_design.circuit.inputs},
                        mux_ties={q: 0
                                  for q in s27_design.chain.q_lines}),
            include_capture=False)
        trad_no_capture = evaluate_scan_power(s27_design, vectors,
                                              include_capture=False)
        assert blocked.dynamic_uw_per_hz < trad_no_capture.dynamic_uw_per_hz

    def test_static_power_positive(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 4)
        report = evaluate_scan_power(s27_design, vectors)
        assert report.static_uw > 0
        assert report.mean_leakage_na > 0

    def test_deterministic(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 4)
        a = evaluate_scan_power(s27_design, vectors)
        b = evaluate_scan_power(s27_design, vectors)
        assert a == b


class TestImprovementMetric:
    def _report(self, dynamic, static):
        return ScanPowerReport("c", "m", 1, 1, dynamic, static, 0, 0.0)

    def test_positive_improvement(self):
        base = self._report(2.0, 10.0)
        ours = self._report(1.0, 8.0)
        dyn, stat = ours.improvement_vs(base)
        assert dyn == pytest.approx(50.0)
        assert stat == pytest.approx(20.0)

    def test_negative_improvement(self):
        base = self._report(1.0, 10.0)
        ours = self._report(1.1, 10.0)
        dyn, _stat = ours.improvement_vs(base)
        assert dyn == pytest.approx(-10.0)

    def test_zero_baseline_guard(self):
        base = self._report(0.0, 0.0)
        ours = self._report(1.0, 1.0)
        assert ours.improvement_vs(base) == (0.0, 0.0)


class TestPerCycleProfile:
    def test_profile_length_and_total(self, s27_design, make_vectors,
                                      library):
        vectors = make_vectors(s27_design, 3)
        profile = per_cycle_energy_fj(s27_design, vectors, library=library)
        report = evaluate_scan_power(s27_design, vectors, library=library)
        assert len(profile) == report.n_cycles - 1
        total_uw_per_hz = profile.sum() / report.n_cycles * 1e-9
        assert total_uw_per_hz == pytest.approx(report.dynamic_uw_per_hz)

    def test_blocked_profile_flat_between_captures(self, s27_design,
                                                   make_vectors):
        vectors = make_vectors(s27_design, 3)
        policy = ShiftPolicy(
            name="block_all",
            pi_values={pi: 0 for pi in s27_design.circuit.inputs},
            mux_ties={q: 0 for q in s27_design.chain.q_lines})
        profile = per_cycle_energy_fj(s27_design, vectors, policy)
        chain_length = s27_design.chain.length
        # boundaries inside a shift segment (not touching capture) are 0
        for start in range(0, len(profile), chain_length + 1):
            for offset in range(chain_length - 1):
                index = start + offset
                if index < len(profile):
                    assert profile[index] == 0.0


class TestEpisodeBatchPath:
    """The batched engine is the default; it must match the serial
    loop exactly (the property suite covers random circuits, this
    pins the real s27 design and the report object)."""

    def test_report_identical_to_serial(self, s27_design, make_vectors):
        vectors = make_vectors(s27_design, 8)
        policy = ShiftPolicy(
            name="proposed",
            pi_values={pi: 0 for pi in s27_design.circuit.inputs},
            mux_ties={s27_design.chain.q_lines[0]: 1})
        serial = evaluate_scan_power(s27_design, vectors, policy,
                                     episode_batch=False)
        for backend in ("bigint", "numpy", "sharded"):
            batched = evaluate_scan_power(s27_design, vectors, policy,
                                          backend=backend,
                                          episode_batch=True)
            assert batched == serial, backend

    def test_profile_identical_to_serial(self, s27_design, make_vectors):
        import numpy as np
        vectors = make_vectors(s27_design, 4)
        serial = per_cycle_energy_fj(s27_design, vectors,
                                     episode_batch=False)
        batched = per_cycle_energy_fj(s27_design, vectors,
                                      episode_batch=True)
        assert np.array_equal(serial, batched)

    def test_env_toggle_controls_default(self, s27_design, make_vectors,
                                         monkeypatch):
        """The env var must actually switch the *path* taken — outputs
        are bit-identical by contract, so count compiler calls."""
        import repro.power.scanpower as scanpower
        from repro.simulation.episode import compile_episode_plan

        calls = []

        def counting_compile(*args, **kwargs):
            calls.append(1)
            return compile_episode_plan(*args, **kwargs)

        monkeypatch.setattr(scanpower, "compile_episode_plan",
                            counting_compile)
        vectors = make_vectors(s27_design, 3)
        monkeypatch.setenv("REPRO_EPISODE_BATCH", "0")
        off = evaluate_scan_power(s27_design, vectors)
        assert calls == []  # serial loop, compiler untouched
        monkeypatch.setenv("REPRO_EPISODE_BATCH", "1")
        on = evaluate_scan_power(s27_design, vectors)
        assert calls == [1]  # batched path compiled exactly one plan
        assert on == off
