"""Tests for dynamic power accounting."""

import pytest

from repro.cells.capacitance import switched_caps_ff
from repro.power.dynamic import (
    energy_per_cycle_uw_per_hz,
    switching_energy_fj,
    weighted_switching_activity,
)


class TestSwitchingEnergy:
    def test_zero_transitions_zero_energy(self, s27_mapped, library):
        transitions = {line: 0 for line in s27_mapped.lines()}
        assert switching_energy_fj(s27_mapped, transitions, library) == 0.0

    def test_manual_sum(self, s27_mapped, library):
        caps = switched_caps_ff(s27_mapped, library)
        transitions = {"G0": 3, "G17": 2}
        expected = (3 * library.switching_energy_fj(caps["G0"])
                    + 2 * library.switching_energy_fj(caps["G17"]))
        assert switching_energy_fj(s27_mapped, transitions, library) == \
            pytest.approx(expected)

    def test_line_restriction(self, s27_mapped, library):
        transitions = {"G0": 3, "G17": 2}
        only_g0 = switching_energy_fj(s27_mapped, transitions, library,
                                      lines=["G0"])
        caps = switched_caps_ff(s27_mapped, library)
        assert only_g0 == pytest.approx(
            3 * library.switching_energy_fj(caps["G0"]))

    def test_scales_linearly_with_counts(self, s27_mapped, library):
        single = switching_energy_fj(s27_mapped, {"G0": 1}, library)
        triple = switching_energy_fj(s27_mapped, {"G0": 3}, library)
        assert triple == pytest.approx(3 * single)


class TestEnergyPerCycle:
    def test_unit_conversion(self):
        # 58.8 fJ/cycle must read as 5.88e-8 uW/Hz (paper row s344).
        assert energy_per_cycle_uw_per_hz(58.8, 1) == pytest.approx(
            5.88e-8)

    def test_averages_over_cycles(self):
        assert energy_per_cycle_uw_per_hz(100.0, 4) == pytest.approx(
            energy_per_cycle_uw_per_hz(25.0, 1))

    def test_zero_cycles(self):
        assert energy_per_cycle_uw_per_hz(5.0, 0) == 0.0


class TestWsa:
    def test_wsa_is_energy_without_voltage_scale(self, s27_mapped,
                                                 library):
        transitions = {"G0": 2, "G14": 1}
        wsa = weighted_switching_activity(s27_mapped, transitions, library)
        energy = switching_energy_fj(s27_mapped, transitions, library)
        scale = 0.5 * library.vdd ** 2
        assert energy == pytest.approx(wsa * scale)
