"""Tests for the reference circuit builders."""

import pytest

from repro.netlist import builders
from repro.simulation.eval2 import simulate_comb


class TestS27:
    def test_interface(self, s27):
        assert s27.inputs == ("G0", "G1", "G2", "G3")
        assert s27.outputs == ("G17",)
        assert sorted(s27.dff_outputs) == ["G5", "G6", "G7"]

    def test_known_response(self, s27):
        # All-zero state and inputs: trace the netlist by hand.
        values = simulate_comb(s27, {
            "G0": 0, "G1": 0, "G2": 0, "G3": 0,
            "G5": 0, "G6": 0, "G7": 0,
        })
        # G14 = NOT(G0) = 1; G12 = NOR(G1,G7) = 1; G8 = AND(G14,G6) = 0
        assert values["G14"] == 1
        assert values["G12"] == 1
        assert values["G8"] == 0
        # G15 = OR(G12,G8)=1, G16 = OR(G3,G8)=0, G9 = NAND(G16,G15)=1
        assert values["G9"] == 1
        # G11 = NOR(G5,G9) = 0 -> G17 = NOT(G11) = 1
        assert values["G17"] == 1


class TestC17:
    def test_structure(self, c17):
        assert len(c17.inputs) == 5
        assert len(c17.outputs) == 2
        assert not c17.dff_gates

    def test_function_sample(self, c17):
        values = simulate_comb(c17, {
            "G1": 1, "G2": 0, "G3": 1, "G6": 1, "G7": 0})
        assert values["G22"] in (0, 1)
        # G10 = NAND(1,1)=0 -> G22 = NAND(0, G16) = 1
        assert values["G10"] == 0
        assert values["G22"] == 1


class TestToyScan:
    def test_structure(self, toy):
        assert len(toy.dff_gates) == 6
        assert len(toy.inputs) == 3
        toy.validate()

    def test_has_xor_fed_flop(self, toy):
        from repro.netlist.gates import GateType
        assert toy.gates["n3"].gtype is GateType.XOR
        assert "q2" in toy.gates["n3"].inputs


class TestParametricBuilders:
    def test_chain_of_inverters_depth(self):
        c = builders.chain_of_inverters(7)
        assert c.depth() == 7

    def test_chain_rejects_zero(self):
        with pytest.raises(ValueError):
            builders.chain_of_inverters(0)

    def test_chain_parity(self):
        c = builders.chain_of_inverters(5)
        values = simulate_comb(c, {"in": 0})
        assert values[c.outputs[0]] == 1  # odd number of inversions

    @pytest.mark.parametrize("width", [2, 5, 9])
    def test_wide_gate_widths(self, width):
        c = builders.wide_gate_circuit(width)
        assert len(c.gates["wnand"].inputs) == width
        assert len(c.gates["wnor"].inputs) == width

    def test_wide_gate_rejects_one(self):
        with pytest.raises(ValueError):
            builders.wide_gate_circuit(1)

    def test_reconvergent_is_xnor_of_b(self):
        c = builders.reconvergent_circuit()
        # y = XOR(a AND b, NOT(a) OR b); truth table check
        expected = {}
        for a in (0, 1):
            for b in (0, 1):
                u = a & b
                v = (1 - a) | b
                expected[(a, b)] = u ^ v
        for (a, b), want in expected.items():
            values = simulate_comb(c, {"a": a, "b": b})
            assert values["y"] == want
