"""Tests for the .bench parser/writer."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import BenchParseError
from repro.netlist.bench import (
    parse_bench,
    parse_bench_file,
    write_bench,
    write_bench_file,
)
from repro.netlist import builders
from repro.netlist.gates import GateType


class TestParse:
    def test_minimal(self):
        c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        assert c.inputs == ("a",)
        assert c.outputs == ("y",)
        assert c.gates["y"].gtype is GateType.NOT

    def test_comments_and_blanks(self):
        text = """
        # header comment
        INPUT(a)   # trailing comment

        OUTPUT(y)
        y = BUFF(a)
        """
        c = parse_bench(text)
        assert c.gates["y"].gtype is GateType.BUFF

    def test_case_insensitive_keywords(self):
        c = parse_bench("input(a)\noutput(y)\ny = nand(a, a)")
        assert c.gates["y"].gtype is GateType.NAND

    def test_aliases(self):
        c = parse_bench(
            "INPUT(a)\nOUTPUT(y)\nm = INV(a)\nn = BUF(m)\n"
            "y = MUX(a, m, n)")
        assert c.gates["m"].gtype is GateType.NOT
        assert c.gates["n"].gtype is GateType.BUFF
        assert c.gates["y"].gtype is GateType.MUX2

    def test_dff(self):
        c = parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NOT(a)")
        assert c.dff_outputs == ["q"]

    def test_const_cells(self):
        c = parse_bench("OUTPUT(y)\nt = CONST1()\ny = NOT(t)")
        assert c.gates["t"].gtype is GateType.CONST1

    def test_unknown_gate_type(self):
        with pytest.raises(BenchParseError, match="unknown gate type"):
            parse_bench("INPUT(a)\ny = FROB(a)")

    def test_garbage_line_reports_lineno(self):
        with pytest.raises(BenchParseError) as exc:
            parse_bench("INPUT(a)\nthis is not bench\n")
        assert exc.value.line_number == 2

    def test_bad_arity_reported_with_line(self):
        with pytest.raises(BenchParseError) as exc:
            parse_bench("INPUT(a)\ny = NOT(a, a)\n")
        assert exc.value.line_number == 2

    def test_undriven_reference_fails_validation(self):
        with pytest.raises(Exception):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)")

    def test_whitespace_tolerance(self):
        c = parse_bench("INPUT( a )\nOUTPUT(y)\ny   =  NAND( a ,a2 )\n"
                        "INPUT(a2)")
        assert c.gates["y"].inputs == ("a", "a2")


class TestRoundTrip:
    @pytest.mark.parametrize("build", [
        builders.s27, builders.c17, builders.toy_scan_circuit,
        builders.reconvergent_circuit,
    ])
    def test_write_parse_identity(self, build):
        original = build()
        text = write_bench(original)
        parsed = parse_bench(text, original.name)
        assert parsed.inputs == original.inputs
        assert parsed.outputs == original.outputs
        assert set(parsed.gates) == set(original.gates)
        for line, gate in original.gates.items():
            assert parsed.gates[line].gtype is gate.gtype
            assert parsed.gates[line].inputs == gate.inputs

    def test_file_round_trip(self, tmp_path, s27):
        path = write_bench_file(s27, tmp_path / "s27.bench")
        loaded = parse_bench_file(path)
        assert loaded.name == "s27"
        assert set(loaded.gates) == set(s27.gates)

    def test_writer_includes_stats_comment(self, s27):
        text = write_bench(s27)
        assert "# s27" in text
        assert "4 inputs" in text


@st.composite
def random_circuit_text(draw):
    """Random but well-formed .bench text."""
    n_inputs = draw(st.integers(2, 5))
    n_gates = draw(st.integers(1, 12))
    inputs = [f"i{k}" for k in range(n_inputs)]
    lines = [f"INPUT({name})" for name in inputs]
    signals = list(inputs)
    for g in range(n_gates):
        gtype = draw(st.sampled_from(["AND", "NAND", "OR", "NOR", "NOT",
                                      "XOR"]))
        arity = 1 if gtype == "NOT" else draw(st.integers(2, 3))
        srcs = [signals[draw(st.integers(0, len(signals) - 1))]
                for _ in range(arity)]
        out = f"g{g}"
        lines.append(f"{out} = {gtype}({', '.join(srcs)})")
        signals.append(out)
    lines.append(f"OUTPUT(g{n_gates - 1})")
    return "\n".join(lines)


class TestParserProperties:
    @given(random_circuit_text())
    def test_random_wellformed_text_round_trips(self, text):
        c = parse_bench(text)
        again = parse_bench(write_bench(c), c.name)
        assert set(again.gates) == set(c.gates)
        for line, gate in c.gates.items():
            assert again.gates[line].inputs == gate.inputs
