"""Tests for repro.netlist.stats."""

from repro.netlist.gates import GateType
from repro.netlist.stats import circuit_stats, count_type


class TestCircuitStats:
    def test_s27_counts(self, s27):
        stats = circuit_stats(s27)
        assert stats.n_inputs == 4
        assert stats.n_outputs == 1
        assert stats.n_dffs == 3
        assert stats.n_gates == 10
        assert stats.gate_counts["NOR"] == 4
        assert stats.depth == 6

    def test_fanout_stats(self, s27):
        stats = circuit_stats(s27)
        assert stats.max_fanout == 3
        assert 1.0 < stats.mean_fanout < 2.0

    def test_describe_mentions_everything(self, s27):
        text = circuit_stats(s27).describe()
        assert "s27" in text
        assert "4 PI" in text
        assert "depth 6" in text

    def test_count_type(self, s27):
        assert count_type(s27, GateType.DFF) == 3
        assert count_type(s27, GateType.NOR) == 4
        assert count_type(s27, GateType.MUX2) == 0

    def test_empty_circuit(self):
        from repro.netlist.circuit import Circuit
        stats = circuit_stats(Circuit("empty"))
        assert stats.n_gates == 0
        assert stats.depth == 0
        assert stats.mean_fanout == 0.0
