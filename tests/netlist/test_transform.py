"""Tests for repro.netlist.transform."""

import pytest

from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.netlist.transform import (
    propagate_constants,
    remove_buffers,
    sweep_dangling,
)
from repro.simulation.eval2 import comb_input_lines, simulate_comb


def _exhaustive_outputs(circuit):
    """Output values of a small circuit over all input combinations."""
    lines = comb_input_lines(circuit)
    results = []
    for code in range(1 << len(lines)):
        assignment = {line: (code >> i) & 1
                      for i, line in enumerate(lines)}
        values = simulate_comb(circuit, assignment)
        results.append(tuple(values[po] for po in circuit.outputs))
    return results


class TestRemoveBuffers:
    def test_splices_out_buffer(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("b1", GateType.BUFF, ("a",))
        c.add_gate("y", GateType.NOT, ("b1",))
        c.add_output("y")
        before = _exhaustive_outputs(c)
        removed = remove_buffers(c)
        assert removed == 1
        assert "b1" not in c.gates
        assert c.gates["y"].inputs == ("a",)
        assert _exhaustive_outputs(c) == before

    def test_keeps_buffer_driving_po(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("y", GateType.BUFF, ("a",))
        c.add_output("y")
        assert remove_buffers(c) == 0
        assert "y" in c.gates

    def test_chain_of_buffers(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("b1", GateType.BUFF, ("a",))
        c.add_gate("b2", GateType.BUFF, ("b1",))
        c.add_gate("y", GateType.NOT, ("b2",))
        c.add_output("y")
        assert remove_buffers(c) == 2
        assert c.gates["y"].inputs == ("a",)


class TestSweepDangling:
    def test_removes_unobserved_logic(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("y", GateType.NOT, ("a",))
        c.add_gate("dead", GateType.NOT, ("a",))
        c.add_gate("dead2", GateType.NOT, ("dead",))
        c.add_output("y")
        removed = sweep_dangling(c)
        assert removed == 2
        assert set(c.gates) == {"y"}

    def test_keeps_flop_cone(self, s27):
        # everything in s27 feeds a PO or a flop: nothing to sweep
        assert sweep_dangling(s27.copy()) == 0


class TestPropagateConstants:
    def _const_circuit(self, tie_type, gate_type):
        c = Circuit()
        c.add_input("a")
        c.add_gate("t", tie_type, ())
        c.add_gate("y", gate_type, ("a", "t"))
        c.add_output("y")
        return c

    def test_and_with_zero_becomes_const0(self):
        c = self._const_circuit(GateType.CONST0, GateType.AND)
        assert propagate_constants(c) >= 1
        assert c.gates["y"].gtype is GateType.CONST0

    def test_nand_with_zero_becomes_const1(self):
        c = self._const_circuit(GateType.CONST0, GateType.NAND)
        propagate_constants(c)
        assert c.gates["y"].gtype is GateType.CONST1

    def test_or_with_one_becomes_const1(self):
        c = self._const_circuit(GateType.CONST1, GateType.OR)
        propagate_constants(c)
        assert c.gates["y"].gtype is GateType.CONST1

    def test_non_controlling_constant_dropped(self):
        c = self._const_circuit(GateType.CONST1, GateType.AND)
        propagate_constants(c)
        # AND(a, 1) == BUFF(a)
        assert c.gates["y"].gtype is GateType.BUFF
        assert c.gates["y"].inputs == ("a",)

    def test_nand_with_one_becomes_not(self):
        c = self._const_circuit(GateType.CONST1, GateType.NAND)
        propagate_constants(c)
        assert c.gates["y"].gtype is GateType.NOT

    def test_not_of_constant(self):
        c = Circuit()
        c.add_gate("t", GateType.CONST0, ())
        c.add_gate("y", GateType.NOT, ("t",))
        c.add_output("y")
        propagate_constants(c)
        assert c.gates["y"].gtype is GateType.CONST1

    def test_function_preserved(self):
        c = Circuit()
        c.add_input("a")
        c.add_input("b")
        c.add_gate("t1", GateType.CONST1, ())
        c.add_gate("m", GateType.AND, ("a", "t1", "b"))
        c.add_gate("y", GateType.NAND, ("m", "t1"))
        c.add_output("y")
        before = _exhaustive_outputs(c)
        propagate_constants(c)
        sweep_dangling(c)
        assert _exhaustive_outputs(c) == before

    def test_xor_left_alone(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("t", GateType.CONST1, ())
        c.add_gate("y", GateType.XOR, ("a", "t"))
        c.add_output("y")
        assert propagate_constants(c) == 0
        assert c.gates["y"].gtype is GateType.XOR
