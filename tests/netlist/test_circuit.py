"""Tests for repro.netlist.circuit."""

import pytest

from repro.errors import CombinationalLoopError, NetlistError
from repro.netlist.circuit import Circuit, Gate
from repro.netlist.gates import GateType


def small_circuit() -> Circuit:
    c = Circuit("small")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("n1", GateType.NAND, ("a", "b"))
    c.add_gate("n2", GateType.NOT, ("n1",))
    c.add_output("n2")
    return c


class TestConstruction:
    def test_repr_counts(self, s27):
        text = repr(s27)
        assert "4 PI" in text and "3 DFF" in text

    def test_duplicate_input_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(NetlistError):
            c.add_input("a")

    def test_duplicate_driver_rejected(self):
        c = small_circuit()
        with pytest.raises(NetlistError):
            c.add_gate("n1", GateType.NOT, ("a",))

    def test_driving_an_input_rejected(self):
        c = small_circuit()
        with pytest.raises(NetlistError):
            c.add_gate("a", GateType.NOT, ("b",))

    def test_duplicate_output_rejected(self):
        c = small_circuit()
        with pytest.raises(NetlistError):
            c.add_output("n2")

    def test_gate_validates_arity(self):
        with pytest.raises(NetlistError):
            Gate("x", GateType.NOT, ("a", "b"))

    def test_gate_str(self):
        gate = Gate("x", GateType.NAND, ("a", "b"))
        assert str(gate) == "x = NAND(a, b)"


class TestQueries:
    def test_lines_order(self):
        c = small_circuit()
        assert list(c.lines()) == ["a", "b", "n1", "n2"]

    def test_is_input_output(self):
        c = small_circuit()
        assert c.is_input("a") and not c.is_input("n1")
        assert c.is_output("n2") and not c.is_output("n1")

    def test_fanout(self):
        c = small_circuit()
        assert c.fanout("a") == [("n1", 0)]
        assert c.fanout("n1") == [("n2", 0)]
        assert c.fanout("n2") == []

    def test_fanout_count_multi(self, s27):
        # G8 feeds G15 and G16 in s27
        assert s27.fanout_count("G8") == 2

    def test_dff_lists(self, s27):
        assert sorted(s27.dff_outputs) == ["G5", "G6", "G7"]
        assert len(s27.dff_gates) == 3

    def test_len_counts_all_gates(self, s27):
        assert len(s27) == 13  # 10 combinational + 3 DFF


class TestTopology:
    def test_topo_order_respects_dependencies(self, s27):
        order = s27.topo_order()
        position = {line: i for i, line in enumerate(order)}
        for line in order:
            gate = s27.gates[line]
            for src in gate.inputs:
                if src in position:
                    assert position[src] < position[line]

    def test_levels(self):
        c = small_circuit()
        assert c.level_of("a") == 0
        assert c.level_of("n1") == 1
        assert c.level_of("n2") == 2
        assert c.depth() == 2

    def test_level_of_unknown_raises(self):
        with pytest.raises(NetlistError):
            small_circuit().level_of("zzz")

    def test_dff_outputs_are_level_zero(self, s27):
        for q in s27.dff_outputs:
            assert s27.level_of(q) == 0

    def test_combinational_loop_detected(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("x", GateType.NAND, ("a", "y"))
        c.add_gate("y", GateType.NAND, ("a", "x"))
        with pytest.raises(CombinationalLoopError):
            c.topo_order()

    def test_sequential_loop_is_fine(self, s27):
        # s27 has feedback through flops only; must levelise.
        assert len(s27.topo_order()) == 10


class TestCones:
    def test_fanin_cone_stops_at_flops(self, s27):
        cone = s27.fanin_cone("G10")
        assert "G14" in cone and "G11" in cone
        # G11 is a gate output; its cone members continue, but flop Q G5
        # inside is a boundary: its D-side logic is not included.
        assert "G5" in s27.fanin_cone("G11")

    def test_fanout_cone_includes_self(self):
        c = small_circuit()
        assert c.fanout_cone("a") == {"a", "n1", "n2"}

    def test_fanout_cone_stops_at_dff(self, s27):
        cone = s27.fanout_cone("G10")
        # G10 only feeds DFF G5, so the cone is just itself.
        assert cone == {"G10"}


class TestMutation:
    def test_remove_gate(self):
        c = small_circuit()
        c.remove_gate("n2")
        assert "n2" not in c.gates
        with pytest.raises(NetlistError):
            c.remove_gate("n2")

    def test_replace_gate(self):
        c = small_circuit()
        c.replace_gate("n1", GateType.NOR, ("a", "b"))
        assert c.gates["n1"].gtype is GateType.NOR

    def test_replace_missing_raises(self):
        with pytest.raises(NetlistError):
            small_circuit().replace_gate("zzz", GateType.NOT, ("a",))

    def test_rename_line_updates_everything(self):
        c = small_circuit()
        c.rename_line("n1", "mid")
        assert "mid" in c.gates
        assert c.gates["n2"].inputs == ("mid",)
        c.rename_line("a", "alpha")
        assert "alpha" in c.inputs
        assert c.gates["mid"].inputs == ("alpha", "b")

    def test_rename_to_existing_raises(self):
        c = small_circuit()
        with pytest.raises(NetlistError):
            c.rename_line("n1", "n2")

    def test_cache_invalidation_after_mutation(self):
        c = small_circuit()
        assert c.depth() == 2
        c.add_gate("n3", GateType.NOT, ("n2",))
        assert c.depth() == 3
        assert c.fanout("n2") == [("n3", 0)]


class TestValidation:
    def test_undriven_gate_input(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("x", GateType.NAND, ("a", "ghost"))
        with pytest.raises(NetlistError, match="ghost"):
            c.validate()

    def test_undriven_output(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("ghost")
        with pytest.raises(NetlistError, match="ghost"):
            c.validate()

    def test_valid_circuit_passes(self, s27):
        s27.validate()


class TestCopyAndExport:
    def test_copy_is_independent(self, s27):
        clone = s27.copy()
        clone.remove_gate("G17")
        assert "G17" in s27.gates
        assert "G17" not in clone.gates

    def test_copy_keeps_interface(self, s27):
        clone = s27.copy("renamed")
        assert clone.name == "renamed"
        assert clone.inputs == s27.inputs
        assert clone.outputs == s27.outputs

    def test_to_networkx(self, s27):
        graph = s27.to_networkx()
        assert graph.number_of_nodes() == 4 + 13
        assert graph.nodes["G0"]["kind"] == "input"
        assert graph.nodes["G5"]["kind"] == "dff"
        assert graph.nodes["G10"]["kind"] == "gate"
        assert graph.has_edge("G14", "G10")
        assert graph.edges["G14", "G10"]["pin"] == 0

    def test_networkx_is_dag_without_flops(self, s27):
        import networkx as nx
        graph = s27.to_networkx()
        comb = graph.subgraph(
            n for n, d in graph.nodes(data=True) if d["kind"] != "dff")
        assert nx.is_directed_acyclic_graph(comb)


class TestFingerprint:
    def test_stable_across_rebuilds(self, s27):
        from repro.netlist import builders
        assert s27.fingerprint() == builders.s27().fingerprint()

    def test_hex_sha256(self, s27):
        digest = s27.fingerprint()
        assert len(digest) == 64
        int(digest, 16)

    def test_copy_preserves_content_fingerprint(self, s27):
        assert s27.copy().fingerprint() == s27.fingerprint()

    def test_name_is_part_of_the_content(self, s27):
        assert s27.copy("renamed").fingerprint() != s27.fingerprint()

    def test_mutation_changes_fingerprint(self, s27):
        clone = s27.copy()
        before = clone.fingerprint()
        gate = clone.gate("G11")          # G11 = NOR(G5, G9)
        clone.replace_gate("G11", gate.gtype, gate.inputs[::-1])
        assert clone.fingerprint() != before  # pin order matters

    def test_gate_type_is_part_of_the_content(self, s27):
        from repro.netlist.gates import GateType
        clone = s27.copy()
        before = clone.fingerprint()
        gate = clone.gate("G11")          # G11 = NOR(G5, G9)
        clone.replace_gate("G11", GateType.NAND, gate.inputs)
        assert clone.fingerprint() != before

    def test_memoized_until_mutation(self, s27):
        first = s27.fingerprint()
        assert s27.fingerprint() is first  # cached string object
        clone = s27.copy()
        clone.add_input("EXTRA")
        assert clone.fingerprint() != first
