"""Tests for repro.netlist.gates (semantics tables)."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetlistError
from repro.netlist.gates import (
    COMBINATIONAL_TYPES,
    COMMUTATIVE_TYPES,
    TRANSPARENT_TYPES,
    GateType,
    X,
    check_arity,
    controlled_response,
    controlling_value,
    eval_gate,
    eval_gate3,
    is_inverting,
)

_VARIADIC = [GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
             GateType.XOR, GateType.XNOR]


class TestControllingValues:
    def test_and_family(self):
        assert controlling_value(GateType.AND) == 0
        assert controlling_value(GateType.NAND) == 0

    def test_or_family(self):
        assert controlling_value(GateType.OR) == 1
        assert controlling_value(GateType.NOR) == 1

    @pytest.mark.parametrize("gtype", [GateType.NOT, GateType.BUFF,
                                       GateType.XOR, GateType.XNOR,
                                       GateType.MUX2])
    def test_none_for_uncontrollable(self, gtype):
        assert controlling_value(gtype) is None

    @pytest.mark.parametrize("gtype", _VARIADIC[:4])
    def test_controlled_response_matches_eval(self, gtype):
        cv = controlling_value(gtype)
        response = controlled_response(gtype)
        # one controlling input forces the output, other input arbitrary
        for other in (0, 1):
            assert eval_gate(gtype, [cv, other]) == response


class TestInversionParity:
    def test_inverting_set(self):
        for gtype in (GateType.NAND, GateType.NOR, GateType.NOT,
                      GateType.XNOR):
            assert is_inverting(gtype)

    def test_non_inverting_set(self):
        for gtype in (GateType.AND, GateType.OR, GateType.BUFF,
                      GateType.XOR):
            assert not is_inverting(gtype)


class TestArity:
    def test_not_requires_one(self):
        check_arity(GateType.NOT, 1)
        with pytest.raises(NetlistError):
            check_arity(GateType.NOT, 2)

    def test_mux_requires_three(self):
        check_arity(GateType.MUX2, 3)
        with pytest.raises(NetlistError):
            check_arity(GateType.MUX2, 2)

    def test_const_requires_zero(self):
        check_arity(GateType.CONST0, 0)
        with pytest.raises(NetlistError):
            check_arity(GateType.CONST1, 1)

    @pytest.mark.parametrize("gtype", _VARIADIC)
    def test_variadic_min_two(self, gtype):
        check_arity(gtype, 2)
        check_arity(gtype, 7)
        with pytest.raises(NetlistError):
            check_arity(gtype, 1)


class TestEvalGate:
    def test_truth_tables_two_input(self):
        cases = {
            GateType.AND: [0, 0, 0, 1],
            GateType.NAND: [1, 1, 1, 0],
            GateType.OR: [0, 1, 1, 1],
            GateType.NOR: [1, 0, 0, 0],
            GateType.XOR: [0, 1, 1, 0],
            GateType.XNOR: [1, 0, 0, 1],
        }
        for gtype, outputs in cases.items():
            got = [eval_gate(gtype, [a, b])
                   for a, b in itertools.product((0, 1), repeat=2)]
            assert got == outputs, gtype

    def test_not_and_buff(self):
        assert eval_gate(GateType.NOT, [0]) == 1
        assert eval_gate(GateType.NOT, [1]) == 0
        assert eval_gate(GateType.BUFF, [1]) == 1

    def test_mux(self):
        # (sel, d0, d1): sel=0 -> d0, sel=1 -> d1
        assert eval_gate(GateType.MUX2, [0, 0, 1]) == 0
        assert eval_gate(GateType.MUX2, [1, 0, 1]) == 1

    def test_consts(self):
        assert eval_gate(GateType.CONST0, []) == 0
        assert eval_gate(GateType.CONST1, []) == 1

    def test_multi_input_xor_is_parity(self):
        assert eval_gate(GateType.XOR, [1, 1, 1]) == 1
        assert eval_gate(GateType.XNOR, [1, 1, 1]) == 0

    def test_dff_transparent(self):
        assert eval_gate(GateType.DFF, [1]) == 1


class TestEvalGate3:
    @pytest.mark.parametrize("gtype", list(COMBINATIONAL_TYPES
                                           - {GateType.CONST0,
                                              GateType.CONST1}))
    def test_agrees_with_binary_eval(self, gtype):
        arity = 3 if gtype is GateType.MUX2 else \
            (1 if gtype in (GateType.NOT, GateType.BUFF) else 2)
        for pattern in itertools.product((0, 1), repeat=arity):
            assert eval_gate3(gtype, list(pattern)) == \
                eval_gate(gtype, list(pattern))

    def test_controlling_dominates_x(self):
        assert eval_gate3(GateType.NAND, [0, X]) == 1
        assert eval_gate3(GateType.NOR, [1, X]) == 0
        assert eval_gate3(GateType.AND, [0, X]) == 0
        assert eval_gate3(GateType.OR, [1, X]) == 1

    def test_x_propagates_otherwise(self):
        assert eval_gate3(GateType.NAND, [1, X]) == X
        assert eval_gate3(GateType.XOR, [1, X]) == X
        assert eval_gate3(GateType.NOT, [X]) == X

    def test_mux_with_x_select(self):
        assert eval_gate3(GateType.MUX2, [X, 1, 1]) == 1
        assert eval_gate3(GateType.MUX2, [X, 0, 1]) == X
        assert eval_gate3(GateType.MUX2, [X, X, X]) == X

    @given(st.sampled_from([GateType.AND, GateType.NAND, GateType.OR,
                            GateType.NOR, GateType.XOR, GateType.XNOR]),
           st.lists(st.sampled_from([0, 1, X]), min_size=2, max_size=5))
    def test_x_is_sound_abstraction(self, gtype, values):
        """A binary 3-valued result must match every X completion."""
        result = eval_gate3(gtype, values)
        if result == X:
            return
        x_positions = [i for i, v in enumerate(values) if v == X]
        for combo in itertools.product((0, 1), repeat=len(x_positions)):
            concrete = list(values)
            for pos, bit in zip(x_positions, combo):
                concrete[pos] = bit
            assert eval_gate(gtype, concrete) == result


class TestTypeSets:
    def test_transparent_types(self):
        assert GateType.NOT in TRANSPARENT_TYPES
        assert GateType.XOR in TRANSPARENT_TYPES
        assert GateType.NAND not in TRANSPARENT_TYPES

    def test_commutative_types(self):
        assert GateType.NAND in COMMUTATIVE_TYPES
        assert GateType.MUX2 not in COMMUTATIVE_TYPES
