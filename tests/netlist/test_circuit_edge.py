"""Additional Circuit edge cases discovered during integration work."""

import pytest

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType


class TestRenameEdgeCases:
    def test_rename_po_that_is_also_pi(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("a")  # feed-through
        c.rename_line("a", "b")
        assert c.inputs == ("b",)
        assert c.outputs == ("b",)

    def test_rename_unknown_raises(self):
        with pytest.raises(NetlistError):
            Circuit().rename_line("x", "y")

    def test_rename_preserves_self_reference_free(self, s27):
        clone = s27.copy()
        clone.rename_line("G8", "middle")
        clone.validate()
        assert "middle" in clone.gates
        # G15 = OR(G12, G8) must now read middle
        assert "middle" in clone.gates["G15"].inputs


class TestConstGates:
    def test_const_gate_in_circuit(self):
        c = Circuit()
        c.add_gate("one", GateType.CONST1, ())
        c.add_gate("y", GateType.NOT, ("one",))
        c.add_output("y")
        c.validate()
        assert c.level_of("one") == 1  # it is a gate, not a source

    def test_const_has_no_fanin(self):
        c = Circuit()
        gate = c.add_gate("zero", GateType.CONST0, ())
        assert gate.inputs == ()


class TestFeedthroughOutputs:
    def test_pi_as_po(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("a")
        c.validate()
        assert c.is_input("a") and c.is_output("a")

    def test_dff_q_as_po(self, s27):
        clone = s27.copy()
        clone.add_output("G5")
        clone.validate()
        assert clone.is_output("G5")


class TestLargeFanin:
    def test_wide_gate_topology(self):
        c = Circuit()
        pis = [c.add_input(f"i{k}") for k in range(30)]
        c.add_gate("wide", GateType.NAND, pis)
        c.add_output("wide")
        c.validate()
        assert c.level_of("wide") == 1
        for pi in pis:
            assert c.fanout(pi) == [("wide", pis.index(pi))]
