"""Tests for experiment output serialisation."""

import csv
import io

from repro.experiments.results import Table1Row
from repro.experiments.textio import table1_to_csv, table1_to_markdown


def _rows():
    return [
        Table1Row("sX", 1e-8, 10.0, 9e-9, 9.5, 5e-9, 8.0,
                  50.0, 20.0, 44.4, 15.8),
        Table1Row("sY", 2e-8, 20.0, 2e-8, 21.0, 1e-8, 18.0,
                  50.0, 10.0, 50.0, 14.3),
    ]


class TestCsv:
    def test_round_trips_through_csv_reader(self):
        text = table1_to_csv(_rows())
        reader = csv.DictReader(io.StringIO(text))
        parsed = list(reader)
        assert len(parsed) == 2
        assert parsed[0]["circuit"] == "sX"
        assert float(parsed[0]["prop_static"]) == 8.0

    def test_header_fields_complete(self):
        header = table1_to_csv(_rows()).splitlines()[0]
        for field in ("circuit", "trad_dynamic", "imp_ic_static"):
            assert field in header


class TestMarkdown:
    def test_structure(self):
        text = table1_to_markdown(_rows())
        lines = text.splitlines()
        assert lines[0].startswith("| Circuit |")
        assert len(lines) == 2 + 2  # header + separator + 2 rows

    def test_values_formatted(self):
        text = table1_to_markdown(_rows())
        assert "1.00e-08" in text
        assert "50.00" in text
