"""Tests for the paper reference data and row construction."""

import pytest

from repro.experiments.results import PAPER_TABLE1, Table1Row, paper_row
from repro.power.scanpower import ScanPowerReport


class TestPaperTable:
    def test_all_twelve_rows(self):
        assert len(PAPER_TABLE1) == 12

    def test_s344_transcription(self):
        row = paper_row("s344")
        assert row.trad_dynamic == pytest.approx(5.88e-8)
        assert row.prop_static == pytest.approx(23.89)
        assert row.imp_trad_dynamic == pytest.approx(44.82)

    def test_unknown_circuit_none(self):
        assert paper_row("c17") is None

    def test_paper_improvements_consistent_with_raw_values(self):
        """The paper's own improvement percentages must match its raw
        columns to transcription accuracy (~1%), row by row.

        The s1494 dynamic column is inconsistent in the source itself
        (see the transcription note in results.py) and is exempted.
        """
        for row in PAPER_TABLE1.values():
            dyn = (row.trad_dynamic - row.prop_dynamic) \
                / row.trad_dynamic * 100
            stat = (row.trad_static - row.prop_static) \
                / row.trad_static * 100
            if row.circuit != "s1494":
                assert dyn == pytest.approx(row.imp_trad_dynamic,
                                            abs=1.0), row.circuit
            assert stat == pytest.approx(row.imp_trad_static, abs=1.0), \
                row.circuit

    def test_proposed_static_always_best_in_paper(self):
        for row in PAPER_TABLE1.values():
            assert row.prop_static < row.trad_static
            assert row.prop_static < row.ic_static


class TestRowConstruction:
    def _report(self, dynamic, static):
        return ScanPowerReport("c", "m", 1, 10, dynamic, static, 0, 0.0)

    def test_from_reports(self):
        trad = self._report(2.0e-8, 40.0)
        ic = self._report(1.5e-8, 38.0)
        prop = self._report(1.0e-8, 30.0)
        row = Table1Row.from_reports("cX", trad, ic, prop)
        assert row.imp_trad_dynamic == pytest.approx(50.0)
        assert row.imp_trad_static == pytest.approx(25.0)
        assert row.imp_ic_dynamic == pytest.approx(100 * (0.5 / 1.5))
        assert row.prop_static == 30.0
