"""Tests for the Figure 2 experiment harness."""

import pytest

from repro.experiments.figure2 import run_figure2


class TestFigure2:
    def test_model_matches_paper(self):
        run = run_figure2()
        assert run.max_relative_error() < 0.02

    def test_extra_cells_present(self):
        run = run_figure2()
        assert {"INV", "NOR2", "NAND3"} <= set(run.extra_cells)

    def test_render_contains_anchor_values(self):
        text = run_figure2().render()
        assert "264" in text
        assert "73" in text
        assert "paper Fig.2" in text

    def test_render_lists_extra_tables(self):
        text = run_figure2().render()
        assert "NOR2 leakage table" in text
