"""Tests for the EXPERIMENTS.md generator."""

import pytest

from repro.core.config import FlowConfig
from repro.experiments.figure2 import run_figure2
from repro.experiments.report_writer import (
    render_experiments_md,
    write_experiments_md,
)
from repro.experiments.table1 import run_table1


@pytest.fixture(scope="module")
def tiny_run():
    config = FlowConfig(seed=1, observability_samples=64, ivc_trials=8)
    return run_table1(["s27"], config)


class TestRenderExperimentsMd:
    def test_contains_all_sections(self, tiny_run):
        text = render_experiments_md(tiny_run, run_figure2())
        for marker in ("# EXPERIMENTS", "## Figure 2", "## Table I",
                       "## Ablations", "Shape assessment",
                       "## Known reproduction gaps"):
            assert marker in text

    def test_figure2_numbers_present(self, tiny_run):
        text = render_experiments_md(tiny_run, run_figure2())
        assert "264.0" in text and "408.0" in text

    def test_measured_rows_present(self, tiny_run):
        text = render_experiments_md(tiny_run, run_figure2())
        assert "s27" in text
        assert "embedded" in text

    def test_write_to_disk(self, tiny_run, tmp_path):
        path = write_experiments_md(tiny_run, run_figure2(),
                                    tmp_path / "EXPERIMENTS.md")
        assert path.exists()
        assert path.read_text().startswith("# EXPERIMENTS")
