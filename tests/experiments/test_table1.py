"""Tests for the Table I experiment harness (small circuits only)."""

import pytest

from repro.core.config import FlowConfig
from repro.experiments.results import PAPER_TABLE1
from repro.experiments.table1 import (
    DEFAULT_CIRCUITS,
    default_table1_circuits,
    run_table1,
)


@pytest.fixture(scope="module")
def small_run():
    """A shared Table-1 run over the two smallest circuits."""
    config = FlowConfig(seed=1, observability_samples=128, ivc_trials=16)
    return run_table1(["s27", "s344"], config)


class TestRunTable1:
    def test_row_per_circuit(self, small_run):
        assert [row.circuit for row in small_run.rows] == ["s27", "s344"]

    def test_provenance_recorded(self, small_run):
        assert small_run.provenance["s27"] == "embedded"
        assert small_run.provenance["s344"] == "synthetic"

    def test_runtime_recorded(self, small_run):
        assert all(t > 0 for t in small_run.runtime_s.values())

    def test_flow_results_kept(self, small_run):
        assert set(small_run.flow_results) == {"s27", "s344"}

    def test_render_includes_paper_reference(self, small_run):
        text = small_run.render()
        assert "s344" in text
        assert "(paper)" in text      # s344 is a Table I row
        assert "Provenance" in text

    def test_render_without_paper(self, small_run):
        text = small_run.render(include_paper=False)
        assert "(paper)" not in text


class TestShapeReproduction:
    """The reproduction bands: shape, not absolute values."""

    def test_proposed_dominates_traditional(self, small_run):
        for row in small_run.rows:
            assert row.prop_dynamic < row.trad_dynamic, row.circuit
            assert row.prop_static < row.trad_static, row.circuit

    def test_static_improvement_band(self, small_run):
        """Paper band for static improvement is roughly 4-23%; allow a
        generous 0-40% on substitute netlists."""
        for row in small_run.rows:
            assert 0.0 < row.imp_trad_static < 40.0, row.circuit

    def test_magnitudes_comparable_to_paper(self, small_run):
        """Absolute values should land within ~10x of the paper's
        (same units, same technology scale)."""
        row = next(r for r in small_run.rows if r.circuit == "s344")
        paper = PAPER_TABLE1["s344"]
        assert paper.trad_dynamic / 10 < row.trad_dynamic \
            < paper.trad_dynamic * 10
        assert paper.trad_static / 10 < row.trad_static \
            < paper.trad_static * 10


class TestDefaults:
    def test_default_circuit_list(self):
        assert "s344" in DEFAULT_CIRCUITS
        assert "s9234" not in DEFAULT_CIRCUITS

    def test_full_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_TABLE1", "1")
        assert "s9234" in default_table1_circuits()
        monkeypatch.setenv("REPRO_FULL_TABLE1", "0")
        assert "s9234" not in default_table1_circuits()


class TestTimingAccounting:
    def test_wall_vs_worker_time(self, small_run):
        assert small_run.wall_s > 0
        assert small_run.worker_s > 0
        # serial run: the workers' aggregate compute fits in the wall
        assert small_run.worker_s <= small_run.wall_s + 0.5
        assert small_run.cache_hits == 0

    def test_timing_summary_line(self, small_run):
        text = small_run.timing_summary()
        assert "wall" in text and "worker" in text


class TestCampaignPath:
    """``jobs``/``cache_dir`` route through the campaign layer with
    bit-identical output."""

    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("t1cache"))

    @pytest.fixture(scope="class")
    def config(self):
        return FlowConfig(seed=1, observability_samples=128,
                          ivc_trials=16)

    def test_cold_campaign_render_identical(self, small_run, config,
                                            cache_dir):
        cold = run_table1(["s27", "s344"], config, jobs=2,
                          cache_dir=cache_dir)
        assert cold.rows == small_run.rows
        assert cold.render() == small_run.render()
        assert cold.cache_hits == 0
        assert cold.flow_results == {}  # documented campaign trade-off

    def test_warm_campaign_is_pure_cache(self, small_run, config,
                                         cache_dir, monkeypatch):
        # depends on the cold test having populated the cache
        monkeypatch.setattr(
            "repro.campaign.runner._execute_flow_job",
            lambda payload: pytest.fail("flow executed on a warm run"))
        warm = run_table1(["s27", "s344"], config, jobs=4,
                          cache_dir=cache_dir)
        assert warm.cache_hits == 2
        assert warm.rows == small_run.rows
        assert warm.render() == small_run.render()

    def test_provenance_and_runtime_recorded(self, config, cache_dir):
        run = run_table1(["s27", "s344"], config, jobs=1,
                         cache_dir=cache_dir)
        assert run.provenance == {"s27": "embedded",
                                  "s344": "synthetic"}
        assert all(t > 0 for t in run.runtime_s.values())
