"""Tests for the Table I experiment harness (small circuits only)."""

import pytest

from repro.core.config import FlowConfig
from repro.experiments.results import PAPER_TABLE1
from repro.experiments.table1 import (
    DEFAULT_CIRCUITS,
    default_table1_circuits,
    run_table1,
)


@pytest.fixture(scope="module")
def small_run():
    """A shared Table-1 run over the two smallest circuits."""
    config = FlowConfig(seed=1, observability_samples=128, ivc_trials=16)
    return run_table1(["s27", "s344"], config)


class TestRunTable1:
    def test_row_per_circuit(self, small_run):
        assert [row.circuit for row in small_run.rows] == ["s27", "s344"]

    def test_provenance_recorded(self, small_run):
        assert small_run.provenance["s27"] == "embedded"
        assert small_run.provenance["s344"] == "synthetic"

    def test_runtime_recorded(self, small_run):
        assert all(t > 0 for t in small_run.runtime_s.values())

    def test_flow_results_kept(self, small_run):
        assert set(small_run.flow_results) == {"s27", "s344"}

    def test_render_includes_paper_reference(self, small_run):
        text = small_run.render()
        assert "s344" in text
        assert "(paper)" in text      # s344 is a Table I row
        assert "Provenance" in text

    def test_render_without_paper(self, small_run):
        text = small_run.render(include_paper=False)
        assert "(paper)" not in text


class TestShapeReproduction:
    """The reproduction bands: shape, not absolute values."""

    def test_proposed_dominates_traditional(self, small_run):
        for row in small_run.rows:
            assert row.prop_dynamic < row.trad_dynamic, row.circuit
            assert row.prop_static < row.trad_static, row.circuit

    def test_static_improvement_band(self, small_run):
        """Paper band for static improvement is roughly 4-23%; allow a
        generous 0-40% on substitute netlists."""
        for row in small_run.rows:
            assert 0.0 < row.imp_trad_static < 40.0, row.circuit

    def test_magnitudes_comparable_to_paper(self, small_run):
        """Absolute values should land within ~10x of the paper's
        (same units, same technology scale)."""
        row = next(r for r in small_run.rows if r.circuit == "s344")
        paper = PAPER_TABLE1["s344"]
        assert paper.trad_dynamic / 10 < row.trad_dynamic \
            < paper.trad_dynamic * 10
        assert paper.trad_static / 10 < row.trad_static \
            < paper.trad_static * 10


class TestDefaults:
    def test_default_circuit_list(self):
        assert "s344" in DEFAULT_CIRCUITS
        assert "s9234" not in DEFAULT_CIRCUITS

    def test_full_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_TABLE1", "1")
        assert "s9234" in default_table1_circuits()
        monkeypatch.setenv("REPRO_FULL_TABLE1", "0")
        assert "s9234" not in default_table1_circuits()
