"""Tests for the ablation harnesses (on the smallest circuit)."""

import pytest

from repro.experiments.ablations import (
    AblationRow,
    ablation_ivc_budget,
    ablation_mux_margin,
    ablation_observability,
    ablation_reorder,
    render_rows,
)


class TestAblationObservability:
    def test_two_variants_per_circuit(self):
        rows = ablation_observability(["s27"], seed=1)
        assert [r.variant for r in rows] == ["directed", "undirected"]
        assert all(r.static_uw > 0 for r in rows)


class TestAblationMuxMargin:
    def test_sweep_shape(self):
        rows = ablation_mux_margin(["s27"], margins_ps=(0.0, 1e6),
                                   seed=1)
        assert len(rows) == 2
        # infinite margin -> zero coverage recorded in detail text
        assert "coverage 0%" in rows[1].detail


class TestAblationReorder:
    def test_reorder_never_hurts_static(self):
        rows = ablation_reorder(["s27"], seed=1)
        with_reorder = next(r for r in rows if r.variant == "reorder")
        without = next(r for r in rows if r.variant == "no-reorder")
        assert with_reorder.static_uw <= without.static_uw + 1e-9


class TestAblationIvcBudget:
    def test_monotone_budgets_reported(self):
        rows = ablation_ivc_budget("s27", budgets=(1, 32), seed=1)
        assert [r.variant for r in rows] == ["trials=1", "trials=32"]
        assert all(r.static_uw > 0 for r in rows)


class TestRenderRows:
    def test_render(self):
        rows = [AblationRow("sX", "v1", 1e-8, 5.0, "note")]
        text = render_rows(rows, "Title")
        assert text.startswith("Title")
        assert "sX" in text and "note" in text
