"""Tests for the technology mapper."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchgen.generator import generate_from_stats
from repro.benchgen.iscas89 import Iscas89Stats
from repro.errors import MappingError
from repro.netlist import builders
from repro.netlist.gates import GateType
from repro.techmap.mapper import is_mapped, technology_map
from repro.techmap.verify import assert_equivalent, equivalence_check


class TestIsMapped:
    def test_unmapped_circuit(self, s27):
        assert not is_mapped(s27)   # s27 has AND/OR gates

    def test_mapped_circuit(self, s27_mapped):
        assert is_mapped(s27_mapped)

    def test_wide_native_gate_not_mapped(self):
        wide = builders.wide_gate_circuit(6)
        assert not is_mapped(wide)


class TestTechnologyMap:
    @pytest.mark.parametrize("build", [
        builders.s27, builders.c17, builders.toy_scan_circuit,
        builders.reconvergent_circuit,
        lambda: builders.wide_gate_circuit(11),
    ])
    def test_maps_and_preserves_function(self, build):
        original = build()
        mapped = technology_map(original)
        assert is_mapped(mapped)
        assert_equivalent(original, mapped)

    def test_interface_preserved(self, s27, s27_mapped):
        assert s27_mapped.inputs == s27.inputs
        assert s27_mapped.outputs == s27.outputs
        assert set(s27_mapped.dff_outputs) == set(s27.dff_outputs)

    def test_original_gate_outputs_survive(self, s27, s27_mapped):
        for line in s27.gates:
            assert s27_mapped.has_line(line)

    def test_mapping_is_idempotent(self, s27_mapped):
        again = technology_map(s27_mapped)
        assert len(again.gates) == len(s27_mapped.gates)

    def test_bad_max_arity(self, s27):
        with pytest.raises(MappingError):
            technology_map(s27, max_arity=1)

    def test_max_arity_two(self, s27):
        mapped = technology_map(s27, max_arity=2)
        for gate in mapped.combinational_gates():
            if gate.gtype in (GateType.NAND, GateType.NOR):
                assert len(gate.inputs) <= 2
        assert equivalence_check(s27, mapped)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_synthetic_circuits_map_equivalently(self, seed):
        stats = Iscas89Stats("rand", 5, 4, 4, 40)
        original = generate_from_stats(stats, seed)
        mapped = technology_map(original)
        assert is_mapped(mapped)
        assert equivalence_check(original, mapped, n_random=64, seed=seed)


class TestEquivalenceCheck:
    def test_detects_inequivalence(self, s27):
        broken = technology_map(s27)
        gate = broken.gates["G17"]
        broken.replace_gate("G17", GateType.BUFF, gate.inputs)
        assert not equivalence_check(s27, broken)

    def test_detects_interface_mismatch(self, s27, c17):
        assert not equivalence_check(s27, c17)

    def test_assert_equivalent_raises(self, s27):
        broken = technology_map(s27)
        gate = broken.gates["G17"]
        broken.replace_gate("G17", GateType.BUFF, gate.inputs)
        with pytest.raises(MappingError):
            assert_equivalent(s27, broken)

    def test_exhaustive_mode_used_for_small(self, c17):
        # 5 inputs -> exhaustive; a circuit differing on one minterm
        # must be caught.
        twin = c17.copy()
        twin.remove_gate("G22")
        twin.add_gate("G22", GateType.NAND, ("G10", "G16"))
        assert equivalence_check(c17, twin)  # identical rebuild
        broken = c17.copy()
        broken.remove_gate("G22")
        broken.add_gate("G22", GateType.AND, ("G10", "G16"))
        assert not equivalence_check(c17, broken)
