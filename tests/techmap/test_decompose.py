"""Tests for gate decomposition rules."""

import pytest

from repro.errors import MappingError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.techmap.decompose import NameAllocator, decompose_gate, tree_groups


@pytest.fixture
def alloc():
    c = Circuit()
    c.add_input("a")
    c.add_input("b")
    c.add_input("c")
    return NameAllocator(c)


class TestNameAllocator:
    def test_fresh_names_unique(self, alloc):
        names = {alloc.fresh() for _ in range(100)}
        assert len(names) == 100

    def test_avoids_existing(self):
        c = Circuit()
        c.add_input("tm0")
        alloc = NameAllocator(c)
        assert alloc.fresh() != "tm0"

    def test_reserve(self, alloc):
        alloc.reserve("tm1")
        assert "tm1" not in {alloc.fresh() for _ in range(10)}

    def test_hint_included(self, alloc):
        assert "nd" in alloc.fresh("nd")


class TestTreeGroups:
    def test_exact_split(self):
        assert tree_groups(list("abcdefgh"), 4) == [list("abcd"),
                                                    list("efgh")]

    def test_remainder(self):
        assert tree_groups(list("abcde"), 2) == [["a", "b"], ["c", "d"],
                                                 ["e"]]

    def test_bad_arity(self):
        with pytest.raises(MappingError):
            tree_groups(["a"], 1)


class TestDecomposeGate:
    def test_native_passthrough(self, alloc):
        triples = decompose_gate("y", GateType.NAND, ("a", "b"), alloc)
        assert triples == [("y", GateType.NAND, ("a", "b"))]

    def test_not_passthrough(self, alloc):
        triples = decompose_gate("y", GateType.NOT, ("a",), alloc)
        assert triples == [("y", GateType.NOT, ("a",))]

    def test_and_becomes_nand_inv(self, alloc):
        triples = decompose_gate("y", GateType.AND, ("a", "b"), alloc)
        assert [t[1] for t in triples] == [GateType.NAND, GateType.NOT]
        assert triples[-1][0] == "y"

    def test_or_becomes_nor_inv(self, alloc):
        triples = decompose_gate("y", GateType.OR, ("a", "b"), alloc)
        assert [t[1] for t in triples] == [GateType.NOR, GateType.NOT]

    def test_buff_becomes_double_inverter(self, alloc):
        triples = decompose_gate("y", GateType.BUFF, ("a",), alloc)
        assert [t[1] for t in triples] == [GateType.NOT, GateType.NOT]

    def test_xor2_is_four_nands(self, alloc):
        triples = decompose_gate("y", GateType.XOR, ("a", "b"), alloc)
        assert len(triples) == 4
        assert all(t[1] is GateType.NAND for t in triples)

    def test_xnor2_adds_inverter(self, alloc):
        triples = decompose_gate("y", GateType.XNOR, ("a", "b"), alloc)
        assert triples[-1][1] is GateType.NOT
        assert len(triples) == 5

    def test_mux_structure(self, alloc):
        triples = decompose_gate("y", GateType.MUX2, ("a", "b", "c"),
                                 alloc)
        kinds = [t[1] for t in triples]
        assert kinds.count(GateType.NAND) == 3
        assert kinds.count(GateType.NOT) == 1

    def test_wide_nand_tree(self, alloc):
        inputs = tuple(f"i{k}" for k in range(9))
        triples = decompose_gate("y", GateType.NAND, inputs, alloc,
                                 max_arity=4)
        # every produced gate must respect the arity bound
        for _out, gtype, ins in triples:
            if gtype in (GateType.NAND, GateType.NOR):
                assert 2 <= len(ins) <= 4
        assert triples[-1][0] == "y"

    def test_dff_untouched(self, alloc):
        triples = decompose_gate("q", GateType.DFF, ("d",), alloc)
        assert triples == [("q", GateType.DFF, ("d",))]
