"""Cross-process trace stitching: pool workers and queue workers.

The acceptance pins of the observability layer: a multi-process
campaign and a real ``repro-power worker`` subprocess each produce one
stitched trace tree — single trace ID, parent/child links across PIDs,
zero orphan spans.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.campaign.manifest import CampaignSpec
from repro.campaign.queue import WorkQueue
from repro.campaign.runner import run_campaign
from repro.obs.trace import (
    enable,
    flush,
    read_spans,
    summarize_trace,
)

#: Keeps every real flow in the tens-of-milliseconds range (s27 only).
SMALL = {"observability_samples": 16, "ivc_trials": 2,
         "ivc_noise_samples": 2}


def small_spec(seeds=(1,), name="t"):
    return CampaignSpec(circuits=("s27",), seeds=seeds,
                        base=dict(SMALL), name=name)


def by_name(records):
    grouped = {}
    for record in records:
        grouped.setdefault(record["name"], []).append(record)
    return grouped


class TestPoolPropagation:
    def test_two_process_campaign_stitches_one_tree(self, tmp_path):
        enable(tmp_path / "trace")
        run_campaign(small_spec(seeds=(1, 2), name="pooled"), jobs=2)
        flush()

        summary = summarize_trace(tmp_path / "trace")
        assert summary.orphans == []
        assert len(summary.traces) == 1
        assert len(summary.processes) >= 2  # parent + pool workers

        records = by_name(read_spans(tmp_path / "trace"))
        [pool_map] = records["pool.map"]
        tasks = records["pool.task"]
        assert len(tasks) == 2
        for task in tasks:
            # The shipped parent_span_id is authoritative — not the
            # stack the fork worker inherited from its parent.
            assert task["parent"] == pool_map["span"]
            assert task["pid"] != pool_map["pid"]
        assert {task["parent"] for task in records["job.execute"]
                } <= {task["span"] for task in tasks}
        assert {rec["trace"] for rec in read_spans(tmp_path / "trace")
                } == {summary.traces[0]}

    def test_campaign_run_span_tracks_wall(self, tmp_path):
        enable(tmp_path / "trace")
        result = run_campaign(small_spec(name="wall"), jobs=1)
        flush()
        records = by_name(read_spans(tmp_path / "trace"))
        [run_span] = records["campaign.run"]
        assert run_span["parent"] is None
        # Same monotonic pair: the manifest wall and the span agree.
        assert run_span["dur_s"] == result.wall_s


class TestWorkerPropagation:
    def test_worker_subprocess_joins_enqueue_trace(self, tmp_path):
        trace_dir = tmp_path / "trace"
        queue_dir = tmp_path / "q"
        enable(trace_dir)
        WorkQueue(queue_dir).enqueue(small_spec(name="queued"))
        flush()

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_TRACE", None)  # ctx rides the job payload only
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "worker", str(queue_dir),
             "--cache-dir", str(tmp_path / "cache"),
             "--poll-s", "0.01", "--quiet"],
            env=env, capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr

        summary = summarize_trace(trace_dir)
        assert summary.orphans == []
        assert len(summary.traces) == 1

        records = by_name(read_spans(trace_dir))
        [enqueue] = records["queue.enqueue"]
        [job] = records["worker.job"]
        assert job["parent"] == enqueue["span"]
        assert job["pid"] != enqueue["pid"]  # a real second process
        assert job["trace"] == enqueue["trace"]
        assert job["attrs"]["source"] == "run"
        [execute] = records["job.execute"]
        assert execute["parent"] == job["span"]
        assert execute["pid"] == job["pid"]

    def test_claim_span_recorded_in_worker_file(self, tmp_path):
        """The worker's spans land in its own per-PID JSONL file."""
        trace_dir = tmp_path / "trace"
        queue_dir = tmp_path / "q"
        enable(trace_dir)
        WorkQueue(queue_dir).enqueue(small_spec(name="files"))
        flush()

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_TRACE", None)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "worker", str(queue_dir),
             "--cache-dir", str(tmp_path / "cache"),
             "--poll-s", "0.01", "--quiet"],
            env=env, capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr

        pids = {rec["pid"] for rec in read_spans(trace_dir)}
        files = {int(p.name.split("-")[1])
                 for p in trace_dir.glob("trace-*.jsonl")}
        assert pids == files and len(files) >= 2
