"""Span tracing: recording, knob resolution, reading, summarizing."""

import json
import re
import uuid

import pytest

from repro import runtime
from repro.obs import trace
from repro.obs.trace import (
    Span,
    collect_phases,
    current_trace_id,
    disable,
    enable,
    flush,
    read_spans,
    record_event,
    resolve_trace,
    span,
    summarize_trace,
    trace_dir,
    traced,
    tracing_enabled,
)
from repro.runtime import RuntimeOptions


class TestSpanBasics:
    def test_disabled_span_still_measures(self, tmp_path):
        assert not tracing_enabled()
        with span("phase", a=1) as sp:
            pass
        assert isinstance(sp, Span)
        assert sp.dur_s >= 0.0
        assert sp.span_id is None  # never recorded
        assert list(tmp_path.glob("trace-*.jsonl")) == []

    def test_enabled_records_schema_and_nesting(self, tmp_path):
        enable(tmp_path)
        with span("outer", circuit="s27") as outer:
            with span("inner") as inner:
                pass
        records = read_spans(tmp_path)
        assert [r["name"] for r in records] == ["outer", "inner"]
        rec_outer, rec_inner = records
        assert re.fullmatch(r"[0-9a-f]{32}", rec_outer["trace"])
        assert re.fullmatch(r"[0-9a-f]{16}", rec_outer["span"])
        assert rec_outer["trace"] == rec_inner["trace"]
        assert rec_outer["parent"] is None
        assert rec_inner["parent"] == rec_outer["span"]
        assert rec_outer["attrs"] == {"circuit": "s27"}
        assert rec_outer["dur_s"] == outer.dur_s
        assert rec_inner["dur_s"] == inner.dur_s
        assert rec_outer["t0"] <= rec_inner["t0"]
        assert isinstance(rec_outer["pid"], int)
        assert isinstance(rec_outer["thread"], str)

    def test_root_close_flushes_without_explicit_flush(self, tmp_path):
        enable(tmp_path)
        with span("root"):
            pass
        assert len(read_spans(tmp_path)) == 1  # no flush() needed

    def test_exception_annotates_record_and_pops_stack(self, tmp_path):
        enable(tmp_path)
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("nope")
        [record] = read_spans(tmp_path)
        assert record["error"] == "ValueError"
        with span("after"):
            pass
        after = [r for r in read_spans(tmp_path) if r["name"] == "after"]
        assert after[0]["parent"] is None  # stack did not leak

    def test_enable_same_dir_keeps_trace_id(self, tmp_path):
        enable(tmp_path)
        first = current_trace_id()
        enable(tmp_path)  # e.g. repeated set_session_defaults
        assert current_trace_id() == first
        enable(tmp_path, trace_id="ab" * 16)
        assert current_trace_id() == "ab" * 16

    def test_disable_flushes_and_stops(self, tmp_path):
        enable(tmp_path)
        assert trace_dir() == tmp_path
        with span("parent"):
            with span("kept"):
                pass
            disable()
        assert not tracing_enabled()
        assert trace_dir() is None and current_trace_id() is None
        names = {r["name"] for r in read_spans(tmp_path)}
        assert names == {"kept"}  # buffered span flushed, parent lost

    def test_traced_decorator(self, tmp_path):
        enable(tmp_path)

        @traced("fn.phase", tag="x")
        def work(value):
            return value * 2

        assert work(21) == 42
        [record] = read_spans(tmp_path)
        assert record["name"] == "fn.phase"
        assert record["attrs"] == {"tag": "x"}


class TestRecordEvent:
    def test_noop_when_disabled(self, tmp_path):
        record_event("service.request", 0.25, target="/healthz")
        assert list(tmp_path.glob("trace-*.jsonl")) == []

    def test_parents_under_open_span(self, tmp_path):
        enable(tmp_path)
        with span("outer"):
            record_event("service.request", 0.5, status=200)
        records = {r["name"]: r for r in read_spans(tmp_path)}
        event = records["service.request"]
        assert event["parent"] == records["outer"]["span"]
        assert event["dur_s"] == 0.5
        assert event["attrs"] == {"status": 200}
        # t0 back-dated so t0 + dur_s is "now" at record time.
        assert event["t0"] < records["outer"]["t0"] + records[
            "outer"]["dur_s"]

    def test_root_event_flushes(self, tmp_path):
        enable(tmp_path)
        record_event("lonely", 0.01)
        [record] = read_spans(tmp_path)
        assert record["parent"] is None


class TestResolveTrace:
    def test_argument_wins(self, monkeypatch, tmp_path):
        env, session = str(tmp_path / "env"), str(tmp_path / "sess")
        monkeypatch.setenv("REPRO_TRACE", env)
        with runtime.using(trace=session):
            assert resolve_trace(str(tmp_path / "arg")) == str(
                tmp_path / "arg")
            assert resolve_trace("") is None  # "" pins off
        monkeypatch.delenv("REPRO_TRACE")

    def test_session_beats_env(self, monkeypatch, tmp_path):
        env, session = str(tmp_path / "env"), str(tmp_path / "sess")
        monkeypatch.setenv("REPRO_TRACE", env)
        with runtime.using(trace=session):
            assert resolve_trace() == session
        with runtime.using(trace=""):
            assert resolve_trace() is None  # "" pins off
        monkeypatch.delenv("REPRO_TRACE")

    def test_env_is_the_fallback(self, monkeypatch, tmp_path):
        env = str(tmp_path / "env")
        monkeypatch.setenv("REPRO_TRACE", env)
        assert resolve_trace() == env
        monkeypatch.delenv("REPRO_TRACE")
        assert resolve_trace() is None

    def test_session_knob_drives_recorder(self, tmp_path):
        with runtime.using(trace=str(tmp_path / "t")):
            assert tracing_enabled()
            with span("scoped"):
                pass
        assert not tracing_enabled()  # restored by the using() exit
        assert [r["name"] for r in read_spans(tmp_path / "t")] == [
            "scoped"]

    def test_session_reset_spares_explicit_enable(self, tmp_path):
        enable(tmp_path)  # e.g. a worker adopting a shipped context
        runtime.set_session_defaults(RuntimeOptions())
        assert tracing_enabled()


class TestCollectPhases:
    def test_accumulates_with_tracing_off(self):
        with collect_phases() as phases:
            with span("a"):
                with span("b"):
                    pass
            with span("a"):
                pass
        assert set(phases) == {"a", "b"}
        assert phases["a"] >= phases["b"]  # two a's, nested b

    def test_sink_detached_after_exit(self):
        with collect_phases() as phases:
            pass
        with span("later"):
            pass
        assert "later" not in phases

    def test_nested_collectors_both_fed(self):
        with collect_phases() as outer:
            with collect_phases() as inner:
                with span("x"):
                    pass
        assert outer["x"] == inner["x"]


class TestReadSpans:
    def test_skips_corrupt_lines_and_foreign_files(self, tmp_path):
        good = {"trace": "t" * 32, "span": "s" * 16, "parent": None,
                "name": "ok", "t0": 1.0, "dur_s": 0.5, "pid": 1,
                "thread": "main", "attrs": {}}
        (tmp_path / "trace-1-aa.jsonl").write_text(
            json.dumps(good) + "\n" + "{truncated\n" + "[1, 2]\n")
        (tmp_path / "notes.txt").write_text("not a trace file")
        records = read_spans(tmp_path)
        assert [r["name"] for r in records] == ["ok"]

    def test_sorted_by_start_across_files(self, tmp_path):
        def rec(name, t0):
            return {"trace": "t" * 32, "span": uuid.uuid4().hex[:16],
                    "parent": None, "name": name, "t0": t0,
                    "dur_s": 0.1, "pid": 1, "thread": "m", "attrs": {}}

        (tmp_path / "trace-1-aa.jsonl").write_text(
            json.dumps(rec("late", 5.0)) + "\n")
        (tmp_path / "trace-2-bb.jsonl").write_text(
            json.dumps(rec("early", 1.0)) + "\n")
        assert [r["name"] for r in read_spans(tmp_path)] == [
            "early", "late"]


def _write_trace(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


class TestSummarize:
    def synthetic(self, tmp_path):
        trace_id = "f" * 32
        root = {"trace": trace_id, "span": "a" * 16, "parent": None,
                "name": "campaign.run", "t0": 0.0, "dur_s": 4.0,
                "pid": 10, "thread": "m", "attrs": {}}
        child = {"trace": trace_id, "span": "b" * 16,
                 "parent": "a" * 16, "name": "job.execute", "t0": 0.5,
                 "dur_s": 3.0, "pid": 11, "thread": "m", "attrs": {}}
        quick = {"trace": trace_id, "span": "c" * 16,
                 "parent": "a" * 16, "name": "job.execute", "t0": 0.6,
                 "dur_s": 1.0, "pid": 12, "thread": "m", "attrs": {}}
        _write_trace(tmp_path / "trace-10-aa.jsonl", [root])
        _write_trace(tmp_path / "trace-11-bb.jsonl", [child, quick])
        return root, child, quick

    def test_aggregates(self, tmp_path):
        self.synthetic(tmp_path)
        summary = summarize_trace(tmp_path)
        assert summary.spans == 3
        assert summary.traces == ["f" * 32]
        assert summary.processes == [10, 11, 12]
        assert summary.wall_s == 4.0  # roots only
        count, total, peak = summary.phases["job.execute"]
        assert (count, total, peak) == (2, 4.0, 3.0)
        assert summary.orphans == []

    def test_critical_path_walks_longest_children(self, tmp_path):
        self.synthetic(tmp_path)
        summary = summarize_trace(tmp_path)
        assert [(name, dur) for name, dur, _ in summary.critical_path
                ] == [("campaign.run", 4.0), ("job.execute", 3.0)]
        assert summary.critical_path[1][2] == 11  # the pid travels

    def test_orphans_flagged(self, tmp_path):
        root, child, _ = self.synthetic(tmp_path)
        child["parent"] = "0" * 16  # parent recorded nowhere
        _write_trace(tmp_path / "trace-11-bb.jsonl", [child])
        summary = summarize_trace(tmp_path)
        assert summary.orphans == [child["span"]]
        assert "ORPHAN" in summary.render()

    def test_render_layout(self, tmp_path):
        self.synthetic(tmp_path)
        text = summarize_trace(tmp_path).render()
        assert "spans: 3" in text and "processes: 3" in text
        assert "wall: 4.000s" in text
        assert re.search(r"phase\s+count\s+total_s\s+mean_s\s+max_s",
                         text)
        assert "critical path:" in text
        assert "ORPHAN" not in text

    def test_empty_directory(self, tmp_path):
        summary = summarize_trace(tmp_path)
        assert summary.spans == 0
        assert summary.critical_path == []
        assert "spans: 0" in summary.render()


class TestCliSummarize:
    def test_trace_summarize_command(self, tmp_path, capsys):
        from repro.cli import main

        enable(tmp_path)
        with span("campaign.run"):
            with span("job.execute"):
                pass
        flush()
        disable()
        assert main(["trace", "summarize", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "campaign.run" in out and "job.execute" in out
        assert "critical path:" in out

    def test_trace_summarize_empty_dir_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "summarize", str(tmp_path)]) == 1
        assert "no spans" in capsys.readouterr().err
