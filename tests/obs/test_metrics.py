"""Metrics registry: instrument semantics and both renderings."""

import json
import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    get_registry,
)


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_monotonic(self, reg):
        counter = reg.counter("jobs_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_get_or_create_returns_same_instrument(self, reg):
        a = reg.counter("jobs_total")
        b = reg.counter("jobs_total")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_labels_distinguish_instruments(self, reg):
        hit = reg.counter("cache_ops_total", labels={"outcome": "hit"})
        miss = reg.counter("cache_ops_total",
                           labels={"outcome": "miss"})
        assert hit is not miss
        hit.inc(3)
        assert (hit.value, miss.value) == (3, 0)


class TestGauge:
    def test_set_inc_dec(self, reg):
        gauge = reg.gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6


class TestHistogram:
    def test_observe_and_cumulative(self, reg):
        hist = reg.histogram("latency_s", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 100.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(101.05)
        assert hist.cumulative() == [
            (0.1, 1), (1.0, 3), (10.0, 3), (math.inf, 4)]

    def test_default_buckets_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS

    def test_empty_buckets_rejected(self, reg):
        with pytest.raises(ValueError, match="bucket"):
            reg.histogram("h", buckets=())


class TestRegistry:
    def test_kind_conflict_rejected(self, reg):
        reg.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("thing")

    def test_invalid_names_rejected(self, reg):
        with pytest.raises(ValueError, match="metric name"):
            reg.counter("bad-name")
        with pytest.raises(ValueError, match="label name"):
            reg.counter("ok", labels={"bad-label": "x"})

    def test_snapshot_folds_labels_and_is_json_able(self, reg):
        reg.counter("ops_total", labels={"outcome": "hit"}).inc(2)
        reg.gauge("depth", labels={"state": "pending"}).set(7)
        reg.histogram("lat_s", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap['ops_total{outcome="hit"}'] == 2
        assert snap['depth{state="pending"}'] == 7
        assert snap["lat_s"] == {
            "count": 1, "sum": 0.5, "buckets": {"1": 1, "+Inf": 1}}
        json.dumps(snap)  # must round-trip

    def test_reset_drops_everything(self, reg):
        reg.counter("gone").inc()
        reg.reset()
        assert reg.snapshot() == {}
        reg.gauge("gone")  # no stale kind conflict after reset

    def test_module_registry_is_shared(self):
        assert get_registry() is get_registry()

    def test_thread_safety_no_lost_updates(self, reg):
        counter = reg.counter("contended")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000


class TestPrometheusRendering:
    def test_counter_and_gauge_families(self, reg):
        reg.counter("repro_ops_total", "Operations.",
                    labels={"outcome": "hit"}).inc(4)
        reg.counter("repro_ops_total",
                    labels={"outcome": "miss"}).inc()
        reg.gauge("repro_depth", "Queue depth.").set(3)
        text = reg.render_prometheus()
        assert "# HELP repro_ops_total Operations." in text
        assert "# TYPE repro_ops_total counter" in text
        assert 'repro_ops_total{outcome="hit"} 4' in text
        assert 'repro_ops_total{outcome="miss"} 1' in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 3" in text
        assert text.endswith("\n")

    def test_histogram_exposition(self, reg):
        hist = reg.histogram("repro_lat_s", "Latency.",
                             buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(50.0)
        text = reg.render_prometheus()
        assert 'repro_lat_s_bucket{le="0.1"} 1' in text
        assert 'repro_lat_s_bucket{le="1"} 2' in text
        assert 'repro_lat_s_bucket{le="+Inf"} 3' in text
        assert "repro_lat_s_sum 50.55" in text
        assert "repro_lat_s_count 3" in text

    def test_label_values_escaped(self, reg):
        reg.counter("c_total", labels={"path": 'a"b\\c\nd'}).inc()
        text = reg.render_prometheus()
        assert 'c_total{path="a\\"b\\\\c\\nd"} 1' in text

    def test_empty_registry_renders_empty(self, reg):
        assert reg.render_prometheus() == ""
