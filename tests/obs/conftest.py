"""Shared state hygiene for the observability tests.

The trace recorder and the metrics registry are process-global by
design; every test here starts from (and leaves behind) a clean slate
so ordering never matters.
"""

import pytest

from repro.obs import trace
from repro.obs.metrics import get_registry


@pytest.fixture(autouse=True)
def _clean_obs_state():
    trace._reset_for_tests()
    get_registry().reset()
    yield
    trace._reset_for_tests()
    get_registry().reset()
