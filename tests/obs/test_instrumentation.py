"""Instrumented hot paths: pinned timings, counters, digest hygiene.

The deprecation-sweep contract: timing fields that used to come from
their own ``Stopwatch``/``time.monotonic()`` bookkeeping now read the
surrounding span's measurement — so a ``--trace`` capture and the
reported numbers are the *same* clock reads, pinned here by exact
float equality against the JSONL records.
"""

import time

from repro.campaign.cache import ResultCache
from repro.campaign.manifest import CampaignJob, CampaignSpec
from repro.campaign.queue import WorkQueue
from repro.campaign.runner import run_flow_jobs
from repro.core.config import FlowConfig
from repro.experiments.table1 import run_table1
from repro.obs.metrics import get_registry
from repro.obs.trace import enable, flush, read_spans

#: Keeps every real flow in the tens-of-milliseconds range (s27 only).
SMALL = {"observability_samples": 16, "ivc_trials": 2,
         "ivc_noise_samples": 2}


def small_job(seed=1):
    return CampaignJob(job_id=f"s27/seed{seed}", circuit="s27",
                       seed=seed, circuit_seed=seed,
                       config_kwargs=dict(SMALL))


def by_name(records):
    grouped = {}
    for record in records:
        grouped.setdefault(record["name"], []).append(record)
    return grouped


class TestPinnedTimings:
    def test_artefact_elapsed_is_the_execute_span(self, tmp_path):
        enable(tmp_path / "trace")
        artefacts, records, wall_s, _ = run_flow_jobs([small_job()],
                                                      jobs=1)
        flush()
        spans = by_name(read_spans(tmp_path / "trace"))
        [execute] = spans["job.execute"]
        assert artefacts[0]["elapsed_s"] == execute["dur_s"]
        [run_span] = spans["campaign.run"]
        assert wall_s == run_span["dur_s"]
        assert records[0].wall_s == execute["dur_s"]

    def test_job_phases_ride_the_manifest_not_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        artefacts, records, _, _ = run_flow_jobs([small_job()], jobs=1,
                                                 cache=cache)
        phases = records[0].phases
        assert phases and "flow.run" in phases and \
            "job.execute" in phases
        assert phases["job.execute"] >= phases["flow.run"] > 0.0
        # The cached artefact must stay bit-stable: no phase timings.
        [key] = cache.entries()
        assert "_phases" not in cache.get(key)
        assert "_phases" not in artefacts[0]

    def test_table1_wall_and_runtime_are_their_spans(self, tmp_path):
        enable(tmp_path / "trace")
        run = run_table1(circuits=["s27"],
                         config=FlowConfig(seed=1, **SMALL))
        flush()
        spans = by_name(read_spans(tmp_path / "trace"))
        [wall] = spans["table1.run"]
        assert run.wall_s == wall["dur_s"]
        [circuit] = spans["table1.circuit"]
        assert run.runtime_s["s27"] == circuit["dur_s"]
        assert circuit["parent"] == wall["span"]


class TestCacheCounters:
    def test_miss_store_hit_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 20

        def count(outcome):
            snap = get_registry().snapshot()
            return snap.get(
                f'repro_cache_ops_total{{outcome="{outcome}"}}', 0)

        assert cache.get(key) is None
        assert count("miss") == 1
        cache.put(key, {"kind": "flow", "row": {}})
        assert count("store") == 1
        assert cache.get(key) == {"kind": "flow", "row": {}}
        assert count("hit") == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1


class TestQueueCounters:
    def test_requeue_expired_increments_counter(self, tmp_path):
        spec = CampaignSpec(circuits=("s27",), seeds=(1,),
                            base=dict(SMALL), name="lease")
        queue = WorkQueue(tmp_path / "q", lease_ttl_s=0.05)
        queue.enqueue(spec, lease_ttl_s=0.05)
        assert queue.claim("w1") is not None
        assert queue.requeue_expired() == 0  # lease still fresh
        snap = get_registry().snapshot()
        assert snap.get("repro_queue_requeued_total", 0) == 0
        time.sleep(0.08)
        assert queue.requeue_expired() == 1
        snap = get_registry().snapshot()
        assert snap["repro_queue_requeued_total"] == 1

    def test_submit_digest_ignores_trace_context(self, tmp_path):
        """The shipped trace ctx must not pollute the dedup digest."""
        untraced = WorkQueue.create(tmp_path / "q1")
        name_untraced, _ = untraced.submit(small_job())
        enable(tmp_path / "trace")
        traced_q = WorkQueue.create(tmp_path / "q2")
        name_traced, _ = traced_q.submit(small_job())
        assert name_traced == name_untraced
