"""Content-addressed cache semantics: hits, misses, invalidation."""

import pytest

from repro.campaign.cache import ResultCache
from repro.netlist import builders
from repro.netlist.gates import GateType
from repro.core.config import FlowConfig
from repro.utils.hashing import package_fingerprint


class TestKeying:
    def test_key_is_deterministic(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.key("k", "c1", "h1", "f1") == \
            cache.key("k", "c1", "h1", "f1")

    def test_key_changes_with_each_ingredient(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key("k", "c1", "h1", "f1")
        assert cache.key("k2", "c1", "h1", "f1") != base
        assert cache.key("k", "c2", "h1", "f1") != base
        assert cache.key("k", "c1", "h2", "f1") != base
        assert cache.key("k", "c1", "h1", "f2") != base

    def test_default_code_fingerprint_is_package(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.key("k", "c", "h") == \
            cache.key("k", "c", "h", package_fingerprint())


class TestStorage:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("k", "c", "h", "f")
        assert cache.get(key) is None
        assert key not in cache
        cache.put(key, {"value": 1.5, "nested": {"a": [1, 2]}})
        assert key in cache
        assert cache.get(key) == {"value": 1.5, "nested": {"a": [1, 2]}}

    def test_floats_round_trip_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        value = 6.2791875000000006e-09  # repr-encoded: exact
        key = cache.key("k", "c", "h", "f")
        cache.put(key, {"x": value})
        assert cache.get(key)["x"] == value

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("k", "c", "h", "f")
        cache.put(key, {"x": 1})
        cache.path(key).write_text("{ not json")
        assert cache.get(key) is None

    def test_stats_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("k", "c", "h", "f")
        cache.get(key)
        cache.put(key, {})
        cache.get(key)
        assert (cache.stats.misses, cache.stats.stores,
                cache.stats.hits) == (1, 1, 1)

    def test_entries_listing(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = {cache.key("k", "c", h, "f") for h in ("h1", "h2")}
        for key in keys:
            cache.put(key, {})
        assert cache.entries() == sorted(keys)

    def test_no_temp_file_droppings(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache.key("k", "c", "h", "f"), {"x": 1})
        stray = [p for p in tmp_path.rglob("*")
                 if p.is_file() and p.name.startswith(".tmp-")]
        assert stray == []


class TestInvalidation:
    """The cache-miss triggers the campaign layer relies on."""

    def test_circuit_edit_changes_fingerprint(self, tmp_path):
        cache = ResultCache(tmp_path)
        circuit = builders.s27()
        before = cache.key("k", circuit.fingerprint(), "h", "f")
        gate = circuit.gate("G11")        # G11 = NOR(G5, G9)
        circuit.replace_gate("G11", GateType.NAND, gate.inputs)
        after = cache.key("k", circuit.fingerprint(), "h", "f")
        assert before != after

    def test_identical_rebuild_hits_same_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        key_a = cache.key("k", builders.s27().fingerprint(), "h", "f")
        key_b = cache.key("k", builders.s27().fingerprint(), "h", "f")
        assert key_a == key_b

    def test_config_change_changes_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        fp = builders.s27().fingerprint()
        assert cache.key("k", fp, FlowConfig(seed=1).config_hash()) != \
            cache.key("k", fp, FlowConfig(seed=2).config_hash())


class TestEntriesHygiene:
    def test_stray_temp_files_are_not_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("k", "c", "h", "f")
        cache.put(key, {"x": 1})
        # simulate a kill between mkstemp and os.replace
        (cache.path(key).parent / ".tmp-dead.json").write_text("{}")
        assert cache.entries() == [key]


class TestGc:
    def _fill(self, cache, n, size=512):
        import time
        keys = []
        for i in range(n):
            key = cache.key("k", f"circuit{i}", "h", "f")
            cache.put(key, {"blob": "x" * size})
            time.sleep(0.01)  # distinct mtimes drive the LRU order
            keys.append(key)
        return keys

    def test_noop_under_budget(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 3)
        assert cache.gc(1 << 30) == (0, 0)
        assert len(cache.entries()) == 3

    def test_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = self._fill(cache, 4)
        total = sum(cache.path(k).stat().st_size for k in keys)
        oldest = cache.path(keys[0]).stat().st_size
        evicted, freed = cache.gc(total - 1)
        assert evicted == 1
        assert freed == oldest
        assert keys[0] not in cache
        assert all(k in cache for k in keys[1:])

    def test_zero_budget_clears_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = self._fill(cache, 3)
        evicted, _freed = cache.gc(0)
        assert evicted == 3
        assert cache.entries() == []
        assert all(k not in cache for k in keys)

    def test_manifests_survive(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._fill(cache, 2)
        manifest = tmp_path / "camp.manifest.json"
        manifest.write_text("{}")
        cache.gc(0)
        assert manifest.exists()

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).gc(-1)
