"""Artifact service: ETag caching, miss handling, live HTTP server."""

import asyncio
import http.client
import json
import time

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.manifest import CampaignSpec
from repro.campaign.queue import WorkQueue, run_worker
from repro.campaign.runner import run_campaign
from repro.campaign.service import (
    ArtifactService,
    ServiceServer,
    content_etag,
)

#: Keeps every real flow in the tens-of-milliseconds range (s27 only).
SMALL = {"observability_samples": 16, "ivc_trials": 2,
         "ivc_noise_samples": 2}


def stub_executor(monkeypatch, calls=None):
    import repro.campaign.runner as runner

    def fake(payload):
        if calls is not None:
            calls.append(payload["job_id"])
        return {"kind": runner.FLOW_ARTEFACT_KIND,
                "job_id": payload["job_id"],
                "circuit": payload["circuit"], "seed": payload["seed"],
                "row": {"circuit": payload["circuit"]},
                "summary": f"stub {payload['job_id']}", "elapsed_s": 0.0}

    monkeypatch.setattr(runner, "_execute_flow_job", fake)


def forbid_executor(monkeypatch):
    """Warm-path spy: any flow execution fails the test."""
    import repro.campaign.runner as runner

    def explode(payload):  # pragma: no cover - the assertion IS no call
        raise AssertionError(
            f"flow executed for {payload['job_id']} on a warm query")

    monkeypatch.setattr(runner, "_execute_flow_job", explode)


def dispatch(service, target, headers=None):
    return asyncio.run(service.dispatch(target, headers))


class TestDispatch:
    """Transport-free routing tests against the service core."""

    def test_healthz(self, tmp_path):
        service = ArtifactService(ResultCache(tmp_path))
        response = dispatch(service, "/healthz")
        assert response.status == 200
        payload = json.loads(response.body)
        assert payload["status"] == "ok"
        assert payload["checks"]["cache"] == "ok"

    def test_unknown_endpoint_404(self, tmp_path):
        service = ArtifactService(ResultCache(tmp_path))
        assert dispatch(service, "/nope").status == 404

    def test_bad_seed_400(self, tmp_path):
        service = ArtifactService(ResultCache(tmp_path))
        response = dispatch(service, "/table1/s27?seed=banana")
        assert response.status == 400
        assert "seed" in json.loads(response.body)["error"]

    def test_bad_overrides_400(self, tmp_path):
        service = ArtifactService(ResultCache(tmp_path))
        for bad in ("overrides=notjson", "overrides=%5B1%2C2%5D",
                    "overrides=%7B%22seed%22%3A5%7D",
                    "overrides=%7B%22nope%22%3A1%7D"):
            response = dispatch(service, f"/flow/s27?seed=1&{bad}")
            assert response.status == 400, bad

    def test_unknown_circuit_404(self, tmp_path):
        service = ArtifactService(ResultCache(tmp_path))
        response = dispatch(service, "/table1/never?seed=1")
        assert response.status == 404
        assert "never" in json.loads(response.body)["error"]

    def test_figure2_rejects_overrides(self, tmp_path):
        service = ArtifactService(ResultCache(tmp_path))
        response = dispatch(
            service, "/figure2?overrides=%7B%22seed2%22%3A1%7D")
        assert response.status == 400

    def test_cold_miss_without_queue_404(self, tmp_path):
        service = ArtifactService(ResultCache(tmp_path))
        response = dispatch(service, "/flow/s27?seed=1")
        assert response.status == 404
        assert json.loads(response.body)["key"]
        assert service.metrics.misses == 1

    def test_cold_miss_with_queue_202_and_dedup(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q")
        service = ArtifactService(ResultCache(tmp_path / "c"),
                                  queue=queue)
        response = dispatch(service, "/flow/s27?seed=1")
        assert response.status == 202
        payload = json.loads(response.body)
        assert payload["poll"] == f"/artifact/{payload['key']}"
        assert payload["enqueued"] is True
        assert queue.depth().pending == 1
        again = json.loads(dispatch(service, "/flow/s27?seed=1").body)
        assert again["enqueued"] is False  # deduplicated
        assert queue.depth().pending == 1
        # Poll answers 202 while the job is outstanding.
        assert dispatch(service, payload["poll"]).status == 202

    def test_poll_unknown_key_404(self, tmp_path):
        service = ArtifactService(ResultCache(tmp_path))
        assert dispatch(service, "/artifact/deadbeef").status == 404

    def test_compute_on_miss_then_hit(self, tmp_path, monkeypatch):
        calls = []
        stub_executor(monkeypatch, calls)
        service = ArtifactService(ResultCache(tmp_path),
                                  compute_on_miss=True)
        first = dispatch(service, "/flow/s27?seed=4")
        assert first.status == 200
        assert calls == ["s27/seed4"]
        assert service.metrics.computed == 1
        second = dispatch(service, "/flow/s27?seed=4")
        assert second.status == 200
        assert calls == ["s27/seed4"]  # served from cache
        assert second.body == first.body
        assert service.metrics.hits == 1

    def test_etag_and_304(self, tmp_path, monkeypatch):
        stub_executor(monkeypatch)
        service = ArtifactService(ResultCache(tmp_path),
                                  compute_on_miss=True)
        first = dispatch(service, "/table1/s27?seed=1")
        etag = first.headers["ETag"]
        assert etag == content_etag(first.body)
        cached = dispatch(service, "/table1/s27?seed=1",
                          {"if-none-match": etag})
        assert cached.status == 304
        assert cached.encode().endswith(b"\r\n\r\n")  # no body
        assert service.metrics.not_modified == 1
        fresh = dispatch(service, "/table1/s27?seed=1",
                         {"if-none-match": '"stale"'})
        assert fresh.status == 200

    def test_table1_projection(self, tmp_path, monkeypatch):
        stub_executor(monkeypatch)
        service = ArtifactService(ResultCache(tmp_path),
                                  compute_on_miss=True)
        row = json.loads(dispatch(service, "/table1/s27?seed=1").body)
        assert set(row) == {"circuit", "seed", "row", "key"}
        full = json.loads(dispatch(service, "/flow/s27?seed=1").body)
        assert full["summary"].startswith("stub")

    def test_overrides_change_the_key(self, tmp_path):
        service = ArtifactService(ResultCache(tmp_path))
        plain = json.loads(dispatch(service, "/flow/s27?seed=1").body)
        tweaked = json.loads(dispatch(
            service,
            "/flow/s27?seed=1&overrides=%7B%22ivc_trials%22%3A2%7D"
        ).body)
        assert plain["key"] != tweaked["key"]

    def test_metrics_payload(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q")
        service = ArtifactService(ResultCache(tmp_path / "c"),
                                  queue=queue)
        dispatch(service, "/flow/s27?seed=1")
        payload = json.loads(dispatch(service, "/metrics").body)
        assert payload["service"]["misses"] == 1
        assert payload["service"]["enqueued"] == 1
        assert payload["queue"]["pending"] == 1
        assert payload["cache"]["misses"] >= 1


class TestPrometheusMetrics:
    """``/metrics`` content negotiation: JSON default, text on ask."""

    def service_with_queue(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q")
        return ArtifactService(ResultCache(tmp_path / "c"),
                               queue=queue)

    def test_format_param_selects_text_exposition(self, tmp_path):
        service = self.service_with_queue(tmp_path)
        dispatch(service, "/flow/s27?seed=1")  # one enqueued miss
        response = dispatch(service, "/metrics?format=prometheus")
        assert response.status == 200
        assert response.headers["Content-Type"].startswith(
            "text/plain")
        text = response.body.decode()
        assert "# HELP repro_service_requests" in text
        assert "# TYPE repro_service_requests gauge" in text
        assert "repro_service_misses 1" in text
        assert 'repro_queue_depth{state="pending"} 1' in text
        assert 'repro_queue_depth{state="done"} 0' in text

    def test_accept_header_negotiates_text(self, tmp_path):
        service = self.service_with_queue(tmp_path)
        response = dispatch(service, "/metrics",
                            {"accept": "text/plain"})
        assert response.headers["Content-Type"].startswith(
            "text/plain")
        assert b"# TYPE" in response.body
        # An explicit format always beats the Accept header.
        json_anyway = dispatch(service, "/metrics?format=json",
                               {"accept": "text/plain"})
        assert "service" in json.loads(json_anyway.body)

    def test_unknown_format_400(self, tmp_path):
        service = self.service_with_queue(tmp_path)
        response = dispatch(service, "/metrics?format=bogus")
        assert response.status == 400
        assert "prometheus" in json.loads(response.body)["error"]

    def test_json_shape_unchanged_by_default(self, tmp_path):
        service = self.service_with_queue(tmp_path)
        payload = json.loads(dispatch(service, "/metrics").body)
        assert set(payload) == {"service", "cache", "queue"}
        assert set(payload["queue"]) == {"pending", "claimed", "done",
                                         "failed"}


class TestServiceSharesCampaignKeys:
    def test_warm_table1_query_never_executes_a_flow(
            self, tmp_path, monkeypatch):
        """The acceptance pin: a campaign warms the cache, the service
        answers the Table-I query without running anything."""
        spec = CampaignSpec(circuits=("s27",), seeds=(1,), base=SMALL,
                            name="warm")
        result = run_campaign(spec, jobs=1,
                              cache_dir=str(tmp_path / "cache"))
        forbid_executor(monkeypatch)  # any execution now fails loudly
        service = ArtifactService(ResultCache(tmp_path / "cache"),
                                  compute_on_miss=True, base=SMALL)
        response = dispatch(service, "/table1/s27?seed=1")
        assert response.status == 200
        payload = json.loads(response.body)
        assert payload["row"] == result.artefacts[0]["row"]
        assert service.metrics.hits == 1
        assert service.metrics.computed == 0


class TestLiveServer:
    """Real sockets on an ephemeral port."""

    @pytest.fixture
    def served(self, tmp_path, monkeypatch):
        stub_executor(monkeypatch)
        queue = WorkQueue.create(tmp_path / "q")
        cache = ResultCache(tmp_path / "cache")
        service = ArtifactService(cache, queue=queue)
        with ServiceServer(service) as server:
            yield service, server.port, tmp_path

    @staticmethod
    def get(port, path, headers=None):
        conn = http.client.HTTPConnection("127.0.0.1", port,
                                          timeout=10)
        try:
            conn.request("GET", path, headers=headers or {})
            response = conn.getresponse()
            return (response.status, dict(response.getheaders()),
                    response.read())
        finally:
            conn.close()

    def test_healthz_over_http(self, served):
        _, port, _ = served
        status, _, body = self.get(port, "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["checks"] == {"cache": "ok", "queue": "ok"}

    def test_post_is_405(self, served):
        _, port, _ = served
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.request("POST", "/healthz", body=b"{}")
            response = conn.getresponse()
            assert response.status == 405
            assert response.getheader("Allow") == "GET"
        finally:
            conn.close()

    def test_miss_enqueue_poll_completes_via_worker(self, served):
        """miss -> 202 -> worker drains -> poll 200 with stable ETag."""
        service, port, tmp_path = served
        status, headers, body = self.get(port, "/flow/s27?seed=5")
        assert status == 202
        payload = json.loads(body)
        assert headers["Location"] == payload["poll"]
        status, _, _ = self.get(port, payload["poll"])
        assert status == 202  # still pending
        stats = run_worker(tmp_path / "q", tmp_path / "cache",
                           poll_s=0.01)
        assert stats.executed == 1
        status, headers, body = self.get(port, payload["poll"])
        assert status == 200
        assert json.loads(body)["job_id"] == "s27/seed5"
        etag = headers["ETag"]
        status, _, _ = self.get(port, payload["poll"],
                                {"If-None-Match": etag})
        assert status == 304

    def test_concurrent_requests_single_flight(self, tmp_path,
                                               monkeypatch):
        """Parallel misses for one artefact compute it exactly once."""
        import threading

        calls = []
        import repro.campaign.runner as runner

        def slow(payload):
            calls.append(payload["job_id"])
            time.sleep(0.1)
            return {"kind": runner.FLOW_ARTEFACT_KIND,
                    "job_id": payload["job_id"],
                    "circuit": payload["circuit"],
                    "seed": payload["seed"], "row": {},
                    "summary": "slow", "elapsed_s": 0.1}

        monkeypatch.setattr(runner, "_execute_flow_job", slow)
        service = ArtifactService(ResultCache(tmp_path / "cache"),
                                  compute_on_miss=True)
        with ServiceServer(service) as server:
            results = []

            def fetch():
                results.append(
                    self.get(server.port, "/flow/s27?seed=6")[0])

            threads = [threading.Thread(target=fetch)
                       for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert results == [200, 200, 200, 200]
        assert calls == ["s27/seed6"]  # one compute, four answers

    def test_metrics_over_http(self, served):
        _, port, _ = served
        self.get(port, "/flow/s27?seed=8")
        status, _, body = self.get(port, "/metrics")
        assert status == 200
        payload = json.loads(body)
        # The snapshot counts *completed* requests (the in-flight
        # /metrics request itself is observed after it is written).
        assert payload["service"]["requests"] >= 1
        assert payload["service"]["enqueued"] == 1
        assert payload["queue"]["pending"] == 1
        assert payload["service"]["latency_max_ms"] > 0

    def test_prometheus_over_http(self, served):
        _, port, _ = served
        status, headers, body = self.get(
            port, "/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert b"# TYPE repro_service_requests gauge" in body
        assert b'repro_queue_depth{state="pending"}' in body

    def test_malformed_request_400(self, served):
        import socket

        _, port, _ = served
        with socket.create_connection(("127.0.0.1", port),
                                      timeout=10) as sock:
            sock.sendall(b"GARBAGE\r\n\r\n")
            response = sock.recv(4096)
        assert b"400" in response.split(b"\r\n", 1)[0]
