"""Work queue: lease atomicity, crash recovery, multi-worker identity."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.manifest import CampaignJob, CampaignSpec
from repro.campaign.queue import (
    WorkQueue,
    run_worker,
)
from repro.campaign.runner import run_campaign
from repro.errors import QueueError

#: Keeps every real flow in the tens-of-milliseconds range (s27 only).
SMALL = {"observability_samples": 16, "ivc_trials": 2,
         "ivc_noise_samples": 2}


def small_spec(circuits=("s27",), seeds=(1,), name="t", **base):
    return CampaignSpec(circuits=circuits, seeds=seeds,
                        base={**SMALL, **base}, name=name)


def stub_executor(monkeypatch, calls=None, delay_s=0.0):
    """Replace the flow executor with a fast fake artefact builder."""
    import repro.campaign.runner as runner

    def fake(payload):
        if calls is not None:
            calls.append(payload["job_id"])
        if delay_s:
            time.sleep(delay_s)
        return {"kind": runner.FLOW_ARTEFACT_KIND,
                "job_id": payload["job_id"],
                "circuit": payload["circuit"], "seed": payload["seed"],
                "row": {"circuit": payload["circuit"]},
                "summary": f"stub {payload['job_id']}", "elapsed_s": 0.0}

    monkeypatch.setattr(runner, "_execute_flow_job", fake)


class TestEnqueue:
    def test_layout_and_metadata(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        n = queue.enqueue(small_spec(seeds=(1, 2)))
        assert n == 2
        for state in ("pending", "claimed", "done", "failed"):
            assert (tmp_path / "q" / state).is_dir()
        meta = json.loads((tmp_path / "q" / "queue.json").read_text())
        assert meta["spec_digest"] == small_spec(seeds=(1, 2)).digest()
        assert queue.depth().pending == 2

    def test_reenqueue_is_idempotent_topup(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        assert queue.enqueue(small_spec(seeds=(1, 2))) == 2
        assert queue.enqueue(small_spec(seeds=(1, 2))) == 0
        assert queue.depth().pending == 2

    def test_different_spec_rejected(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec(seeds=(1,)))
        with pytest.raises(QueueError, match="different"):
            queue.enqueue(small_spec(seeds=(3,)))

    def test_missing_queue_fails_fast(self, tmp_path):
        with pytest.raises(QueueError, match="work queue"):
            WorkQueue(tmp_path / "nothere").kind()
        with pytest.raises(QueueError, match="work queue"):
            run_worker(tmp_path / "nothere", tmp_path / "cache")

    def test_bad_lease_ttl_rejected(self, tmp_path):
        with pytest.raises(QueueError, match="lease_ttl_s"):
            WorkQueue(tmp_path / "q", lease_ttl_s=0.0)
        with pytest.raises(QueueError, match="lease_ttl_s"):
            WorkQueue(tmp_path / "q").enqueue(small_spec(),
                                              lease_ttl_s=-1.0)

    def test_adhoc_submit_deduplicates(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q")
        job = CampaignJob(job_id="s27/seed1", circuit="s27", seed=1,
                          circuit_seed=1, config_kwargs=dict(SMALL))
        name, enqueued = queue.submit(job)
        assert enqueued is True
        name2, enqueued2 = queue.submit(job)
        assert (name2, enqueued2) == (name, False)
        assert queue.depth().pending == 1


class TestLeases:
    def test_claim_is_exclusive(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec(seeds=(1,)))
        claim = queue.claim("w1")
        assert claim is not None and claim.job.circuit == "s27"
        assert queue.claim("w2") is None
        assert queue.depth().claimed == 1

    def test_racing_claims_each_job_claimed_once(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec(seeds=tuple(range(1, 9))))
        claimed = []
        lock = threading.Lock()

        def grab():
            local = WorkQueue(tmp_path / "q")
            while True:
                claim = local.claim("racer")
                if claim is None:
                    return
                with lock:
                    claimed.append(claim.name)

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(claimed) == sorted(set(claimed))
        assert len(claimed) == 8

    def test_heartbeat_reports_revoked_lease(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec())
        claim = queue.claim("w1")
        assert queue.heartbeat(claim) is True
        claim.path.unlink()
        assert queue.heartbeat(claim) is False

    def test_fresh_claim_not_scavenged(self, tmp_path):
        """The claim rename refreshes the (stale) pending mtime."""
        queue = WorkQueue(tmp_path / "q", lease_ttl_s=30.0)
        queue.enqueue(small_spec(), lease_ttl_s=30.0)
        pending = next((tmp_path / "q" / "pending").glob("*.json"))
        old = time.time() - 3600.0
        os.utime(pending, (old, old))
        assert queue.claim("w1") is not None
        assert queue.requeue_expired() == 0

    def test_expired_lease_requeued(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl_s=0.05)
        queue.enqueue(small_spec(), lease_ttl_s=0.05)
        claim = queue.claim("w1")
        assert claim is not None
        assert queue.requeue_expired() == 0  # lease still fresh
        time.sleep(0.08)
        assert queue.requeue_expired() == 1  # abandoned -> pending
        assert queue.depth().pending == 1
        reclaim = queue.claim("w2")
        assert reclaim is not None and reclaim.name == claim.name

    def test_corrupt_pending_entry_parked_in_failed(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec())
        pending = next((tmp_path / "q" / "pending").glob("*.json"))
        pending.write_text("not json")
        assert queue.claim("w1") is None
        assert queue.depth().failed == 1

    def test_requeued_duplicate_of_done_job_discarded(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec())
        claim = queue.claim("w1")
        # Simulate the narrow race: the job got re-queued while its
        # original owner completed it anyway.
        (tmp_path / "q" / "done" / claim.name).write_text(
            json.dumps({"job_id": claim.job.job_id}))
        (tmp_path / "q" / "pending" / claim.name).write_text(
            claim.path.read_text())
        assert queue.claim("w2") is None  # discarded, not re-run
        assert queue.depth().pending == 0


class TestWorker:
    def test_drains_queue_and_fills_cache(self, tmp_path, monkeypatch):
        calls = []
        stub_executor(monkeypatch, calls)
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec(seeds=(1, 2, 3)))
        stats = run_worker(tmp_path / "q", tmp_path / "cache",
                           worker_id="w1", poll_s=0.01)
        assert stats.executed == 3 and stats.failed == 0
        assert sorted(calls) == ["s27/seed1", "s27/seed2", "s27/seed3"]
        assert queue.depth().done == 3
        assert len(ResultCache(tmp_path / "cache").entries()) == 3

    def test_second_worker_hits_cache(self, tmp_path, monkeypatch):
        stub_executor(monkeypatch)
        WorkQueue(tmp_path / "q1").enqueue(small_spec(seeds=(1,)))
        run_worker(tmp_path / "q1", tmp_path / "cache", poll_s=0.01)
        # Same spec into a fresh queue: the artefact is already cached.
        WorkQueue(tmp_path / "q2").enqueue(small_spec(seeds=(1,)))
        stats = run_worker(tmp_path / "q2", tmp_path / "cache",
                           poll_s=0.01)
        assert stats.executed == 0 and stats.cached == 1

    def test_failing_job_parked_not_retried(self, tmp_path,
                                            monkeypatch):
        import repro.campaign.runner as runner

        def boom(payload):
            raise RuntimeError("exploded")

        monkeypatch.setattr(runner, "_execute_flow_job", boom)
        WorkQueue(tmp_path / "q").enqueue(small_spec())
        stats = run_worker(tmp_path / "q", tmp_path / "cache",
                           poll_s=0.01)
        assert stats.failed == 1
        queue = WorkQueue(tmp_path / "q")
        assert queue.depth().failed == 1
        records = queue.records()
        assert records[0].status == "failed"
        assert "exploded" in records[0].error

    def test_max_jobs_bounds_the_drain(self, tmp_path, monkeypatch):
        stub_executor(monkeypatch)
        WorkQueue(tmp_path / "q").enqueue(small_spec(seeds=(1, 2, 3)))
        stats = run_worker(tmp_path / "q", tmp_path / "cache",
                           poll_s=0.01, max_jobs=2)
        assert stats.executed == 2
        assert WorkQueue(tmp_path / "q").depth().pending == 1


class TestCrashRecovery:
    def test_sigkilled_workers_job_is_releases_and_completed(
            self, tmp_path, monkeypatch):
        """A SIGKILLed worker's lease expires; another worker finishes
        the job."""
        queue_dir = tmp_path / "q"
        WorkQueue(queue_dir).enqueue(small_spec(), lease_ttl_s=0.3)
        # A real worker process that claims the job, then hangs
        # without heartbeating (as if wedged before being killed).
        script = (
            "import sys, time\n"
            "from repro.campaign.queue import WorkQueue\n"
            f"claim = WorkQueue({str(queue_dir)!r}).claim('victim')\n"
            "assert claim is not None\n"
            "print('claimed', flush=True)\n"
            "time.sleep(600)\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        victim = subprocess.Popen(
            [sys.executable, "-c", script], env=env,
            stdout=subprocess.PIPE, text=True)
        try:
            assert victim.stdout.readline().strip() == "claimed"
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10)
            queue = WorkQueue(queue_dir)
            assert queue.depth().claimed == 1
            time.sleep(0.35)  # let the dead worker's lease expire
            stub_executor(monkeypatch)
            stats = run_worker(queue_dir, tmp_path / "cache",
                               worker_id="rescuer", poll_s=0.01)
            assert stats.requeued == 1
            assert stats.executed == 1
            assert queue.depth().done == 1
            assert queue.depth().outstanding == 0
        finally:
            if victim.poll() is None:  # pragma: no cover - cleanup
                victim.kill()

    def test_crash_between_done_write_and_unlink_heals(self, tmp_path,
                                                       monkeypatch):
        stub_executor(monkeypatch)
        queue = WorkQueue(tmp_path / "q", lease_ttl_s=0.05)
        queue.enqueue(small_spec(), lease_ttl_s=0.05)
        claim = queue.claim("w1")
        # Crash simulation: done marker written, claimed file left.
        (tmp_path / "q" / "done" / claim.name).write_text(
            json.dumps({"job_id": claim.job.job_id, "circuit": "s27",
                        "seed": 1, "config_hash": "x",
                        "status": "done"}))
        time.sleep(0.08)
        assert queue.requeue_expired() == 0  # cleaned, not re-queued
        assert queue.depth().claimed == 0
        assert queue.depth().done == 1


class TestBitIdentity:
    """Two concurrent workers == one serial ``--jobs 1`` campaign."""

    @pytest.fixture(scope="class")
    def drained(self, tmp_path_factory):
        spec = small_spec(seeds=(1, 2, 3), name="ident")
        root = tmp_path_factory.mktemp("ident")
        serial_cache = str(root / "serial-cache")
        serial_manifest = str(root / "serial-manifest.json")
        result = run_campaign(spec, jobs=1, cache_dir=serial_cache,
                              manifest_path=serial_manifest)
        queue_dir = root / "queue"
        WorkQueue(queue_dir).enqueue(spec)
        worker_cache = str(root / "worker-cache")
        threads = [
            threading.Thread(
                target=run_worker, args=(queue_dir, worker_cache),
                kwargs={"worker_id": f"w{i}", "poll_s": 0.01})
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        queue_manifest = str(root / "queue-manifest.json")
        WorkQueue(queue_dir).write_manifest(queue_manifest)
        return (result, serial_cache, serial_manifest,
                queue_dir, worker_cache, queue_manifest)

    def test_queue_fully_drained(self, drained):
        depth = WorkQueue(drained[3]).depth()
        assert depth.done == 3
        assert depth.outstanding == 0 and depth.failed == 0

    def test_cache_keys_identical(self, drained):
        _, serial_cache, _, _, worker_cache, _ = drained
        serial = ResultCache(serial_cache).entries()
        workers = ResultCache(worker_cache).entries()
        assert serial == workers and len(serial) == 3

    def test_artefacts_bit_identical_modulo_timing(self, drained):
        _, serial_cache, _, _, worker_cache, _ = drained
        a, b = ResultCache(serial_cache), ResultCache(worker_cache)
        for key in a.entries():
            art_a, art_b = a.get(key), b.get(key)
            art_a.pop("elapsed_s")
            art_b.pop("elapsed_s")
            assert art_a == art_b

    def test_manifest_identical_modulo_timing(self, drained):
        _, _, serial_manifest, _, _, queue_manifest = drained
        ma = json.loads(Path(serial_manifest).read_text())
        mb = json.loads(Path(queue_manifest).read_text())
        assert ma["spec_digest"] == mb["spec_digest"]
        assert len(ma["jobs"]) == len(mb["jobs"]) == 3
        for ja, jb in zip(ma["jobs"], mb["jobs"]):
            ja.pop("wall_s")
            jb.pop("wall_s")
            # phases are wall-clock measurements, timing like wall_s
            assert set(ja.pop("phases")) == set(jb.pop("phases"))
            assert ja == jb

    def test_workers_recorded_in_cache_meta(self, drained):
        _, _, _, _, worker_cache, _ = drained
        cache = ResultCache(worker_cache)
        workers = set()
        for key in cache.entries():
            entry = json.loads(cache.path(key).read_text())
            workers.add(entry["meta"]["worker"])
        assert workers <= {"w0", "w1"} and workers


class TestManifestAssembly:
    def test_records_survive_round_trip(self, tmp_path, monkeypatch):
        stub_executor(monkeypatch)
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec(seeds=(1, 2)))
        run_worker(tmp_path / "q", tmp_path / "cache", poll_s=0.01)
        records = queue.records()
        assert [r.status for r in records] == ["done", "done"]
        assert all(r.cache_key for r in records)
        manifest = queue.write_manifest(tmp_path / "m.json")
        assert sorted(manifest.records) == [r.job_id for r in records]

    def test_adhoc_manifest_digest(self, tmp_path, monkeypatch):
        stub_executor(monkeypatch)
        queue = WorkQueue.create(tmp_path / "q")
        job = CampaignJob(job_id="s27/seed1", circuit="s27", seed=1,
                          circuit_seed=1, config_kwargs=dict(SMALL))
        queue.submit(job)
        run_worker(tmp_path / "q", tmp_path / "cache", poll_s=0.01)
        payload = json.loads(
            queue.write_manifest(tmp_path / "m.json").path.read_text())
        assert payload["spec_digest"] == "adhoc"
        assert payload["jobs"][0]["status"] == "done"


class TestRealFlowThroughQueue:
    def test_real_flow_artefact_lands_in_cache(self, tmp_path):
        """End to end with the genuine s27 flow (no stubs)."""
        spec = small_spec()
        WorkQueue(tmp_path / "q").enqueue(spec)
        stats = run_worker(tmp_path / "q", tmp_path / "cache",
                           poll_s=0.01)
        assert stats.executed == 1
        cache = ResultCache(tmp_path / "cache")
        [key] = cache.entries()
        artefact = cache.get(key)
        assert artefact["circuit"] == "s27"
        assert artefact["row"]["circuit"] == "s27"
        # And the campaign runner sees it as a hit.
        result = run_campaign(spec, jobs=1,
                              cache_dir=str(tmp_path / "cache"))
        assert result.n_cached == 1 and result.n_executed == 0
