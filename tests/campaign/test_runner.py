"""Campaign runner: ordering, cache correctness, resume, manifests."""

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.manifest import CampaignSpec, Manifest
from repro.campaign.runner import (
    FLOW_ARTEFACT_KIND,
    row_from_artefact,
    run_campaign,
    run_flow_jobs,
)

#: Keeps every flow in the tens-of-milliseconds range (s27 only).
SMALL = {"observability_samples": 16, "ivc_trials": 2,
         "ivc_noise_samples": 2}


def small_spec(circuits=("s27",), seeds=(1,), **base):
    return CampaignSpec(circuits=circuits, seeds=seeds,
                        base={**SMALL, **base}, name="t")


@pytest.fixture(scope="module")
def cold(tmp_path_factory):
    """One cold cached campaign shared by the read-only tests."""
    cache_dir = str(tmp_path_factory.mktemp("cache"))
    result = run_campaign(small_spec(), jobs=1, cache_dir=cache_dir)
    return result, cache_dir


class TestColdRun:
    def test_statuses(self, cold):
        result, _ = cold
        assert [r.status for r in result.records] == ["done"]
        assert result.n_executed == 1
        assert result.n_cached == 0

    def test_artefact_shape(self, cold):
        result, _ = cold
        artefact = result.artefacts[0]
        assert artefact["kind"] == FLOW_ARTEFACT_KIND
        assert artefact["circuit"] == "s27"
        assert artefact["provenance"] == "embedded"
        assert set(artefact["reports"]) == {
            "traditional", "input_control", "proposed"}
        assert artefact["detail"]["n_scan_cells"] == 3
        assert artefact["elapsed_s"] > 0

    def test_row_reconstruction(self, cold):
        result, _ = cold
        row = row_from_artefact(result.artefacts[0])
        assert row.circuit == "s27"
        assert row.prop_static < row.trad_static

    def test_timing_recorded(self, cold):
        result, _ = cold
        assert result.wall_s > 0
        assert result.worker_s > 0

    def test_render_mentions_provenance_and_totals(self, cold):
        result, _ = cold
        text = result.render()
        assert "1 executed, 0 from cache" in text
        assert "s27" in text


class TestWarmRun:
    def test_warm_run_executes_nothing(self, cold, monkeypatch):
        result, cache_dir = cold
        # any flow execution would blow up: the warm run must be
        # answered entirely from the cache
        monkeypatch.setattr(
            "repro.campaign.runner._execute_flow_job",
            lambda payload: pytest.fail("flow executed on a warm run"))
        warm = run_campaign(small_spec(), jobs=1, cache_dir=cache_dir)
        assert warm.n_executed == 0
        assert warm.n_cached == 1
        assert warm.rows() == result.rows()
        assert warm.artefacts == result.artefacts

    def test_config_change_misses(self, cold):
        _, cache_dir = cold
        changed = run_campaign(small_spec(ivc_trials=3), jobs=1,
                               cache_dir=cache_dir)
        assert changed.n_executed == 1

    def test_seed_change_misses(self, cold):
        _, cache_dir = cold
        changed = run_campaign(small_spec(seeds=(2,)), jobs=1,
                               cache_dir=cache_dir)
        assert changed.n_executed == 1

    def test_netlist_change_misses(self, cold, monkeypatch):
        """A structurally different netlist under the same name and
        config must re-execute (fingerprint key ingredient)."""
        _, cache_dir = cold
        from repro.netlist import builders

        def tweaked_load(name, seed=1, search_dir=None):
            circuit = builders.s27()
            from repro.netlist.gates import GateType
            line = next(g.output for g in circuit.combinational_gates()
                        if g.gtype is GateType.AND)
            gate = circuit.gate(line)
            circuit.replace_gate(line, GateType.OR, gate.inputs)
            return circuit

        monkeypatch.setattr("repro.campaign.runner.load_circuit",
                            tweaked_load)
        changed = run_campaign(small_spec(), jobs=1,
                               cache_dir=cache_dir)
        assert changed.n_executed == 1


class TestDeterministicOrdering:
    def test_parallel_rows_match_serial(self, tmp_path):
        spec = small_spec(seeds=(1, 2))  # expands to two jobs
        serial = run_campaign(spec, jobs=1)
        parallel = run_campaign(spec, jobs=2,
                                cache_dir=str(tmp_path / "c"))
        assert [j.job_id for j in serial.jobs] == \
            [j.job_id for j in parallel.jobs]
        assert serial.rows() == parallel.rows()
        assert [a["summary"] for a in serial.artefacts] == \
            [a["summary"] for a in parallel.artefacts]


class TestManifestIntegration:
    def test_manifest_journal_and_resume(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        manifest_path = tmp_path / "m.json"
        spec = small_spec()
        run_campaign(spec, jobs=1, cache_dir=cache_dir,
                     manifest_path=str(manifest_path))
        journal = Manifest.open(manifest_path, spec.digest())
        assert journal.records["s27"].source == "run"
        assert journal.records["s27"].cache_key in \
            ResultCache(cache_dir)

        run_campaign(spec, jobs=1, cache_dir=cache_dir,
                     manifest_path=str(manifest_path))
        journal = Manifest.open(manifest_path, spec.digest())
        assert journal.records["s27"].source == "cache"
        assert journal.stats()["cached"] == 1

    def test_failed_job_recorded_and_raised(self, tmp_path,
                                            monkeypatch):
        manifest_path = tmp_path / "m.json"
        spec = small_spec()

        def explode(payload):
            raise RuntimeError("kaboom")

        monkeypatch.setattr("repro.campaign.runner._execute_flow_job",
                            explode)
        with pytest.raises(RuntimeError, match="kaboom"):
            run_campaign(spec, jobs=1,
                         manifest_path=str(manifest_path))
        journal = Manifest.open(manifest_path, spec.digest())
        assert journal.records["s27"].status == "failed"
        assert "kaboom" in journal.records["s27"].error


class TestRunFlowJobs:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_flow_jobs([], jobs=0)

    def test_empty_job_list(self):
        artefacts, records, wall, worker = run_flow_jobs([], jobs=1)
        assert artefacts == [] and records == []
        assert worker == 0.0

    def test_external_pool_not_closed(self, tmp_path):
        from repro.campaign.pool import WorkerPool
        spec = small_spec(seeds=(1, 2))  # expands to two jobs
        with WorkerPool(processes=2) as pool:
            result = run_campaign(spec, jobs=2, pool=pool)
            assert pool.started  # runner must not close a borrowed pool
        assert result.n_executed == 2


class TestFigure2Kind:
    def test_artefact_matches_direct_run(self, tmp_path):
        from repro.campaign.runner import figure2_from_artefact
        from repro.experiments.figure2 import run_figure2

        spec = CampaignSpec(circuits=("figure2",), kind="figure2",
                            name="f2")
        result = run_campaign(spec, cache_dir=str(tmp_path / "cache"))
        assert result.n_executed == 1
        rebuilt = figure2_from_artefact(result.artefacts[0])
        direct = run_figure2()
        assert rebuilt.nand2 == direct.nand2
        assert rebuilt.paper_nand2 == direct.paper_nand2
        assert rebuilt.extra_cells == direct.extra_cells
        assert rebuilt.max_relative_error() == \
            direct.max_relative_error()
        assert rebuilt.render() == direct.render()

    def test_warm_rerun_is_fully_cached(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        spec = CampaignSpec(circuits=("figure2",), kind="figure2")
        cold = run_campaign(spec, cache_dir=cache_dir)
        warm = run_campaign(spec, cache_dir=cache_dir)
        assert cold.n_executed == 1
        assert warm.n_executed == 0 and warm.n_cached == 1
        assert warm.artefacts[0]["render"] == \
            cold.artefacts[0]["render"]

    def test_figure2_and_flow_caches_do_not_collide(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_campaign(CampaignSpec(circuits=("figure2",), kind="figure2"),
                     cache_dir=cache_dir)
        flow = run_campaign(small_spec(), cache_dir=cache_dir)
        assert flow.n_executed == 1  # no cross-kind false hit

    def test_unknown_kind_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign job"):
            run_flow_jobs([], kind="nope/v0")

    def test_figure2_cache_key_ignores_seed_and_config(self, tmp_path):
        """run_figure2() depends on the library/code only: campaigns
        differing in seed or flow-config base must share the artefact."""
        cache_dir = str(tmp_path / "cache")
        cold = run_campaign(
            CampaignSpec(circuits=("figure2",), kind="figure2"),
            cache_dir=cache_dir)
        warm = run_campaign(
            CampaignSpec(circuits=("figure2",), kind="figure2",
                         seeds=(9,), base={"ivc_trials": 3}),
            cache_dir=cache_dir)
        assert cold.n_executed == 1
        assert warm.n_executed == 0 and warm.n_cached == 1

    def test_figure2_spec_base_is_still_validated(self):
        """Typo'd base fields must error like any other campaign, even
        though figure2 jobs never use the flow config."""
        from repro.errors import ConfigError
        spec = CampaignSpec(circuits=("figure2",), kind="figure2",
                            base={"ivc_trails": 3})
        with pytest.raises(ConfigError, match="ivc_trails"):
            run_campaign(spec)
