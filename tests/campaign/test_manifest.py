"""Campaign spec expansion and manifest persistence."""

import json

import pytest

from repro.campaign.manifest import (
    CampaignSpec,
    JobRecord,
    Manifest,
    load_spec,
)
from repro.core.config import FlowConfig
from repro.errors import ConfigError


class TestSpecExpansion:
    def test_single_point(self):
        jobs = CampaignSpec(circuits=("s27",)).expand()
        assert len(jobs) == 1
        assert jobs[0].job_id == "s27"
        assert jobs[0].seed == 1
        assert jobs[0].circuit_seed == 1

    def test_grid_order_is_circuit_major(self):
        spec = CampaignSpec(circuits=("a1", "b2"), seeds=(1, 2),
                            overrides=({}, {"ivc_trials": 2}))
        ids = [j.job_id for j in spec.expand()]
        assert ids == [
            "a1/seed1/cfg0", "a1/seed1/cfg1",
            "a1/seed2/cfg0", "a1/seed2/cfg1",
            "b2/seed1/cfg0", "b2/seed1/cfg1",
            "b2/seed2/cfg0", "b2/seed2/cfg1",
        ]

    def test_overrides_patch_base(self):
        spec = CampaignSpec(circuits=("s27",),
                            base={"ivc_trials": 4},
                            overrides=({"ivc_trials": 8},))
        config = spec.expand()[0].flow_config()
        assert config.ivc_trials == 8
        assert config.seed == 1  # from the seeds axis

    def test_seed_in_base_or_overrides_rejected(self):
        with pytest.raises(ConfigError, match="seeds"):
            CampaignSpec(circuits=("s27",), base={"seed": 9})
        with pytest.raises(ConfigError, match="seeds"):
            CampaignSpec(circuits=("s27",),
                         overrides=({}, {"seed": 2}))

    def test_unknown_config_field_rejected_cleanly(self):
        from repro.campaign.manifest import CampaignJob
        job = CampaignJob(job_id="j", circuit="s27", seed=1,
                          circuit_seed=1,
                          config_kwargs={"ivc_trails": 2})  # typo
        with pytest.raises(ConfigError, match="ivc_trails"):
            job.flow_config()

    def test_seed_zero_loads_circuit_with_seed_one(self):
        job = CampaignSpec(circuits=("s27",), seeds=(0,)).expand()[0]
        assert job.seed == 0
        assert job.circuit_seed == 1

    def test_atpg_override_round_trips(self):
        spec = CampaignSpec(
            circuits=("s27",),
            base={"atpg": {"seed": 3, "random_batch": 8,
                           "max_random_batches": 2, "min_batch_yield": 1,
                           "max_backtracks": 10, "podem_batch": 4,
                           "compaction": True}})
        config = spec.expand()[0].flow_config()
        assert config.atpg.random_batch == 8

    @pytest.mark.parametrize("kwargs", [
        {"circuits": ()},
        {"circuits": ("s27",), "seeds": ()},
        {"circuits": ("s27",), "overrides": ()},
    ])
    def test_empty_axes_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            CampaignSpec(**kwargs)

    def test_digest_is_content_based(self):
        a = CampaignSpec(circuits=("s27",), seeds=(1,))
        b = CampaignSpec(circuits=("s27",), seeds=(1,))
        c = CampaignSpec(circuits=("s27",), seeds=(2,))
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()


class TestSpecFiles:
    def test_load_round_trip(self, tmp_path):
        spec = CampaignSpec(circuits=("s27", "s344"), seeds=(1, 2),
                            base={"ivc_trials": 2}, name="mini")
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert load_spec(path) == spec

    def test_missing_circuits_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{\"seeds\": [1]}")
        with pytest.raises(ConfigError, match="circuits"):
            load_spec(path)

    def test_unknown_field_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{\"circuits\": [\"s27\"], \"typo\": 1}")
        with pytest.raises(ConfigError, match="typo"):
            load_spec(path)

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError, match="JSON"):
            load_spec(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            load_spec(tmp_path / "absent.json")


class TestManifest:
    def _record(self, job_id="s27", status="done", source="run"):
        return JobRecord(job_id=job_id, circuit="s27", seed=1,
                         config_hash=FlowConfig(seed=1).config_hash(),
                         cache_key="k", status=status, source=source,
                         wall_s=0.5)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = Manifest.open(path, "digest-a")
        manifest.record(self._record())
        reloaded = Manifest.open(path, "digest-a")
        assert set(reloaded.records) == {"s27"}
        assert reloaded.records["s27"].status == "done"

    def test_spec_mismatch_discards_records(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = Manifest.open(path, "digest-a")
        manifest.record(self._record())
        fresh = Manifest.open(path, "digest-b")
        assert fresh.records == {}

    def test_unreadable_manifest_starts_fresh(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{ not json")
        manifest = Manifest.open(path, "digest-a")
        assert manifest.records == {}

    def test_stats(self, tmp_path):
        manifest = Manifest.open(tmp_path / "m.json", "d")
        manifest.record(self._record("a", "done", "run"), save=False)
        manifest.record(self._record("b", "done", "cache"), save=False)
        manifest.record(self._record("c", "failed", None), save=False)
        stats = manifest.stats()
        assert stats["done"] == 2
        assert stats["executed"] == 1
        assert stats["cached"] == 1
        assert stats["failed"] == 1


class TestDuplicateGridPoints:
    def test_duplicate_circuits_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            CampaignSpec(circuits=("s27", "s27"))

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            CampaignSpec(circuits=("s27",), seeds=(1, 1))

    def test_duplicate_overrides_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            CampaignSpec(circuits=("s27",),
                         overrides=({"ivc_trials": 2},
                                    {"ivc_trials": 2}))

    def test_distinct_overrides_accepted(self):
        spec = CampaignSpec(circuits=("s27",),
                            overrides=({}, {"ivc_trials": 2}))
        assert len(spec.expand()) == 2


class TestSpecKinds:
    def test_default_kind_is_flow(self):
        assert CampaignSpec(circuits=("s27",)).kind == "flow"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown campaign kind"):
            CampaignSpec(circuits=("s27",), kind="table9")

    def test_kind_round_trips(self):
        spec = CampaignSpec(circuits=("figure2",), kind="figure2")
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.kind == "figure2"

    def test_kind_changes_digest(self):
        flow = CampaignSpec(circuits=("figure2",))
        fig2 = CampaignSpec(circuits=("figure2",), kind="figure2")
        assert flow.digest() != fig2.digest()

    def test_figure2_spec_defaults_circuits(self):
        spec = CampaignSpec.from_dict({"kind": "figure2"})
        assert spec.circuits == ("figure2",)
        assert spec.expand()[0].job_id == "figure2"

    def test_flow_spec_still_requires_circuits(self):
        with pytest.raises(ConfigError, match="missing 'circuits'"):
            CampaignSpec.from_dict({"kind": "flow"})

    def test_figure2_spec_file(self, tmp_path):
        path = tmp_path / "fig2.json"
        path.write_text(json.dumps({"kind": "figure2", "name": "f2"}))
        spec = load_spec(path)
        assert spec.kind == "figure2"
        assert spec.name == "f2"


class TestFigure2Axes:
    """figure2 campaigns have no circuit/seed/override axes: a grid
    would run the identical computation once per point."""

    @pytest.mark.parametrize("kwargs", [
        {"circuits": ("a", "b")},
        {"circuits": ("figure2",), "seeds": (1, 2)},
        {"circuits": ("figure2",),
         "overrides": ({}, {"ivc_trials": 2})},
    ])
    def test_grids_rejected(self, kwargs):
        with pytest.raises(ConfigError, match="no circuit/seed"):
            CampaignSpec(kind="figure2", **kwargs)

    def test_single_point_accepted(self):
        spec = CampaignSpec(circuits=("figure2",), kind="figure2",
                            seeds=(5,))
        assert len(spec.expand()) == 1

    def test_real_circuit_name_rejected(self):
        with pytest.raises(ConfigError, match="take no circuit"):
            CampaignSpec(circuits=("s27",), kind="figure2")
