"""WorkerPool mechanics: ordering, reuse, errors, shared pool."""

import os

import pytest

from repro.campaign.pool import (
    WorkerPool,
    WorkerPoolError,
    active_shared_pool,
    default_pool_size,
    ensure_shared_pool,
    shutdown_shared_pool,
)


def _square(x):
    return x * x


def _identify(x):
    return (x, os.getpid())


def _boom(x):
    raise ValueError(f"boom {x}")


def _maybe_boom(x):
    if x == 2:
        raise ValueError("boom 2")
    return x


@pytest.fixture
def pool():
    with WorkerPool(processes=2) as p:
        yield p


class TestLifecycle:
    def test_lazy_start(self):
        p = WorkerPool(processes=1)
        assert not p.started
        p.start()
        assert p.started
        p.close()
        assert not p.started

    def test_start_idempotent(self, pool):
        assert pool.start() is pool

    def test_close_idempotent(self):
        p = WorkerPool(processes=1)
        p.close()  # never started: no-op
        p.start()
        p.close()
        p.close()

    def test_rejects_zero_processes(self):
        with pytest.raises(WorkerPoolError):
            WorkerPool(processes=0)

    def test_default_size_positive(self):
        assert default_pool_size() >= 1


class TestMap:
    def test_ordered_results(self, pool):
        assert pool.map(_square, range(10)) == [i * i for i in range(10)]

    def test_empty_iterable(self, pool):
        assert pool.map(_square, []) == []

    def test_runs_in_worker_processes(self, pool):
        pids = {pid for _, pid in pool.map(_identify, range(8))}
        assert os.getpid() not in pids

    def test_workers_persist_across_maps(self, pool):
        workers_before = {w.pid for w in pool._workers}
        first = {pid for _, pid in pool.map(_identify, range(4))}
        second = {pid for _, pid in pool.map(_identify, range(4))}
        # the same live worker processes serve both maps — every task
        # ran on an original worker and none were respawned
        assert (first | second) <= workers_before
        assert {w.pid for w in pool._workers} == workers_before

    def test_on_result_callback_sees_every_result(self, pool):
        seen = {}
        pool.map(_square, [3, 4], on_result=seen.__setitem__)
        assert seen == {0: 9, 1: 16}

    def test_task_error_raises_with_remote_traceback(self, pool):
        with pytest.raises(WorkerPoolError, match="boom"):
            pool.map(_boom, [1])

    def test_pool_survives_a_failed_map(self, pool):
        with pytest.raises(WorkerPoolError):
            pool.map(_maybe_boom, [0, 1, 2, 3])
        # all tasks were drained: the pool is clean and reusable
        assert pool.map(_square, [5]) == [25]


class TestSharedPool:
    def test_shared_pool_roundtrip(self):
        shutdown_shared_pool()
        assert active_shared_pool() is None
        try:
            p = ensure_shared_pool(processes=1)
            assert p.started
            assert active_shared_pool() is p
            assert ensure_shared_pool() is p  # reused, not resized
        finally:
            shutdown_shared_pool()
        assert active_shared_pool() is None


def _unpicklable_result(x):
    return lambda: x  # lambdas cannot pickle


class TestPicklingSafety:
    def test_unpicklable_task_raises_instead_of_hanging(self, pool):
        with pytest.raises(Exception):
            pool.map(lambda x: x, [1])  # lambda task: rejected up front
        assert pool.map(_square, [3]) == [9]  # pool still clean

    def test_unpicklable_result_relayed_as_error(self, pool):
        with pytest.raises(WorkerPoolError):
            pool.map(_unpicklable_result, [1])
        assert pool.map(_square, [3]) == [9]


def _shared_pool_invisible_in_worker(_):
    # runs inside a pool worker: the inherited parent pool must not be
    # offered for dispatch here
    from repro.campaign.pool import active_shared_pool
    return active_shared_pool() is None


def _callback_boom(idx, result):
    raise OSError("cache disk full")


class TestForkOwnership:
    def test_inherited_shared_pool_invisible_in_workers(self):
        shutdown_shared_pool()
        try:
            shared = ensure_shared_pool(processes=2)
            assert shared.owned
            assert all(shared.map(_shared_pool_invisible_in_worker,
                                  range(4)))
        finally:
            shutdown_shared_pool()


class TestCallbackErrors:
    def test_callback_error_drains_before_raising(self, pool):
        with pytest.raises(OSError, match="disk full"):
            pool.map(_square, range(6), on_result=_callback_boom)
        # every outstanding result was drained: the next map on the
        # same pool sees only its own results
        assert pool.map(_square, [7]) == [49]


class TestStrayPoolCleanup:
    def test_dropped_pool_stays_in_registry_until_closed(self):
        import gc

        from repro.campaign import pool as pool_mod

        p = WorkerPool(processes=1)
        p.start()
        workers = list(p._workers)
        ref = p
        del p
        gc.collect()
        # strong registry: the stray pool must survive GC so the
        # atexit hook can still join its non-daemon workers (a weak
        # registry would hang the interpreter at exit)
        assert ref in pool_mod._LIVE_POOLS
        pool_mod._close_live_pools()
        assert ref not in pool_mod._LIVE_POOLS
        assert all(not w.is_alive() for w in workers)
