"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_circuits(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "s27" in out
        assert "embedded" in out
        assert "s9234" in out


class TestFigure2:
    def test_prints_table(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "NAND2 leakage" in out
        assert "408" in out


class TestRun:
    def test_run_s27(self, capsys):
        assert main(["--seed", "1", "run", "s27"]) == 0
        out = capsys.readouterr().out
        assert "improvement vs traditional" in out

    def test_run_flags(self, capsys):
        code = main(["--seed", "1", "run", "s27", "--no-reorder",
                     "--no-directive"])
        assert code == 0


class TestTable1:
    def test_text_format(self, capsys):
        assert main(["--seed", "1", "table1", "s27", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Circuit" in out
        assert "s27" in out

    def test_csv_format(self, capsys):
        assert main(["--seed", "1", "table1", "s27", "--quiet",
                     "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("circuit,")

    def test_markdown_format(self, capsys):
        assert main(["--seed", "1", "table1", "s27", "--quiet",
                     "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| Circuit |")


class TestLibrary:
    def test_prints_cells(self, capsys):
        assert main(["library"]) == 0
        out = capsys.readouterr().out
        assert "NAND2" in out and "leak nA" in out


class TestAblation:
    def test_observability_ablation_on_s27(self, capsys):
        assert main(["--seed", "1", "ablation", "observability",
                     "s27"]) == 0
        out = capsys.readouterr().out
        assert "A1" in out
        assert "directed" in out and "undirected" in out

    def test_ivc_ablation_on_s27(self, capsys):
        assert main(["--seed", "1", "ablation", "ivc", "s27"]) == 0
        out = capsys.readouterr().out
        assert "A4" in out
        assert "trials=" in out


class TestExperimentsMd:
    def test_table1_writes_experiments_md(self, capsys, tmp_path):
        target = tmp_path / "EXP.md"
        assert main(["--seed", "1", "table1", "s27", "--quiet",
                     "--experiments-md", str(target)]) == 0
        capsys.readouterr()
        text = target.read_text()
        assert text.startswith("# EXPERIMENTS")
        assert "s27" in text


class TestFaultBackendFlags:
    def test_run_with_fault_backend(self, capsys):
        assert main(["--seed", "1", "--fault-backend", "numpy",
                     "run", "s27"]) == 0
        out = capsys.readouterr().out
        assert "improvement vs traditional" in out

    def test_table1_with_sharded_fault_backend(self, capsys):
        # Tiny circuit: the sharded meta-backend takes its inline path,
        # results are bit-identical either way.
        assert main(["--seed", "1", "--fault-backend", "sharded",
                     "--shards", "2", "table1", "s27", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "fault=sharded" in out

    def test_unknown_fault_backend_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--fault-backend", "warp", "list"])

    def test_bad_fault_backend_env_is_clean_error(self, capsys,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_BACKEND", "warp")
        assert main(["list"]) == 2
        err = capsys.readouterr().err
        assert "unknown simulation backend" in err

    def test_bad_shards_env_is_clean_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SHARDS", "abc")
        assert main(["--fault-backend", "sharded", "list"]) == 2
        err = capsys.readouterr().err
        assert "REPRO_SIM_SHARDS" in err

    def test_bad_shard_count_rejected(self, capsys):
        assert main(["--shards", "0", "list"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_shards_with_non_sharded_backend_rejected(self, capsys):
        assert main(["--fault-backend", "numpy", "--shards", "2",
                     "list"]) == 2
        assert "sharded" in capsys.readouterr().err


class TestArgErrors:
    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
