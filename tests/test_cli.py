"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_circuits(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "s27" in out
        assert "embedded" in out
        assert "s9234" in out


class TestFigure2:
    def test_prints_table(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "NAND2 leakage" in out
        assert "408" in out


class TestRun:
    def test_run_s27(self, capsys):
        assert main(["--seed", "1", "run", "s27"]) == 0
        out = capsys.readouterr().out
        assert "improvement vs traditional" in out

    def test_run_flags(self, capsys):
        code = main(["--seed", "1", "run", "s27", "--no-reorder",
                     "--no-directive"])
        assert code == 0


class TestTable1:
    def test_text_format(self, capsys):
        assert main(["--seed", "1", "table1", "s27", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Circuit" in out
        assert "s27" in out

    def test_csv_format(self, capsys):
        assert main(["--seed", "1", "table1", "s27", "--quiet",
                     "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("circuit,")

    def test_markdown_format(self, capsys):
        assert main(["--seed", "1", "table1", "s27", "--quiet",
                     "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| Circuit |")


class TestLibrary:
    def test_prints_cells(self, capsys):
        assert main(["library"]) == 0
        out = capsys.readouterr().out
        assert "NAND2" in out and "leak nA" in out


class TestAblation:
    def test_observability_ablation_on_s27(self, capsys):
        assert main(["--seed", "1", "ablation", "observability",
                     "s27"]) == 0
        out = capsys.readouterr().out
        assert "A1" in out
        assert "directed" in out and "undirected" in out

    def test_ivc_ablation_on_s27(self, capsys):
        assert main(["--seed", "1", "ablation", "ivc", "s27"]) == 0
        out = capsys.readouterr().out
        assert "A4" in out
        assert "trials=" in out


class TestExperimentsMd:
    def test_table1_writes_experiments_md(self, capsys, tmp_path):
        target = tmp_path / "EXP.md"
        assert main(["--seed", "1", "table1", "s27", "--quiet",
                     "--experiments-md", str(target)]) == 0
        capsys.readouterr()
        text = target.read_text()
        assert text.startswith("# EXPERIMENTS")
        assert "s27" in text


class TestFaultBackendFlags:
    def test_run_with_fault_backend(self, capsys):
        assert main(["--seed", "1", "--fault-backend", "numpy",
                     "run", "s27"]) == 0
        out = capsys.readouterr().out
        assert "improvement vs traditional" in out

    def test_table1_with_sharded_fault_backend(self, capsys):
        # Tiny circuit: the sharded meta-backend takes its inline path,
        # results are bit-identical either way.
        assert main(["--seed", "1", "--fault-backend", "sharded",
                     "--shards", "2", "table1", "s27", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "fault=sharded" in out

    def test_unknown_fault_backend_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--fault-backend", "warp", "list"])

    def test_bad_fault_backend_env_is_clean_error(self, capsys,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_BACKEND", "warp")
        assert main(["list"]) == 2
        err = capsys.readouterr().err
        assert "unknown simulation backend" in err

    def test_bad_shards_env_is_clean_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SHARDS", "abc")
        assert main(["--fault-backend", "sharded", "list"]) == 2
        err = capsys.readouterr().err
        assert "REPRO_SIM_SHARDS" in err

    def test_bad_shard_count_rejected(self, capsys):
        assert main(["--shards", "0", "list"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_shards_with_non_sharded_backend_rejected(self, capsys):
        assert main(["--fault-backend", "numpy", "--shards", "2",
                     "list"]) == 2
        assert "sharded" in capsys.readouterr().err


class TestArgErrors:
    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCampaignCommand:
    def test_needs_spec_or_circuits(self, capsys):
        assert main(["campaign"]) == 2
        assert "spec file or --circuits" in capsys.readouterr().err

    def test_spec_and_circuits_mutually_exclusive(self, tmp_path,
                                                  capsys):
        spec = tmp_path / "spec.json"
        spec.write_text('{"circuits": ["s27"]}')
        assert main(["campaign", str(spec), "--circuits", "s27"]) == 2

    def test_inline_campaign_cold_then_cached(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["campaign", "--circuits", "s27",
                     "--cache-dir", cache, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "1 executed, 0 from cache" in out
        assert "Manifest:" in out

        assert main(["campaign", "--circuits", "s27",
                     "--cache-dir", cache, "--quiet",
                     "--expect-all-cached"]) == 0
        out = capsys.readouterr().out
        assert "0 executed, 1 from cache" in out

    def test_expect_all_cached_fails_on_cold_run(self, tmp_path,
                                                 capsys):
        assert main(["campaign", "--circuits", "s27",
                     "--cache-dir", str(tmp_path / "c"), "--quiet",
                     "--expect-all-cached"]) == 1
        assert "expected a fully cached" in capsys.readouterr().err

    def test_spec_file_run(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(
            '{"name": "mini", "circuits": ["s27"],'
            ' "base": {"ivc_trials": 2}}')
        assert main(["campaign", str(spec), "--no-cache",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Campaign 'mini'" in out

    def test_bad_spec_file(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text("{nope")
        assert main(["campaign", str(spec)]) == 2

    def test_name_overrides_spec_file_name(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text('{"circuits": ["s27"], "base": {"ivc_trials": 2}}')
        cache = str(tmp_path / "cache")
        assert main(["campaign", str(spec), "--name", "nightly",
                     "--cache-dir", cache, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Campaign 'nightly'" in out
        assert (tmp_path / "cache" / "nightly.manifest.json").is_file()

    def test_bad_jobs_rejected(self, capsys):
        assert main(["campaign", "--circuits", "s27",
                     "--jobs", "0"]) == 2


class TestTable1CampaignFlags:
    def test_jobs_and_cache_dir(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["--seed", "1", "table1", "s27", "--quiet",
                     "--jobs", "1", "--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert main(["--seed", "1", "table1", "s27", "--quiet",
                     "--jobs", "1", "--cache-dir", cache]) == 0
        second = capsys.readouterr().out
        assert first == second  # warm re-run renders identically


class TestAblationCampaignFlags:
    def test_ablation_with_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["--seed", "1", "ablation", "observability", "s27",
                "--cache-dir", cache]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0  # second run: pure cache hits
        assert capsys.readouterr().out == first
