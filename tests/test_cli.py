"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_circuits(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "s27" in out
        assert "embedded" in out
        assert "s9234" in out


class TestFigure2:
    def test_prints_table(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "NAND2 leakage" in out
        assert "408" in out


class TestRun:
    def test_run_s27(self, capsys):
        assert main(["--seed", "1", "run", "s27"]) == 0
        out = capsys.readouterr().out
        assert "improvement vs traditional" in out

    def test_run_flags(self, capsys):
        code = main(["--seed", "1", "run", "s27", "--no-reorder",
                     "--no-directive"])
        assert code == 0


class TestTable1:
    def test_text_format(self, capsys):
        assert main(["--seed", "1", "table1", "s27", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Circuit" in out
        assert "s27" in out

    def test_csv_format(self, capsys):
        assert main(["--seed", "1", "table1", "s27", "--quiet",
                     "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("circuit,")

    def test_markdown_format(self, capsys):
        assert main(["--seed", "1", "table1", "s27", "--quiet",
                     "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| Circuit |")


class TestLibrary:
    def test_prints_cells(self, capsys):
        assert main(["library"]) == 0
        out = capsys.readouterr().out
        assert "NAND2" in out and "leak nA" in out


class TestAblation:
    def test_observability_ablation_on_s27(self, capsys):
        assert main(["--seed", "1", "ablation", "observability",
                     "s27"]) == 0
        out = capsys.readouterr().out
        assert "A1" in out
        assert "directed" in out and "undirected" in out

    def test_ivc_ablation_on_s27(self, capsys):
        assert main(["--seed", "1", "ablation", "ivc", "s27"]) == 0
        out = capsys.readouterr().out
        assert "A4" in out
        assert "trials=" in out


class TestExperimentsMd:
    def test_table1_writes_experiments_md(self, capsys, tmp_path):
        target = tmp_path / "EXP.md"
        assert main(["--seed", "1", "table1", "s27", "--quiet",
                     "--experiments-md", str(target)]) == 0
        capsys.readouterr()
        text = target.read_text()
        assert text.startswith("# EXPERIMENTS")
        assert "s27" in text


class TestFaultBackendFlags:
    def test_run_with_fault_backend(self, capsys):
        assert main(["--seed", "1", "--fault-backend", "numpy",
                     "run", "s27"]) == 0
        out = capsys.readouterr().out
        assert "improvement vs traditional" in out

    def test_table1_with_sharded_fault_backend(self, capsys):
        # Tiny circuit: the sharded meta-backend takes its inline path,
        # results are bit-identical either way.
        assert main(["--seed", "1", "--fault-backend", "sharded",
                     "--shards", "2", "table1", "s27", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "fault=sharded" in out

    def test_unknown_fault_backend_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--fault-backend", "warp", "list"])

    def test_bad_fault_backend_env_is_clean_error(self, capsys,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_BACKEND", "warp")
        assert main(["list"]) == 2
        err = capsys.readouterr().err
        assert "unknown simulation backend" in err

    def test_bad_shards_env_is_clean_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SHARDS", "abc")
        assert main(["--fault-backend", "sharded", "list"]) == 2
        err = capsys.readouterr().err
        assert "REPRO_SIM_SHARDS" in err

    def test_bad_shard_count_rejected(self, capsys):
        assert main(["--shards", "0", "list"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_shards_with_non_sharded_backend_rejected(self, capsys):
        assert main(["--fault-backend", "numpy", "--shards", "2",
                     "list"]) == 2
        assert "sharded" in capsys.readouterr().err


class TestArgErrors:
    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCampaignCommand:
    def test_needs_spec_or_circuits(self, capsys):
        assert main(["campaign"]) == 2
        assert "spec file, --circuits, or --kind figure2" \
            in capsys.readouterr().err

    def test_spec_and_circuits_mutually_exclusive(self, tmp_path,
                                                  capsys):
        spec = tmp_path / "spec.json"
        spec.write_text('{"circuits": ["s27"]}')
        assert main(["campaign", str(spec), "--circuits", "s27"]) == 2

    def test_inline_campaign_cold_then_cached(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["campaign", "--circuits", "s27",
                     "--cache-dir", cache, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "1 executed, 0 from cache" in out
        assert "Manifest:" in out

        assert main(["campaign", "--circuits", "s27",
                     "--cache-dir", cache, "--quiet",
                     "--expect-all-cached"]) == 0
        out = capsys.readouterr().out
        assert "0 executed, 1 from cache" in out

    def test_expect_all_cached_fails_on_cold_run(self, tmp_path,
                                                 capsys):
        assert main(["campaign", "--circuits", "s27",
                     "--cache-dir", str(tmp_path / "c"), "--quiet",
                     "--expect-all-cached"]) == 1
        assert "expected a fully cached" in capsys.readouterr().err

    def test_spec_file_run(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(
            '{"name": "mini", "circuits": ["s27"],'
            ' "base": {"ivc_trials": 2}}')
        assert main(["campaign", str(spec), "--no-cache",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Campaign 'mini'" in out

    def test_bad_spec_file(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text("{nope")
        assert main(["campaign", str(spec)]) == 2

    def test_name_overrides_spec_file_name(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text('{"circuits": ["s27"], "base": {"ivc_trials": 2}}')
        cache = str(tmp_path / "cache")
        assert main(["campaign", str(spec), "--name", "nightly",
                     "--cache-dir", cache, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Campaign 'nightly'" in out
        assert (tmp_path / "cache" / "nightly.manifest.json").is_file()

    def test_bad_jobs_rejected(self, capsys):
        assert main(["campaign", "--circuits", "s27",
                     "--jobs", "0"]) == 2


class TestTable1CampaignFlags:
    def test_jobs_and_cache_dir(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["--seed", "1", "table1", "s27", "--quiet",
                     "--jobs", "1", "--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert main(["--seed", "1", "table1", "s27", "--quiet",
                     "--jobs", "1", "--cache-dir", cache]) == 0
        second = capsys.readouterr().out
        assert first == second  # warm re-run renders identically


class TestAblationCampaignFlags:
    def test_ablation_with_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["--seed", "1", "ablation", "observability", "s27",
                "--cache-dir", cache]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0  # second run: pure cache hits
        assert capsys.readouterr().out == first


class TestEpisodeBatchFlag:
    def test_run_with_flag_on_and_off_match(self, capsys):
        assert main(["--seed", "1", "--episode-batch", "on",
                     "run", "s27"]) == 0
        batched = capsys.readouterr().out
        assert main(["--seed", "1", "--episode-batch", "off",
                     "run", "s27"]) == 0
        serial = capsys.readouterr().out
        assert batched == serial  # bit-identical by contract

    def test_invalid_flag_value_rejected(self):
        with pytest.raises(SystemExit):
            main(["--episode-batch", "sometimes", "list"])

    def test_bad_env_is_clean_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EPISODE_BATCH", "maybe")
        assert main(["list"]) == 2
        assert "REPRO_EPISODE_BATCH" in capsys.readouterr().err

    def test_flag_overrides_bad_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EPISODE_BATCH", "maybe")
        assert main(["--episode-batch", "on", "list"]) == 0


class TestFaultPlanFlag:
    def test_run_with_flag_on_and_off_match(self, capsys):
        assert main(["--seed", "1", "--fault-plan", "on",
                     "run", "s27"]) == 0
        planned = capsys.readouterr().out
        assert main(["--seed", "1", "--fault-plan", "off",
                     "run", "s27"]) == 0
        legacy = capsys.readouterr().out
        assert planned == legacy  # bit-identical by contract

    def test_invalid_flag_value_rejected(self):
        with pytest.raises(SystemExit):
            main(["--fault-plan", "sometimes", "list"])

    def test_bad_env_is_clean_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "maybe")
        assert main(["list"]) == 2
        assert "REPRO_FAULT_PLAN" in capsys.readouterr().err

    def test_flag_overrides_bad_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "maybe")
        assert main(["--fault-plan", "off", "list"]) == 0

    def test_flag_does_not_leak_across_main_calls(self):
        from repro.simulation.fault_episode import fault_planning_enabled
        assert main(["--fault-plan", "off", "list"]) == 0
        assert fault_planning_enabled(None) is False  # session default
        assert main(["list"]) == 0  # no flag: main resets the default
        assert fault_planning_enabled(None) is True


class TestCampaignGc:
    def _seed_cache(self, cache_dir, n=3):
        import time

        from repro.campaign.cache import ResultCache
        cache = ResultCache(cache_dir)
        for i in range(n):
            cache.put(cache.key("k", f"c{i}", "h", "f"),
                      {"blob": "x" * 256})
            time.sleep(0.01)
        return cache

    def test_gc_requires_max_mb(self, capsys):
        assert main(["campaign", "gc"]) == 2
        assert "--max-mb" in capsys.readouterr().err

    def test_gc_evicts_to_budget(self, tmp_path, capsys):
        cache = self._seed_cache(str(tmp_path))
        assert main(["campaign", "gc", "--max-mb", "0",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "evicted 3" in out
        assert cache.entries() == []

    def test_gc_noop_under_budget(self, tmp_path, capsys):
        cache = self._seed_cache(str(tmp_path))
        assert main(["campaign", "gc", "--max-mb", "100",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "evicted 0" in capsys.readouterr().out
        assert len(cache.entries()) == 3

    def test_gc_negative_budget_rejected(self, capsys):
        assert main(["campaign", "gc", "--max-mb", "-1"]) == 2
        assert "--max-mb" in capsys.readouterr().err


class TestCampaignFigure2Kind:
    def test_inline_figure2_campaign(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["campaign", "--kind", "figure2",
                     "--cache-dir", cache_dir, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "1 job(s)" in out and "1 executed" in out
        # warm re-run: everything cached
        assert main(["campaign", "--kind", "figure2",
                     "--cache-dir", cache_dir, "--quiet",
                     "--expect-all-cached"]) == 0
        assert "1 from cache" in capsys.readouterr().out

    def test_spec_file_kind_figure2(self, tmp_path, capsys):
        import json
        spec = tmp_path / "fig2.json"
        spec.write_text(json.dumps({"kind": "figure2", "name": "f2"}))
        assert main(["campaign", str(spec), "--no-cache",
                     "--quiet"]) == 0
        assert "'f2'" in capsys.readouterr().out

    def test_max_mb_outside_gc_rejected(self, capsys):
        assert main(["campaign", "--circuits", "s27",
                     "--max-mb", "10"]) == 2
        assert "campaign gc" in capsys.readouterr().err

    def test_gc_rejects_campaign_flags(self, tmp_path, capsys):
        assert main(["campaign", "gc", "--max-mb", "1",
                     "--circuits", "s27", "--jobs", "2"]) == 2
        err = capsys.readouterr().err
        assert "--circuits" in err and "--jobs" in err

    def test_flag_does_not_leak_across_main_calls(self):
        """The autouse conftest fixture must clear the session default
        main() installs, or the suite becomes order-dependent."""
        from repro.simulation.episode import episode_batching_enabled
        assert main(["--episode-batch", "off", "list"]) == 0
        assert episode_batching_enabled(None) is False  # session default
        assert main(["list"]) == 0  # no flag: main resets the default
        assert episode_batching_enabled(None) is True


class TestCampaignGcAge:
    def _age_cache(self, cache_dir):
        import os
        import time

        from repro.campaign.cache import ResultCache
        cache = ResultCache(cache_dir)
        old_key = cache.key("k", "old", "h", "f")
        cache.put(old_key, {"blob": "x"})
        stale = time.time() - 10 * 86400.0
        os.utime(cache.path(old_key), (stale, stale))
        cache.put(cache.key("k", "new", "h", "f"), {"blob": "y"})
        return cache

    def test_age_evicts_only_stale_entries(self, tmp_path, capsys):
        cache = self._age_cache(str(tmp_path))
        assert main(["campaign", "gc", "--max-age-days", "5",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "evicted 1" in capsys.readouterr().out
        assert len(cache.entries()) == 1

    def test_age_and_size_combine(self, tmp_path, capsys):
        cache = self._age_cache(str(tmp_path))
        assert main(["campaign", "gc", "--max-age-days", "5",
                     "--max-mb", "0", "--cache-dir",
                     str(tmp_path)]) == 0
        assert "evicted 2" in capsys.readouterr().out
        assert cache.entries() == []

    def test_negative_age_rejected(self, capsys):
        assert main(["campaign", "gc", "--max-age-days", "-1"]) == 2
        assert "--max-age-days" in capsys.readouterr().err

    def test_age_outside_gc_rejected(self, capsys):
        assert main(["campaign", "--circuits", "s27",
                     "--max-age-days", "5"]) == 2
        assert "campaign gc" in capsys.readouterr().err


class TestEnqueueAndWorker:
    def test_enqueue_then_worker_drains(self, tmp_path, capsys):
        queue_dir = str(tmp_path / "q")
        cache_dir = str(tmp_path / "cache")
        assert main(["campaign", "--circuits", "s27",
                     "--enqueue", queue_dir]) == 0
        out = capsys.readouterr().out
        assert "enqueued 1 job(s)" in out
        manifest = str(tmp_path / "m.json")
        assert main(["worker", queue_dir, "--cache-dir", cache_dir,
                     "--quiet", "--manifest", manifest]) == 0
        out = capsys.readouterr().out
        assert "1 executed" in out
        assert "1 done" in out
        import json
        payload = json.loads(open(manifest).read())
        assert payload["jobs"][0]["status"] == "done"

    def test_enqueue_is_idempotent(self, tmp_path, capsys):
        queue_dir = str(tmp_path / "q")
        assert main(["campaign", "--circuits", "s27",
                     "--enqueue", queue_dir]) == 0
        capsys.readouterr()
        assert main(["campaign", "--circuits", "s27",
                     "--enqueue", queue_dir]) == 0
        assert "enqueued 0 job(s)" in capsys.readouterr().out

    def test_enqueue_rejects_execution_flags(self, tmp_path, capsys):
        assert main(["campaign", "--circuits", "s27",
                     "--enqueue", str(tmp_path / "q"),
                     "--jobs", "2"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_lease_ttl_requires_enqueue(self, capsys):
        assert main(["campaign", "--circuits", "s27",
                     "--lease-ttl", "5"]) == 2
        assert "--lease-ttl" in capsys.readouterr().err

    def test_bad_lease_ttl_rejected(self, tmp_path, capsys):
        assert main(["campaign", "--circuits", "s27",
                     "--enqueue", str(tmp_path / "q"),
                     "--lease-ttl", "0"]) == 2
        assert "--lease-ttl" in capsys.readouterr().err

    def test_worker_on_missing_queue_is_clean_error(self, tmp_path,
                                                    capsys):
        assert main(["worker", str(tmp_path / "nothere")]) == 2
        assert "work queue" in capsys.readouterr().err

    def test_worker_validates_flags(self, tmp_path, capsys):
        assert main(["worker", str(tmp_path), "--poll-s", "0"]) == 2
        assert "--poll-s" in capsys.readouterr().err
        assert main(["worker", str(tmp_path), "--max-jobs", "0"]) == 2
        assert "--max-jobs" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_validates_base_json(self, capsys):
        assert main(["serve", "--base", "notjson"]) == 2
        assert "--base" in capsys.readouterr().err
        assert main(["serve", "--base", "[1]"]) == 2
        assert "--base" in capsys.readouterr().err

    def test_serve_validates_port(self, capsys):
        assert main(["serve", "--port", "0"]) == 2
        assert "--port" in capsys.readouterr().err
