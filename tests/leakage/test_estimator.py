"""Tests for circuit-level leakage estimation."""

import itertools

import numpy as np
import pytest

from repro.leakage.estimator import (
    circuit_leakage_na,
    expected_leakage_na,
    leakage_power_uw,
    per_sample_leakage,
)
from repro.netlist.gates import X
from repro.simulation.bitsim import pack_input_vectors
from repro.simulation.eval2 import comb_input_lines, simulate_comb


class TestLeakagePowerConversion:
    def test_na_times_vdd(self):
        # 1000 nA at 0.9 V = 0.9 uW
        assert leakage_power_uw(1000.0, 0.9) == pytest.approx(0.9)

    def test_zero(self):
        assert leakage_power_uw(0.0, 0.9) == 0.0


class TestCircuitLeakage:
    def test_sums_per_gate_tables(self, s27_mapped, library):
        inputs = {line: 0 for line in comb_input_lines(s27_mapped)}
        values = simulate_comb(s27_mapped, inputs)
        total = circuit_leakage_na(s27_mapped, values, library)
        manual = 0.0
        for gate in s27_mapped.combinational_gates():
            pattern = tuple(values[s] for s in gate.inputs)
            manual += library.leakage_na(gate.gtype, pattern)
        assert total == pytest.approx(manual)

    def test_depends_on_input_state(self, s27_mapped, library):
        lines = comb_input_lines(s27_mapped)
        low = simulate_comb(s27_mapped, {line: 0 for line in lines})
        high = simulate_comb(s27_mapped, {line: 1 for line in lines})
        assert circuit_leakage_na(s27_mapped, low, library) != \
            circuit_leakage_na(s27_mapped, high, library)

    def test_positive(self, s27_mapped, library):
        lines = comb_input_lines(s27_mapped)
        values = simulate_comb(s27_mapped, {line: 0 for line in lines})
        assert circuit_leakage_na(s27_mapped, values, library) > 0


class TestExpectedLeakage:
    def test_no_x_equals_exact(self, s27_mapped, library):
        lines = comb_input_lines(s27_mapped)
        inputs = {line: 1 for line in lines}
        values = simulate_comb(s27_mapped, inputs)
        assert expected_leakage_na(s27_mapped, values, library) == \
            pytest.approx(circuit_leakage_na(s27_mapped, values, library))

    def test_all_x_is_average_of_corners_for_single_gate(self, library):
        from repro.netlist.circuit import Circuit
        from repro.netlist.gates import GateType
        c = Circuit()
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.NAND, ("a", "b"))
        c.add_output("y")
        expected = expected_leakage_na(c, {}, library)
        table = library.leakage_table(GateType.NAND, 2)
        mean_nand = sum(table.values()) / 4
        assert expected == pytest.approx(mean_nand)

    def test_p_one_weighting(self, library):
        from repro.netlist.circuit import Circuit
        from repro.netlist.gates import GateType
        c = Circuit()
        c.add_input("a")
        c.add_gate("y", GateType.NOT, ("a",))
        c.add_output("y")
        inv = library.leakage_table(GateType.NOT, 1)
        leak = expected_leakage_na(c, {"a": X}, library, p_one=0.9)
        assert leak == pytest.approx(0.1 * inv[(0,)] + 0.9 * inv[(1,)])


class TestPerSampleLeakage:
    def test_matches_scalar_evaluation(self, s27_mapped, library):
        lines = comb_input_lines(s27_mapped)
        vectors = []
        for code in (0, 5, 127, 42):
            vectors.append({line: (code >> i) & 1
                            for i, line in enumerate(lines)})
        words, n = pack_input_vectors(s27_mapped, vectors)
        samples = per_sample_leakage(s27_mapped, words, n, library)
        assert samples.shape == (4,)
        for t, vector in enumerate(vectors):
            values = simulate_comb(s27_mapped, vector)
            assert samples[t] == pytest.approx(
                circuit_leakage_na(s27_mapped, values, library))

    def test_large_sample_count(self, s27_mapped, library):
        from repro.simulation.bitsim import random_input_words
        from repro.utils.rng import make_rng
        words = random_input_words(s27_mapped, 300, make_rng(0))
        samples = per_sample_leakage(s27_mapped, words, 300, library)
        assert samples.shape == (300,)
        assert (samples > 0).all()
        assert samples.std() > 0  # states genuinely differ


class TestPerEpisodeLeakage:
    def test_slices_match_per_episode_means(self, s27_mapped, library):
        from repro.leakage.estimator import per_episode_leakage
        from repro.scan.testview import ScanDesign
        from repro.simulation.episode import compile_episode_plan
        from tests.conftest import random_vectors

        design = ScanDesign.full_scan(s27_mapped)
        vectors = random_vectors(design, 5, seed=2)
        plan = compile_episode_plan(design, vectors)
        per_episode = per_episode_leakage(plan, library)
        assert per_episode.shape == (5,)
        # slicing the flat per-cycle vector by hand must agree exactly
        flat = per_sample_leakage(s27_mapped, plan.waveforms,
                                  plan.n_cycles, library)
        for i, (start, stop) in enumerate(plan.episode_bounds()):
            assert per_episode[i] == flat[start:stop].mean()

    def test_backends_agree(self, s27_mapped, library):
        from repro.leakage.estimator import per_episode_leakage
        from repro.scan.testview import ScanDesign
        from repro.simulation.episode import compile_episode_plan
        from tests.conftest import random_vectors

        design = ScanDesign.full_scan(s27_mapped)
        plan = compile_episode_plan(design, random_vectors(design, 3))
        reference = per_episode_leakage(plan, library, backend="bigint")
        got = per_episode_leakage(plan, library, backend="numpy")
        assert (got == reference).all()
