"""Tests for the input-vector-control random search."""

import pytest

from repro.errors import ConfigError
from repro.leakage.estimator import circuit_leakage_na
from repro.leakage.ivc import greedy_bit_improvement, random_fill_search
from repro.simulation.eval2 import comb_input_lines, simulate_comb


def _full_leakage(circuit, assignment, library):
    values = simulate_comb(circuit, assignment)
    return circuit_leakage_na(circuit, values, library)


class TestRandomFillSearch:
    def test_grouping_validation(self, s27_mapped):
        lines = comb_input_lines(s27_mapped)
        with pytest.raises(ConfigError, match="unaccounted"):
            random_fill_search(s27_mapped, {}, lines[:2])
        with pytest.raises(ConfigError, match="more than one group"):
            random_fill_search(
                s27_mapped, {lines[0]: 0}, lines, n_trials=4)

    def test_assignment_covers_free_lines(self, s27_mapped):
        lines = comb_input_lines(s27_mapped)
        result = random_fill_search(s27_mapped, {}, lines, n_trials=16,
                                    seed=0)
        assert set(result.assignment) == set(lines)
        assert result.trials == 16

    def test_reported_leakage_matches_re_evaluation(self, s27_mapped,
                                                    library):
        lines = comb_input_lines(s27_mapped)
        result = random_fill_search(s27_mapped, {}, lines, n_trials=32,
                                    seed=1, library=library)
        actual = _full_leakage(s27_mapped, result.assignment, library)
        assert result.leakage_na == pytest.approx(actual)

    def test_best_of_more_trials_not_worse(self, s27_mapped, library):
        """The 64-trial minimum can only improve on the 4-trial one when
        the trial streams are nested... they are not, so compare against
        an exhaustive lower bound instead: more trials gets close to it."""
        lines = comb_input_lines(s27_mapped)
        few = random_fill_search(s27_mapped, {}, lines, n_trials=2,
                                 seed=3, library=library)
        many = random_fill_search(s27_mapped, {}, lines, n_trials=128,
                                  seed=3, library=library)
        assert many.leakage_na <= few.leakage_na + 1e-9

    def test_fixed_lines_respected(self, s27_mapped):
        lines = comb_input_lines(s27_mapped)
        fixed = {lines[0]: 1}
        result = random_fill_search(s27_mapped, fixed, lines[1:],
                                    n_trials=8, seed=0)
        assert lines[0] not in result.assignment

    def test_no_free_lines(self, s27_mapped, library):
        lines = comb_input_lines(s27_mapped)
        fixed = {line: 0 for line in lines}
        result = random_fill_search(s27_mapped, fixed, [], library=library)
        assert result.assignment == {}
        assert result.leakage_na == pytest.approx(
            _full_leakage(s27_mapped, fixed, library))

    def test_deterministic(self, s27_mapped):
        lines = comb_input_lines(s27_mapped)
        a = random_fill_search(s27_mapped, {}, lines, n_trials=16, seed=9)
        b = random_fill_search(s27_mapped, {}, lines, n_trials=16, seed=9)
        assert a.assignment == b.assignment

    def test_noise_lines_average(self, s27_mapped, library):
        """With noise lines, the reported leakage is a mean over noise
        states, bounded by the extreme corner leakages."""
        lines = comb_input_lines(s27_mapped)
        free = lines[:4]
        noise = lines[4:]
        result = random_fill_search(
            s27_mapped, {}, free, n_trials=8, seed=2, library=library,
            noise_lines=noise, n_noise=16)
        assert set(result.assignment) == set(free)
        assert result.leakage_na > 0


class TestGreedyImprovement:
    def test_never_worse_than_start(self, s27_mapped, library):
        lines = comb_input_lines(s27_mapped)
        start = {line: 0 for line in lines}
        result = greedy_bit_improvement(s27_mapped, {}, start,
                                        library=library)
        assert result.leakage_na <= _full_leakage(
            s27_mapped, start, library) + 1e-9

    def test_fixed_point_returns_start(self, s27_mapped, library):
        lines = comb_input_lines(s27_mapped)
        # First run until convergence, then a second run must not move.
        start = {line: 0 for line in lines}
        first = greedy_bit_improvement(s27_mapped, {}, start,
                                       max_rounds=20, library=library)
        second = greedy_bit_improvement(s27_mapped, {}, first.assignment,
                                        max_rounds=20, library=library)
        assert second.assignment == first.assignment

    def test_improves_on_random_search(self, s27_mapped, library):
        lines = comb_input_lines(s27_mapped)
        coarse = random_fill_search(s27_mapped, {}, lines, n_trials=4,
                                    seed=5, library=library)
        refined = greedy_bit_improvement(s27_mapped, {}, coarse.assignment,
                                         library=library)
        assert refined.leakage_na <= coarse.leakage_na + 1e-9
