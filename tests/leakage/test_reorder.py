"""Tests for commutative-gate input reordering."""

import pytest

from repro.leakage.estimator import circuit_leakage_na
from repro.leakage.reorder import (
    best_pin_order,
    expected_gate_leakage,
    reorder_for_leakage,
)
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType, X
from repro.simulation.eval2 import comb_input_lines, simulate_comb
from repro.techmap.verify import equivalence_check


class TestExpectedGateLeakage:
    def test_exact_for_binary(self, library):
        table = library.leakage_table(GateType.NAND, 2)
        assert expected_gate_leakage(table, (1, 0)) == table[(1, 0)]

    def test_x_averages(self, library):
        table = library.leakage_table(GateType.NAND, 2)
        value = expected_gate_leakage(table, (X, 1))
        assert value == pytest.approx(
            (table[(0, 1)] + table[(1, 1)]) / 2)

    def test_p_one_extremes(self, library):
        table = library.leakage_table(GateType.NAND, 2)
        assert expected_gate_leakage(table, (X, 0), p_one=0.0) == \
            pytest.approx(table[(0, 0)])
        assert expected_gate_leakage(table, (X, 0), p_one=1.0) == \
            pytest.approx(table[(1, 0)])


class TestBestPinOrder:
    def test_nand_10_becomes_01(self, library):
        """The paper's example: '10' (264 nA) swaps to '01' (73 nA)."""
        table = library.leakage_table(GateType.NAND, 2)
        perm, leak = best_pin_order(table, (1, 0))
        assert perm == (1, 0)
        assert leak == pytest.approx(table[(0, 1)])

    def test_01_stays(self, library):
        table = library.leakage_table(GateType.NAND, 2)
        perm, _leak = best_pin_order(table, (0, 1))
        assert perm == (0, 1)

    def test_symmetric_pattern_stays(self, library):
        table = library.leakage_table(GateType.NAND, 2)
        assert best_pin_order(table, (1, 1))[0] == (0, 1)
        assert best_pin_order(table, (0, 0))[0] == (0, 1)

    def test_three_input_minimum(self, library):
        table = library.leakage_table(GateType.NAND, 3)
        perm, leak = best_pin_order(table, (1, 1, 0))
        permuted = tuple([(1, 1, 0)[i] for i in perm])
        assert leak == pytest.approx(table[permuted])
        assert leak == min(
            table[(0, 1, 1)], table[(1, 0, 1)], table[(1, 1, 0)])


class TestReorderForLeakage:
    def _one_nand(self):
        c = Circuit("nand")
        c.add_input("a")
        c.add_input("b")
        c.add_gate("y", GateType.NAND, ("a", "b"))
        c.add_output("y")
        return c

    def test_swaps_bad_orientation(self, library):
        c = self._one_nand()
        result = reorder_for_leakage(c, {"a": 1, "b": 0}, library)
        assert result.swapped_gates == {"y": ("b", "a")}
        table = library.leakage_table(GateType.NAND, 2)
        assert result.saved_na == pytest.approx(
            table[(1, 0)] - table[(0, 1)])

    def test_good_orientation_untouched(self, library):
        c = self._one_nand()
        result = reorder_for_leakage(c, {"a": 0, "b": 1}, library)
        assert result.swapped_gates == {}
        assert result.saved_na == 0.0

    def test_function_preserved(self, s27_mapped, library):
        lines = comb_input_lines(s27_mapped)
        quiescent = simulate_comb(
            s27_mapped, {line: (i % 2) for i, line in enumerate(lines)})
        result = reorder_for_leakage(s27_mapped, quiescent, library)
        assert equivalence_check(s27_mapped, result.circuit)

    def test_leakage_actually_drops(self, s27_mapped, library):
        lines = comb_input_lines(s27_mapped)
        assignment = {line: (i % 2) for i, line in enumerate(lines)}
        quiescent = simulate_comb(s27_mapped, assignment)
        result = reorder_for_leakage(s27_mapped, quiescent, library)
        before = circuit_leakage_na(s27_mapped, quiescent, library)
        after_values = simulate_comb(result.circuit, assignment)
        after = circuit_leakage_na(result.circuit, after_values, library)
        assert after == pytest.approx(before - result.saved_na)
        assert after <= before

    def test_original_not_mutated(self, s27_mapped, library):
        lines = comb_input_lines(s27_mapped)
        quiescent = simulate_comb(
            s27_mapped, {line: 1 for line in lines})
        snapshot = {out: g.inputs for out, g in s27_mapped.gates.items()}
        reorder_for_leakage(s27_mapped, quiescent, library)
        assert snapshot == {out: g.inputs
                            for out, g in s27_mapped.gates.items()}

    def test_x_values_handled(self, s27_mapped, library):
        result = reorder_for_leakage(s27_mapped, {}, library)
        assert equivalence_check(s27_mapped, result.circuit)
