"""Tests for leakage observability (the paper's directive attribute)."""

import pytest

from repro.leakage.observability import (
    forced_observability,
    monte_carlo_observability,
)
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType


def single_nand() -> Circuit:
    c = Circuit("one_nand")
    c.add_input("a")
    c.add_input("b")
    c.add_gate("y", GateType.NAND, ("a", "b"))
    c.add_output("y")
    return c


class TestMonteCarlo:
    def test_covers_every_line(self, s27_mapped):
        obs = monte_carlo_observability(s27_mapped, 256, seed=0)
        assert set(obs) == set(s27_mapped.lines())

    def test_deterministic_per_seed(self, s27_mapped):
        a = monte_carlo_observability(s27_mapped, 128, seed=7)
        b = monte_carlo_observability(s27_mapped, 128, seed=7)
        assert a == b

    def test_single_nand_signs(self, library):
        """For an isolated NAND2: setting B to 1 moves mass from the
        {00, 10} rows to {01, 11}; the table (78+264)/2 -> (73+408)/2
        means positive observability for B.  For A: {00,01} -> {10,11},
        (78+73)/2 -> (264+408)/2 — strongly positive too, and larger."""
        c = single_nand()
        obs = monte_carlo_observability(c, 2048, seed=1, library=library)
        assert obs["a"] > 0
        assert obs["b"] > 0
        assert obs["a"] > obs["b"]

    def test_constant_line_is_neutral(self, library):
        c = Circuit("const")
        c.add_input("a")
        c.add_gate("t", GateType.CONST1, ())
        c.add_gate("y", GateType.NAND, ("a", "t"))
        c.add_output("y")
        obs = monte_carlo_observability(c, 64, seed=0, library=library)
        assert obs["t"] == 0.0


class TestForced:
    def test_matches_analytic_for_single_gate(self, library):
        """Forcing semantics on an isolated NAND2 is exactly computable:
        L_obs(a) = mean(264, 408) - mean(78, 73)."""
        c = single_nand()
        obs = forced_observability(c, n_samples=512, seed=0,
                                   library=library)
        table = library.leakage_table(GateType.NAND, 2)
        expect_a = (table[(1, 0)] + table[(1, 1)]) / 2 - \
            (table[(0, 0)] + table[(0, 1)]) / 2
        expect_b = (table[(0, 1)] + table[(1, 1)]) / 2 - \
            (table[(0, 0)] + table[(1, 0)]) / 2
        assert obs["a"] == pytest.approx(expect_a, rel=0.15)
        assert obs["b"] == pytest.approx(expect_b, rel=0.15)

    def test_rejects_internal_lines(self, s27_mapped):
        internal = s27_mapped.topo_order()[0]
        with pytest.raises(ValueError):
            forced_observability(s27_mapped, lines=[internal])

    def test_subset_of_lines(self, s27_mapped):
        obs = forced_observability(s27_mapped, lines=["G0"], n_samples=64)
        assert set(obs) == {"G0"}


class TestAgreement:
    def test_mc_and_forced_agree_on_inputs(self, s27_mapped, library):
        """On primary inputs conditioning == forcing (independence), so
        the two estimators must agree in sign for lines with a clear
        signal."""
        mc = monte_carlo_observability(s27_mapped, 4096, seed=2,
                                       library=library)
        forced = forced_observability(s27_mapped, n_samples=1024, seed=3,
                                      library=library)
        for line, forced_value in forced.items():
            if abs(forced_value) < 15.0:
                continue  # too weak to compare reliably
            assert mc[line] * forced_value > 0, line
