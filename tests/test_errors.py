"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name

    def test_bench_parse_error_line_info(self):
        exc = errors.BenchParseError("bad token", 17, "x = FOO(y)")
        assert exc.line_number == 17
        assert exc.line == "x = FOO(y)"
        assert "line 17" in str(exc)

    def test_bench_parse_error_without_line(self):
        exc = errors.BenchParseError("general problem")
        assert exc.line_number is None
        assert "general problem" in str(exc)

    def test_loop_error_preview_truncates(self):
        cycle = [f"n{i}" for i in range(20)]
        exc = errors.CombinationalLoopError(cycle)
        assert exc.cycle == cycle
        assert "..." in str(exc)

    def test_loop_error_short_cycle(self):
        exc = errors.CombinationalLoopError(["a", "b"])
        assert "..." not in str(exc)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.ScanError("nope")
