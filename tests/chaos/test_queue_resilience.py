"""Queue self-healing: retries, quarantine records, retry-failed."""

import json
import time

import pytest

import repro.chaos as chaos
from repro.campaign.cache import ResultCache
from repro.campaign.manifest import CampaignSpec
from repro.campaign.queue import (
    DEFAULT_MAX_ATTEMPTS,
    WorkQueue,
    run_worker,
)
from repro.errors import QueueError

SMALL = {"observability_samples": 16, "ivc_trials": 2,
         "ivc_noise_samples": 2}


def small_spec(circuits=("s27",), seeds=(1,), name="t", **base):
    return CampaignSpec(circuits=circuits, seeds=seeds,
                        base={**SMALL, **base}, name=name)


def failing_executor(monkeypatch, fail_first_n):
    """Stub executor raising on each job's first ``fail_first_n`` runs."""
    import repro.campaign.runner as runner

    runs: dict[str, int] = {}

    def fake(payload):
        runs[payload["job_id"]] = runs.get(payload["job_id"], 0) + 1
        if runs[payload["job_id"]] <= fail_first_n:
            raise RuntimeError(
                f"transient wreck #{runs[payload['job_id']]}")
        return {"kind": runner.FLOW_ARTEFACT_KIND,
                "job_id": payload["job_id"],
                "circuit": payload["circuit"], "seed": payload["seed"],
                "row": {"circuit": payload["circuit"]},
                "summary": "stub", "elapsed_s": 0.0}

    monkeypatch.setattr(runner, "_execute_flow_job", fake)
    return runs


class TestAttemptBudget:
    def test_transient_failure_heals_without_operator(
            self, tmp_path, monkeypatch):
        failing_executor(monkeypatch, fail_first_n=2)
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec())
        stats = run_worker(tmp_path / "q", tmp_path / "cache",
                           poll_s=0.01)
        assert stats.retried == 2
        assert stats.executed == 1
        assert stats.failed == 0
        assert queue.depth().done == 1
        assert queue.depth().outstanding == 0

    def test_poison_job_is_quarantined_with_failure_record(
            self, tmp_path, monkeypatch):
        """Satellite: failed jobs carry a machine-readable record."""
        failing_executor(monkeypatch, fail_first_n=99)
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec())
        stats = run_worker(tmp_path / "q", tmp_path / "cache",
                           worker_id="w-test", poll_s=0.01)
        assert stats.failed == 1
        assert stats.retried == DEFAULT_MAX_ATTEMPTS - 1
        depth = queue.depth()
        assert depth.failed == 1 and depth.outstanding == 0
        [failed_file] = (tmp_path / "q" / "failed").glob("*.json")
        payload = json.loads(failed_file.read_text())
        failure = payload["failure"]
        assert failure["error"].startswith("RuntimeError")
        assert "transient wreck" in failure["traceback"]
        assert failure["attempts"] == DEFAULT_MAX_ATTEMPTS
        assert failure["worker_id"] == "w-test"

    def test_max_attempts_argument_overrides_queue_default(
            self, tmp_path, monkeypatch):
        runs = failing_executor(monkeypatch, fail_first_n=99)
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec())
        run_worker(tmp_path / "q", tmp_path / "cache", poll_s=0.01,
                   max_attempts=1)
        assert queue.depth().failed == 1
        assert sum(runs.values()) == 1  # no retry at budget 1

    def test_attempt_count_rides_across_workers(self, tmp_path,
                                                monkeypatch):
        """A re-queued job keeps its attempt count: a different worker
        claiming it continues the budget instead of restarting it."""
        failing_executor(monkeypatch, fail_first_n=99)
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec())
        for expected_attempts in (1, 2):
            claim = queue.claim(f"w{expected_attempts}")
            queue.release(claim, attempts=expected_attempts)
        claim = queue.claim("w3")
        assert claim.attempts == 2

    def test_zero_max_attempts_rejected(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec())
        with pytest.raises(QueueError, match="max_attempts"):
            run_worker(tmp_path / "q", tmp_path / "cache",
                       max_attempts=0)

    def test_queue_meta_carries_default_budget(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec())
        meta = json.loads((tmp_path / "q" / "queue.json").read_text())
        assert meta["max_attempts"] == DEFAULT_MAX_ATTEMPTS
        assert queue.max_attempts == DEFAULT_MAX_ATTEMPTS


class TestRetryFailed:
    def quarantine_all(self, tmp_path, monkeypatch):
        failing_executor(monkeypatch, fail_first_n=99)
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec(seeds=(1, 2)))
        run_worker(tmp_path / "q", tmp_path / "cache", poll_s=0.01)
        assert queue.depth().failed == 2
        return queue

    def test_requeues_and_clears_failure_state(self, tmp_path,
                                               monkeypatch):
        queue = self.quarantine_all(tmp_path, monkeypatch)
        assert queue.retry_failed() == 2
        depth = queue.depth()
        assert depth.pending == 2 and depth.failed == 0
        for path in (tmp_path / "q" / "pending").glob("*.json"):
            payload = json.loads(path.read_text())
            assert "failure" not in payload
            assert "attempts" not in payload
            assert "error" not in payload

    def test_requeued_jobs_complete_once_fixed(self, tmp_path,
                                               monkeypatch):
        queue = self.quarantine_all(tmp_path, monkeypatch)
        queue.retry_failed()
        # "fix the bug": executor now succeeds
        failing_executor(monkeypatch, fail_first_n=0)
        stats = run_worker(tmp_path / "q", tmp_path / "cache2",
                           poll_s=0.01)
        assert stats.executed == 2
        assert queue.depth().done == 2 and queue.depth().failed == 0

    def test_empty_failed_dir_is_a_noop(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec())
        assert queue.retry_failed() == 0


class TestInjectedQueueFaults:
    def test_enqueue_survives_seeded_write_faults(self, tmp_path):
        """queue.write EIO at a moderate rate: retry_call absorbs it."""
        chaos.enable("seed=3,queue.write=0.3")
        queue = WorkQueue(tmp_path / "q")
        n = queue.enqueue(small_spec(seeds=(1, 2, 3)))
        assert n == 3
        assert queue.depth().pending == 3
        # the injected faults really fired (the retries were real)
        assert any(site == "queue.write"
                   for site, _action in chaos.injection_log())

    def test_expired_lease_requeue_survives_faults(self, tmp_path):
        queue = WorkQueue(tmp_path / "q", lease_ttl_s=0.05)
        queue.enqueue(small_spec(), lease_ttl_s=0.05)
        claim = queue.claim("w1")
        assert claim is not None
        time.sleep(0.08)
        chaos.enable("seed=1,queue.requeue=0.5")
        # scavenging tolerates injected faults across polls: a failed
        # rename leaves the claim for the next sweep
        for _ in range(20):
            if queue.requeue_expired():
                break
            time.sleep(0.01)
        assert queue.depth().pending == 1

    def test_heartbeat_gives_up_on_revoked_lease(self, tmp_path):
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec())
        claim = queue.claim("w1")
        claim.path.unlink()  # lease revoked under the worker
        started = time.monotonic()
        assert queue.heartbeat(claim) is False
        # giveup_on=(FileNotFoundError,): reported lost immediately,
        # without burning the transient-retry backoff budget
        assert time.monotonic() - started < 0.05
