"""Service under load and faults: shedding, timeouts, health, resets."""

import asyncio
import http.client
import json
import socket
import time

import pytest

import repro.chaos as chaos
from repro.campaign.cache import ResultCache
from repro.campaign.queue import WorkQueue
from repro.campaign.service import ArtifactService, ServiceServer
from repro.errors import ServiceError


def get(port, path, headers=None, timeout=10):
    conn = http.client.HTTPConnection("127.0.0.1", port,
                                      timeout=timeout)
    try:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        return (response.status, dict(response.getheaders()),
                response.read())
    finally:
        conn.close()


class TestValidation:
    def test_zero_max_connections_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="max_connections"):
            ArtifactService(ResultCache(tmp_path), max_connections=0)

    def test_zero_request_timeout_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="request_timeout_s"):
            ArtifactService(ResultCache(tmp_path), request_timeout_s=0)


class TestShedding:
    def test_connections_beyond_the_cap_get_503(self, tmp_path):
        service = ArtifactService(ResultCache(tmp_path / "cache"),
                                  max_connections=1)
        with ServiceServer(service) as server:
            # Occupy the single slot: connect but never send, so the
            # handler parks inside the request read.
            held = socket.create_connection(("127.0.0.1", server.port))
            try:
                for _ in range(100):
                    if service._active >= 1:
                        break
                    time.sleep(0.01)
                assert service._active == 1
                status, headers, body = get(server.port, "/healthz")
                assert status == 503
                assert headers["Retry-After"] == "1"
                assert "capacity" in json.loads(body)["error"]
            finally:
                held.close()
        assert service.metrics.shed == 1

    def test_slot_frees_after_the_request_finishes(self, tmp_path):
        service = ArtifactService(ResultCache(tmp_path / "cache"),
                                  max_connections=1)
        with ServiceServer(service) as server:
            status, _, _ = get(server.port, "/healthz")
            assert status == 200
            status, _, _ = get(server.port, "/healthz")
            assert status == 200
        assert service.metrics.shed == 0


class TestTimeouts:
    def test_slow_request_gets_504(self, tmp_path, monkeypatch):
        service = ArtifactService(ResultCache(tmp_path / "cache"),
                                  request_timeout_s=0.05)

        async def glacial(_reader):
            await asyncio.sleep(30)

        monkeypatch.setattr(service, "_handle", glacial)
        with ServiceServer(service) as server:
            status, _, body = get(server.port, "/healthz")
        assert status == 504
        assert "0.05" in json.loads(body)["error"]
        assert service.metrics.timeouts == 1

    def test_fast_request_unaffected_by_budget(self, tmp_path):
        service = ArtifactService(ResultCache(tmp_path / "cache"),
                                  request_timeout_s=5)
        with ServiceServer(service) as server:
            status, _, _ = get(server.port, "/healthz")
        assert status == 200
        assert service.metrics.timeouts == 0


class TestActiveHealth:
    def test_degraded_when_cache_store_is_unwritable(self, tmp_path):
        # A regular file where the cache root must be: every probe
        # mkdir/write fails with OSError -> degraded.
        (tmp_path / "cache").write_text("not a directory")
        service = ArtifactService(ResultCache(tmp_path / "cache"))
        with ServiceServer(service) as server:
            status, headers, body = get(server.port, "/healthz")
        assert status == 503
        payload = json.loads(body)
        assert payload["status"] == "degraded"
        assert payload["checks"]["cache"].startswith("failed")
        assert headers["Retry-After"] == "1"

    def test_degraded_when_queue_store_is_unwritable(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q")
        pending = tmp_path / "q" / "pending"
        for stray in pending.iterdir():
            stray.unlink()
        pending.rmdir()
        pending.write_text("not a directory")
        service = ArtifactService(ResultCache(tmp_path / "cache"),
                                  queue=queue)
        with ServiceServer(service) as server:
            status, _, body = get(server.port, "/healthz")
        assert status == 503
        payload = json.loads(body)
        assert payload["checks"]["cache"] == "ok"
        assert payload["checks"]["queue"].startswith("failed")

    def test_probe_leaves_no_residue(self, tmp_path):
        service = ArtifactService(ResultCache(tmp_path / "cache"))
        with ServiceServer(service) as server:
            status, _, _ = get(server.port, "/healthz")
        assert status == 200
        assert not list((tmp_path / "cache").glob(".healthz-probe-*"))


class TestInjectedServiceFaults:
    def test_reset_drops_the_connection_without_a_response(
            self, tmp_path):
        service = ArtifactService(ResultCache(tmp_path / "cache"))
        with ServiceServer(service) as server:
            chaos.enable("seed=1,service.reset=1")
            with pytest.raises((http.client.BadStatusLine,
                                ConnectionError, OSError)):
                get(server.port, "/healthz", timeout=5)
            chaos.disable()
            status, _, _ = get(server.port, "/healthz")
        assert status == 200  # server survived its own chaos

    def test_slow_client_delay_injected(self, tmp_path):
        service = ArtifactService(ResultCache(tmp_path / "cache"))
        with ServiceServer(service) as server:
            chaos.enable("seed=1,service.slow=1,slow_s=0.2")
            started = time.monotonic()
            status, _, _ = get(server.port, "/healthz")
            elapsed = time.monotonic() - started
        assert status == 200
        assert elapsed >= 0.2


class TestResilienceMetrics:
    def test_shed_and_timeouts_exported(self, tmp_path, monkeypatch):
        service = ArtifactService(ResultCache(tmp_path / "cache"))
        service.metrics.shed = 3
        service.metrics.timeouts = 2
        with ServiceServer(service) as server:
            status, _, body = get(server.port, "/metrics")
            assert status == 200
            snapshot = json.loads(body)["service"]
            assert snapshot["shed"] == 3
            assert snapshot["timeouts"] == 2
            status, _, text = get(server.port,
                                  "/metrics?format=prometheus")
        assert b"repro_service_shed 3" in text
        assert b"repro_service_timeouts 2" in text
