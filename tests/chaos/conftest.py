"""State hygiene for the chaos tests.

The chaos policy and the metrics registry are process-global by
design; every test here starts from (and leaves behind) a clean
slate so ordering never matters.
"""

import pytest

import repro.chaos as chaos
from repro.obs.metrics import get_registry


@pytest.fixture(autouse=True)
def _clean_chaos_state():
    chaos.disable()
    get_registry().reset()
    yield
    chaos.disable()
    get_registry().reset()
