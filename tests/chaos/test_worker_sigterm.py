"""Graceful worker shutdown: SIGTERM settles the claimed job, exit 0."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.campaign.manifest import CampaignSpec
from repro.campaign.queue import WorkQueue, run_worker

SMALL = {"observability_samples": 16, "ivc_trials": 2,
         "ivc_noise_samples": 2}


def small_spec(seeds=(1,)):
    return CampaignSpec(circuits=("s27",), seeds=seeds,
                        base=dict(SMALL), name="t")


def stub_executor(monkeypatch, on_execute=None):
    import repro.campaign.runner as runner

    def fake(payload):
        if on_execute is not None:
            on_execute(payload)
        return {"kind": runner.FLOW_ARTEFACT_KIND,
                "job_id": payload["job_id"],
                "circuit": payload["circuit"], "seed": payload["seed"],
                "row": {"circuit": payload["circuit"]},
                "summary": "stub", "elapsed_s": 0.0}

    monkeypatch.setattr(runner, "_execute_flow_job", fake)


class TestShouldStop:
    """In-process ``run_worker(should_stop=...)`` semantics."""

    def test_stop_during_a_job_settles_it_first(self, tmp_path,
                                                monkeypatch):
        """should_stop flipping mid-execution: the claimed job is
        completed, then the worker exits without claiming the next."""
        flag = {"stop": False}
        stub_executor(monkeypatch,
                      on_execute=lambda _p: flag.update(stop=True))
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec(seeds=(1, 2)))
        stats = run_worker(tmp_path / "q", tmp_path / "cache",
                           poll_s=0.01,
                           should_stop=lambda: flag["stop"])
        assert stats.executed == 1  # first job settled, second left
        depth = queue.depth()
        assert depth.done == 1
        assert depth.claimed == 0  # nothing abandoned mid-claim
        assert depth.pending == 1

    def test_stop_before_any_claim_exits_immediately(self, tmp_path,
                                                     monkeypatch):
        stub_executor(monkeypatch)
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec())
        stats = run_worker(tmp_path / "q", tmp_path / "cache",
                           poll_s=0.01, should_stop=lambda: True)
        assert stats.executed == 0
        assert queue.depth().pending == 1


class TestCliSigterm:
    """Real ``repro-power worker`` process receiving SIGTERM."""

    def spawn_worker(self, queue_dir, cache_dir, *extra):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_CHAOS", None)
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             str(queue_dir), "--cache-dir", str(cache_dir),
             "--poll-s", "0.05", *extra],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)

    def test_sigterm_while_waiting_exits_zero(self, tmp_path):
        """--wait worker: drain the queue, SIGTERM while idle-polling
        -> graceful exit 0 with every job done and none claimed."""
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec(seeds=(1, 2)))
        worker = self.spawn_worker(tmp_path / "q", tmp_path / "cache",
                                   "--wait")
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if queue.depth().done == 2:
                    break
                assert worker.poll() is None, worker.stderr.read()
                time.sleep(0.05)
            assert queue.depth().done == 2
            worker.send_signal(signal.SIGTERM)
            stdout, stderr = worker.communicate(timeout=30)
        finally:
            if worker.poll() is None:  # pragma: no cover - cleanup
                worker.kill()
                worker.communicate()
        assert worker.returncode == 0, stderr
        assert "stopping on SIGTERM" in stderr
        depth = queue.depth()
        assert depth.done == 2
        assert depth.claimed == 0
        assert depth.outstanding == 0

    def test_sigterm_storm_loses_no_jobs(self, tmp_path):
        """Kill a draining worker mid-run; a successor finishes the
        queue — the SIGTERM'd worker left no wedged claim behind."""
        queue = WorkQueue(tmp_path / "q")
        queue.enqueue(small_spec(seeds=(1, 2, 3, 4)))
        worker = self.spawn_worker(tmp_path / "q", tmp_path / "cache")
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if queue.depth().done >= 1 or worker.poll() is not None:
                    break
                time.sleep(0.01)
            worker.send_signal(signal.SIGTERM)
            _stdout, stderr = worker.communicate(timeout=30)
        finally:
            if worker.poll() is None:  # pragma: no cover - cleanup
                worker.kill()
                worker.communicate()
        assert worker.returncode == 0, stderr
        assert queue.depth().claimed == 0  # settled, not abandoned
        # A successor (same cache) drains whatever is left.
        second = self.spawn_worker(tmp_path / "q", tmp_path / "cache")
        _stdout, stderr = second.communicate(timeout=120)
        assert second.returncode == 0, stderr
        depth = queue.depth()
        assert depth.done == 4
        assert depth.outstanding == 0
