"""Retry helper: backoff shape, budgets, giveup classes, metrics."""

import pytest

from repro.chaos import (
    DEFAULT_RETRY,
    RetryPolicy,
    backoff_s,
    retry_call,
)
from repro.errors import ChaosError
from repro.obs.metrics import get_registry


class TestBackoff:
    def test_exponential_and_capped(self):
        policy = RetryPolicy(base_s=0.01, cap_s=0.04)
        raws = [backoff_s(policy, n) for n in range(1, 6)]
        # jitter scales by [0.5, 1.5), so bound rather than pin
        assert 0.005 <= raws[0] < 0.015
        assert 0.01 <= raws[1] < 0.03
        assert 0.02 <= raws[2] < 0.06
        assert raws[3] < 0.06 and raws[4] < 0.06  # capped

    def test_jitter_is_deterministic(self):
        assert backoff_s(DEFAULT_RETRY, 2, "queue.write") == \
            backoff_s(DEFAULT_RETRY, 2, "queue.write")

    def test_jitter_decorrelates_sites_and_attempts(self):
        a = backoff_s(DEFAULT_RETRY, 2, "queue.write")
        b = backoff_s(DEFAULT_RETRY, 2, "cache.write")
        assert a != b

    def test_bad_policies_raise(self):
        with pytest.raises(ChaosError):
            RetryPolicy(attempts=0)
        with pytest.raises(ChaosError):
            RetryPolicy(base_s=-1)


class TestRetryCall:
    def test_first_success_never_sleeps(self):
        sleeps = []
        result = retry_call(lambda: 42, site="t", sleep=sleeps.append)
        assert result == 42
        assert sleeps == []

    def test_transient_failures_retried_to_success(self):
        sleeps = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        assert retry_call(flaky, site="t", sleep=sleeps.append) == "ok"
        assert calls["n"] == 3
        assert len(sleeps) == 2

    def test_budget_exhaustion_propagates_last_error(self):
        policy = RetryPolicy(attempts=3, base_s=0)

        def always():
            raise OSError("still broken")

        with pytest.raises(OSError, match="still broken"):
            retry_call(always, site="t", policy=policy,
                       sleep=lambda _s: None)

    def test_giveup_classes_bypass_the_budget(self):
        policy = RetryPolicy(attempts=5, base_s=0,
                             giveup_on=(FileNotFoundError,))
        calls = {"n": 0}

        def revoked():
            calls["n"] += 1
            raise FileNotFoundError("lease revoked")

        with pytest.raises(FileNotFoundError):
            retry_call(revoked, site="t", policy=policy,
                       sleep=lambda _s: None)
        assert calls["n"] == 1  # no retries: revoked is not flaky

    def test_unlisted_exceptions_propagate_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry_call(broken, site="t", sleep=lambda _s: None)
        assert calls["n"] == 1

    def test_performed_retries_are_counted(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return None

        retry_call(flaky, site="unit.test", sleep=lambda _s: None)
        metric = get_registry().counter(
            "repro_retries_total",
            "Transient failures retried, by site.",
            labels={"site": "unit.test"})
        assert metric.value == 2
