"""The chaos differential: an injected campaign converges to the
exact artefacts of an uninjected one.

Real worker subprocesses drain a real queue while a seeded chaos
policy (``$REPRO_CHAOS``) kills workers mid-job, injects EIO into
queue transactions, corrupts cache bytes and slows service clients.
An external supervisor re-queues expired leases and respawns dead
workers — after which the cache and manifest must be **bit-identical**
(modulo wall-clock timings) to a serial, fault-free campaign.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro.chaos as chaos
from repro.campaign.cache import ResultCache
from repro.campaign.manifest import CampaignSpec
from repro.campaign.queue import WorkQueue
from repro.campaign.runner import run_campaign
from repro.campaign.service import ArtifactService, ServiceServer

SMALL = {"observability_samples": 16, "ivc_trials": 2,
         "ivc_noise_samples": 2}

#: The pinned storm: worker kills, queue EIO, cache corruption, slow
#: service clients — all from one seed.  Changing any chaos-stream
#: derivation invalidates this pin on purpose.
CHAOS_SPEC = ("seed=13,worker.kill=0.4,queue.write=0.2,"
              "queue.heartbeat=0.2,queue.requeue=0.2,"
              "cache.write=0.2,cache.read=0.1,"
              "service.slow=1,slow_s=0.05")

SEEDS = (1, 2, 3)


def small_spec():
    return CampaignSpec(circuits=("s27",), seeds=SEEDS,
                        base=dict(SMALL), name="diff")


def spawn_worker(queue_dir, cache_dir, worker_id, chaos_spec):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CHAOS"] = chaos_spec
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", str(queue_dir),
         "--cache-dir", str(cache_dir), "--worker-id", worker_id,
         "--poll-s", "0.05", "--lease-ttl", "0.5", "--quiet"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def drain_under_chaos(queue_dir, cache_dir, chaos_spec,
                      workers=2, timeout_s=180):
    """Supervise ``workers`` chaos-injected processes to completion.

    Returns ``(exit codes seen, respawns)``.  The supervisor is the
    resilience story from the operator's side: re-queue expired
    leases, replace dead workers, repeat until the queue drains.
    """
    queue = WorkQueue(queue_dir)
    alive = {}
    exit_codes = []
    respawns = 0
    serial = 0
    deadline = time.monotonic() + timeout_s
    try:
        while time.monotonic() < deadline:
            for worker_id, proc in list(alive.items()):
                if proc.poll() is not None:
                    exit_codes.append(proc.returncode)
                    del alive[worker_id]
            depth = queue.depth()
            if depth.outstanding == 0 and not alive:
                break
            queue.requeue_expired()
            while len(alive) < workers and depth.outstanding > 0:
                worker_id = f"cw{serial}"
                serial += 1
                if serial > workers:
                    respawns += 1
                alive[worker_id] = spawn_worker(
                    queue_dir, cache_dir, worker_id, chaos_spec)
            time.sleep(0.05)
    finally:
        for proc in alive.values():  # pragma: no cover - timeout path
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
    return exit_codes, respawns


@pytest.fixture(scope="module")
def differential(tmp_path_factory):
    root = tmp_path_factory.mktemp("diff")
    # The ground truth: serial, fault-free.
    clean_cache = root / "clean-cache"
    clean_manifest = root / "clean-manifest.json"
    run_campaign(small_spec(), jobs=1, cache_dir=str(clean_cache),
                 manifest_path=str(clean_manifest))
    # The storm: concurrent subprocess workers under $REPRO_CHAOS.
    queue_dir = root / "queue"
    chaos_cache = root / "chaos-cache"
    WorkQueue(queue_dir).enqueue(small_spec(), lease_ttl_s=0.5)
    exit_codes, respawns = drain_under_chaos(
        queue_dir, chaos_cache, CHAOS_SPEC)
    chaos_manifest = root / "chaos-manifest.json"
    WorkQueue(queue_dir).write_manifest(str(chaos_manifest))
    return {"root": root, "queue_dir": queue_dir,
            "clean_cache": clean_cache, "chaos_cache": chaos_cache,
            "clean_manifest": clean_manifest,
            "chaos_manifest": chaos_manifest,
            "exit_codes": exit_codes, "respawns": respawns}


class TestConvergence:
    def test_zero_lost_jobs(self, differential):
        depth = WorkQueue(differential["queue_dir"]).depth()
        assert depth.done == len(SEEDS)
        assert depth.outstanding == 0
        assert depth.failed == 0

    def test_the_faults_were_real(self, differential):
        """The run actually weathered kills: at least one worker died
        (exit 137) and was replaced by the supervisor."""
        killed = [code for code in differential["exit_codes"]
                  if code == chaos.KILL_EXIT_CODE]
        assert killed, differential["exit_codes"]
        assert differential["respawns"] >= len(killed)

    def test_cache_keys_identical_to_clean_run(self, differential):
        clean = ResultCache(differential["clean_cache"]).entries()
        chaotic = ResultCache(differential["chaos_cache"]).entries()
        assert clean == chaotic
        assert len(clean) == len(SEEDS)

    def test_artefacts_bit_identical_modulo_timing(self, differential):
        a = ResultCache(differential["clean_cache"])
        b = ResultCache(differential["chaos_cache"])
        for key in a.entries():
            art_a, art_b = a.get(key), b.get(key)
            assert art_b is not None  # survived injected corruption
            art_a.pop("elapsed_s")
            art_b.pop("elapsed_s")
            assert art_a == art_b

    def test_manifest_identical_modulo_timing(self, differential):
        ma = json.loads(differential["clean_manifest"].read_text())
        mb = json.loads(differential["chaos_manifest"].read_text())
        assert ma["spec_digest"] == mb["spec_digest"]
        assert len(ma["jobs"]) == len(mb["jobs"]) == len(SEEDS)
        for ja, jb in zip(ma["jobs"], mb["jobs"]):
            for timing in ("wall_s", "phases"):
                ja.pop(timing, None)
                jb.pop(timing, None)
            # a job re-claimed after a kill-after-store completes from
            # cache; provenance may differ, the artefact cannot
            ja.pop("source", None)
            jb.pop("source", None)
            assert ja == jb

    def test_slow_service_clients_get_correct_artefacts(
            self, differential):
        """A service over the chaos-built cache, itself under the
        service.slow injection, still serves the exact artefact."""
        # Same base config as the campaign spec, so the service
        # derives the same cache keys the workers stored under.
        service = ArtifactService(
            ResultCache(differential["chaos_cache"]),
            base=dict(SMALL))
        chaos.enable(CHAOS_SPEC)
        with ServiceServer(service) as server:
            conn = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=30)
            try:
                conn.request("GET", "/flow/s27?seed=1")
                response = conn.getresponse()
                status, body = response.status, response.read()
            finally:
                conn.close()
        assert status == 200
        clean = ResultCache(differential["clean_cache"])
        [key] = [k for k in clean.entries()
                 if clean.get(k)["seed"] == 1]
        expected = clean.get(key)
        served = json.loads(body)
        served.pop("elapsed_s")
        expected.pop("elapsed_s")
        assert served == expected


class TestInjectionPin:
    """Same seed -> byte-for-byte the same injection sequence, even
    across processes."""

    DRIVER = (
        "import repro.chaos as chaos\n"
        f"chaos.enable({CHAOS_SPEC!r})\n"
        "chaos.rescope('pinned-worker')\n"
        "for _ in range(100):\n"
        "    try:\n"
        "        chaos.point('queue.write')\n"
        "    except OSError:\n"
        "        pass\n"
        "    chaos.mangle('cache.read', b'payload')\n"
        "    chaos.fires('worker.kill')\n"
        "print(repr(chaos.injection_log()))\n"
    )

    def run_driver(self):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-c", self.DRIVER],
                              env=env, capture_output=True, text=True,
                              timeout=60)
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_cross_process_injection_sequence_is_pinned(self):
        first = self.run_driver()
        second = self.run_driver()
        assert first == second
        assert "queue.write" in first  # the pin is not vacuous
