"""Worker pool under chaos kills: supervised respawn + re-dispatch."""

import pytest

import repro.chaos as chaos
from repro.campaign.pool import WorkerPool, WorkerPoolError


def square(x):
    return x * x


class TestRespawn:
    def test_map_survives_worker_kills(self):
        chaos.enable("seed=5,pool.task.kill=0.3")
        with WorkerPool(processes=3, initializer=None,
                        max_restarts=200) as pool:
            results = pool.map(square, range(24))
        assert results == [x * x for x in range(24)]
        assert pool._restarts > 0

    def test_results_stay_ordered_across_maps(self):
        chaos.enable("seed=5,pool.task.kill=0.25")
        with WorkerPool(processes=2, initializer=None,
                        max_restarts=200) as pool:
            first = pool.map(square, range(10))
            second = pool.map(square, range(10, 20))
        assert first == [x * x for x in range(10)]
        assert second == [x * x for x in range(10, 20)]

    def test_no_chaos_means_no_respawns(self):
        with WorkerPool(processes=2, initializer=None) as pool:
            assert pool.map(square, range(8)) == \
                [x * x for x in range(8)]
            assert pool._restarts == 0

    def test_exhausted_respawn_budget_raises(self):
        chaos.enable("seed=5,pool.task.kill=1")
        with WorkerPool(processes=2, initializer=None,
                        max_restarts=3) as pool:
            with pytest.raises(WorkerPoolError,
                               match="respawn budget"):
                pool.map(square, range(4))

    def test_negative_budget_rejected(self):
        with pytest.raises(WorkerPoolError, match="max_restarts"):
            WorkerPool(processes=1, max_restarts=-1)

    def test_task_exceptions_are_not_respawns(self):
        """An ordinary raising task is a relayed error, not a death."""

        with WorkerPool(processes=2, initializer=None) as pool:
            with pytest.raises(WorkerPoolError, match="ZeroDivision"):
                pool.map(_divide_by, [1, 0, 2])
            assert pool._restarts == 0


def _divide_by(x):
    return 1 // x
