"""Cache corruption handling: quarantine, digest checks, torn writes."""

import json

import pytest

import repro.chaos as chaos
from repro.campaign.cache import ResultCache
from repro.chaos import RetryPolicy, retry_call
from repro.obs.metrics import get_registry


def make_key(cache, tag="t"):
    return cache.key("flow", f"circuit-{tag}", f"config-{tag}", "code")


class TestQuarantine:
    def test_garbage_entry_is_a_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_key(cache)
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(key) is None
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1
        metric = get_registry().counter(
            "repro_cache_ops_total",
            "Result-cache operations by outcome "
            "(hit/miss/store/corrupt).",
            labels={"outcome": "corrupt"})
        assert metric.value == 1

    def test_digest_mismatch_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_key(cache)
        cache.put(key, {"rows": [1, 2, 3]})
        path = cache.path(key)
        entry = json.loads(path.read_text())
        entry["artefact"]["rows"] = [1, 2, 4]  # silent bit-flip
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None
        assert path.with_suffix(".corrupt").exists()
        assert cache.stats.corrupt == 1

    def test_legacy_entry_without_digest_still_trusted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_key(cache)
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps(
            {"key": key, "meta": {}, "artefact": {"rows": [1]}}))
        assert cache.get(key) == {"rows": [1]}
        assert cache.stats.hits == 1

    def test_quarantined_key_recomputes_then_heals(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_key(cache)
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_text("junk")
        assert cache.get(key) is None  # quarantined
        cache.put(key, {"rows": [7]})  # recomputed by the caller
        assert cache.get(key) == {"rows": [7]}
        assert path.with_suffix(".corrupt").exists()  # forensics kept

    def test_corrupt_files_invisible_to_entries_and_gc(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_key(cache)
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_text("junk")
        cache.get(key)
        assert cache.entries() == []
        cache.gc(0)  # must not touch the .corrupt file
        assert path.with_suffix(".corrupt").exists()


class TestInjectedCacheFaults:
    def test_read_mangling_degrades_to_quarantined_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = make_key(cache)
        cache.put(key, {"rows": list(range(32))})
        chaos.enable("seed=1,cache.read=1")
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert cache.path(key).with_suffix(".corrupt").exists()

    def test_torn_write_detected_on_read_back(self, tmp_path):
        """cache.write=1: every attempt is mangled; the read-back
        check catches it each time and the budget finally raises —
        a torn write NEVER lands under the key."""
        cache = ResultCache(tmp_path)
        key = make_key(cache)
        chaos.enable("seed=1,cache.write=1")
        with pytest.raises(OSError, match="torn cache write"):
            cache.put(key, {"rows": [1]})
        assert cache.get(key) is None
        assert cache.entries() == []

    def test_moderate_write_fault_rate_converges(self, tmp_path):
        """Seeded 30% mangle rate: the retry budget absorbs it and the
        stored entries are byte-perfect."""
        chaos.enable("seed=7,cache.write=0.3")
        cache = ResultCache(tmp_path)
        artefacts = {make_key(cache, f"t{i}"): {"rows": [i] * 8}
                     for i in range(16)}
        for key, artefact in artefacts.items():
            cache.put(key, artefact)
        # the injections really happened (log dies with the policy)
        assert any(site == "cache.write"
                   for site, _action in chaos.injection_log())
        chaos.disable()
        for key, artefact in artefacts.items():
            assert cache.get(key) == artefact
        assert cache.stats.corrupt == 0

    def test_flaky_filesystem_reads_retryable_by_caller(self, tmp_path):
        """A caller wrapping get() in retry_call rides out EIO-style
        flakiness without special-casing."""
        cache = ResultCache(tmp_path)
        key = make_key(cache)
        cache.put(key, {"rows": [5]})
        calls = {"n": 0}

        def flaky_get():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("injected EIO")
            return cache.get(key)

        result = retry_call(flaky_get, site="cache.read",
                            policy=RetryPolicy(attempts=4, base_s=0),
                            sleep=lambda _s: None)
        assert result == {"rows": [5]}
