"""Chaos policy: spec grammar, precedence, determinism, primitives."""

import errno
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.chaos as chaos
from repro import runtime
from repro.chaos import ChaosPolicy
from repro.errors import ChaosError, ConfigError
from repro.obs.metrics import get_registry


class TestSpecGrammar:
    def test_parse_sites_knobs_and_patterns(self):
        policy = ChaosPolicy.parse(
            "seed=7,queue.*=0.2,cache.write=0.5,slow_s=0.01,hang_s=2")
        assert policy.seed == 7
        assert policy.rate("queue.write") == 0.2
        assert policy.rate("queue.rename") == 0.2
        assert policy.rate("cache.write") == 0.5
        assert policy.rate("cache.read") == 0.0
        assert policy.slow_s == 0.01
        assert policy.hang_s == 2.0

    def test_later_entries_override_earlier_per_site(self):
        policy = ChaosPolicy.parse("queue.*=0.2,queue.write=0.9")
        assert policy.rate("queue.write") == 0.9
        assert policy.rate("queue.rename") == 0.2

    def test_to_spec_round_trips(self):
        policy = ChaosPolicy.parse("seed=3,pool.task.kill=0.25")
        assert ChaosPolicy.parse(policy.to_spec()) == policy

    @pytest.mark.parametrize("spec, fragment", [
        ("", "empty chaos spec"),
        ("bogus", "expected key=value"),
        ("nosuch.site=0.5", "matches no known site"),
        ("queue.write=1.5", "must be in [0, 1]"),
        ("queue.write=lots", "must be a number"),
        ("seed=x", "must be a number"),
    ])
    def test_bad_specs_raise(self, spec, fragment):
        with pytest.raises(ChaosError, match=None) as excinfo:
            ChaosPolicy.parse(spec)
        assert fragment in str(excinfo.value)

    def test_chaos_error_is_a_config_error(self):
        with pytest.raises(ConfigError):
            ChaosPolicy.parse("junk")

    def test_runtime_options_validate_eagerly(self):
        with pytest.raises(ConfigError):
            runtime.RuntimeOptions(chaos="bogus")


class TestResolutionPrecedence:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert chaos.resolve_chaos() is None
        assert not chaos.chaos_enabled()

    def test_env_resolves(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "seed=1,queue.write=0.5")
        assert chaos.resolve_chaos() == "seed=1,queue.write=0.5"

    def test_session_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "seed=1,queue.write=0.5")
        with runtime.using(chaos="seed=2,cache.read=0.1"):
            assert chaos.resolve_chaos() == "seed=2,cache.read=0.1"

    def test_argument_beats_session(self, monkeypatch):
        with runtime.using(chaos="seed=2,cache.read=0.1"):
            assert chaos.resolve_chaos("seed=3,queue.write=1") == \
                "seed=3,queue.write=1"

    def test_empty_string_pins_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "seed=1,queue.write=0.5")
        with runtime.using(chaos=""):
            assert chaos.resolve_chaos() is None

    def test_using_scopes_install_and_uninstall(self):
        assert not chaos.chaos_enabled()
        with runtime.using(chaos="seed=5,queue.write=0.5"):
            assert chaos.chaos_enabled()
            assert chaos.active_policy().seed == 5
        assert not chaos.chaos_enabled()

    def test_explicit_enable_survives_session_reset(self):
        chaos.enable("seed=9,queue.write=0.5")
        runtime.set_session_defaults(runtime.RuntimeOptions())
        assert chaos.chaos_enabled()
        assert chaos.active_policy().seed == 9

    def test_resync_of_unchanged_spec_preserves_streams(self):
        with runtime.using(chaos="seed=1,queue.write=0.5"):
            for _ in range(20):
                try:
                    chaos.point("queue.write")
                except OSError:
                    pass
            before = chaos.injection_log()
            # An unrelated session patch must not reset the streams.
            runtime.set_session_defaults(backend=None)
            assert chaos.injection_log() == before


class TestDeterminism:
    def drive(self, spec):
        chaos.enable(spec)
        for _ in range(200):
            try:
                chaos.point("queue.write")
            except OSError:
                pass
            chaos.mangle("cache.read", b"payload-bytes")
        return chaos.injection_log()

    def test_same_seed_same_injection_sequence(self):
        spec = "seed=11,queue.write=0.3,cache.read=0.2"
        assert self.drive(spec) == self.drive(spec)

    def test_different_seed_different_sequence(self):
        a = self.drive("seed=11,queue.write=0.3,cache.read=0.2")
        b = self.drive("seed=12,queue.write=0.3,cache.read=0.2")
        assert a != b

    def test_sites_draw_independent_streams(self):
        log = self.drive("seed=11,queue.write=0.3,cache.read=0.2")
        sites = {site for site, _action in log}
        assert sites == {"queue.write", "cache.read"}

    def test_rescope_is_deterministic_but_decorrelated(self):
        def draws(scope):
            chaos.enable("seed=4,queue.write=0.5")
            chaos.rescope(scope)
            fired = []
            for _ in range(64):
                try:
                    chaos.point("queue.write")
                    fired.append(False)
                except OSError:
                    fired.append(True)
            return fired

        assert draws("w0") == draws("w0")
        assert draws("w0") != draws("w1")

    def test_rescope_without_policy_is_a_noop(self):
        chaos.rescope("anything")
        assert not chaos.chaos_enabled()


class TestPrimitives:
    def test_disabled_primitives_are_noops(self):
        chaos.point("queue.write")
        assert chaos.mangle("cache.read", b"abc") == b"abc"
        assert chaos.delay("service.slow") == 0.0
        assert not chaos.fires("service.reset")

    def test_point_raises_tagged_oserror_at_rate_one(self):
        chaos.enable("seed=1,queue.write=1")
        with pytest.raises(OSError) as excinfo:
            chaos.point("queue.write")
        assert "chaos[queue.write]" in str(excinfo.value)
        assert excinfo.value.errno in (errno.EIO, errno.ENOSPC)

    def test_unknown_site_raises_even_when_enabled(self):
        chaos.enable("seed=1,queue.write=1")
        with pytest.raises(ChaosError, match="unknown chaos site"):
            chaos.point("not.a.site")

    def test_mangle_corrupts_at_rate_one(self):
        chaos.enable("seed=1,cache.write=1")
        data = b"x" * 64
        assert chaos.mangle("cache.write", data) != data

    def test_delay_returns_slow_s_at_rate_one(self):
        chaos.enable("seed=1,service.slow=1,slow_s=0.125")
        assert chaos.delay("service.slow") == 0.125

    def test_zero_rate_site_never_fires(self):
        chaos.enable("seed=1,queue.write=0")
        for _ in range(100):
            chaos.point("queue.write")
        assert chaos.injection_log() == []

    def test_fired_injections_counted(self):
        chaos.enable("seed=1,queue.write=1")
        for _ in range(3):
            with pytest.raises(OSError):
                chaos.point("queue.write")
        metric = get_registry().counter(
            "repro_chaos_injections_total",
            "Chaos faults injected, by site.",
            labels={"site": "queue.write"})
        assert metric.value == 3

    def test_kill_site_exits_the_process_with_137(self, tmp_path):
        script = (
            "import repro.chaos as chaos\n"
            "chaos.enable('seed=1,worker.kill=1')\n"
            "chaos.point('worker.kill')\n"
            "print('unreachable')\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, timeout=60)
        assert proc.returncode == chaos.KILL_EXIT_CODE
        assert "unreachable" not in proc.stdout
