"""Series-stack leakage solver — the numerical core of the HSPICE substitute.

A static CMOS gate that is logically stable has exactly one non-conducting
(*blocked*) network between the rails; the subthreshold current of the cell
is the current through that blocked network.  This module solves the
internal node voltages of a blocked series stack so that current
continuity holds through every OFF device (paper Section 3.B points out
that series transistors, unlike parallel ones, need exactly this solve).

Conventions
-----------
Stacks are described **from the rail towards the output node**:

* NAND pull-down: index 0 is the NMOS whose source is GND;
* NOR pull-up: index 0 is the PMOS whose source is VDD.

PMOS stacks are solved in a mirrored frame (``w = VDD - v``) where they
obey the NMOS equations with the PMOS parameter set, so one solver serves
both polarities.

Physics captured:

* equal-current constraint through series OFF devices (the *stack effect*:
  two OFF devices leak an order of magnitude less than one);
* pass-transistor degradation: an ON run adjacent to the output rail only
  reaches ``V_rail_far - VT``, reducing the DIBL seen by the OFF device
  below it — this is what makes NAND2 "01" leak 3-4x less than "10"
  (paper Figure 2: 73 nA vs 264 nA).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from scipy.optimize import brentq

from repro.errors import CharacterizationError
from repro.spice.bsim import subthreshold_current
from repro.spice.constants import TechParams

__all__ = ["StackSolution", "blocked_stack_current", "parallel_off_current"]

_EPS = 1e-9


@dataclasses.dataclass(frozen=True)
class StackSolution:
    """Result of a blocked-stack solve.

    Attributes
    ----------
    current_na:
        Subthreshold current through the stack (nA).
    node_voltages:
        ``k + 1`` node voltages from the rail (index 0) to the output node
        (index k), in the *rail frame* (0 at the stack's own rail, rising
        towards the far rail).  For PMOS stacks convert with
        ``v_actual = vdd - v_frame``.
    effective_top:
        The voltage actually presented to the reduced OFF-device chain
        (``vdd`` or ``vdd - vt`` under pass degradation).
    """

    current_na: float
    node_voltages: tuple[float, ...]
    effective_top: float


def _device_current(params: TechParams, v_lo: float, v_hi: float,
                    width: float, device: str) -> float:
    """Current of one OFF device with source ``v_lo``, drain ``v_hi``."""
    return subthreshold_current(
        params, vgs=-v_lo, vds=v_hi - v_lo, vsb=v_lo,
        width=width, device=device)


def _propagate(params: TechParams, current: float, v_lo: float,
               width: float, device: str, v_cap: float) -> float | None:
    """Upper node voltage of an OFF device carrying ``current`` from
    ``v_lo``; ``None`` if even ``v_cap`` cannot sustain it."""
    if _device_current(params, v_lo, v_cap, width, device) < current:
        return None
    return brentq(
        lambda v: _device_current(params, v_lo, v, width, device) - current,
        v_lo + _EPS, v_cap, xtol=1e-12)


def _solve_chain(params: TechParams, n_off: int, v_top: float,
                 width: float, device: str) -> tuple[float, list[float]]:
    """Equal-current solve for ``n_off`` identical OFF devices in series
    between 0 and ``v_top``.  Returns (current, internal node voltages)."""
    if n_off == 1:
        return _device_current(params, 0.0, v_top, width, device), []

    v_cap = v_top + 1.0  # headroom for intermediate propagation

    def top_error(v1: float) -> float:
        """Mismatch at the top node if the bottom node sits at ``v1``."""
        current = _device_current(params, 0.0, v1, width, device)
        v = v1
        for _ in range(n_off - 1):
            nxt = _propagate(params, current, v, width, device, v_cap)
            if nxt is None:
                return v_cap - v_top  # overshoot: v1 too large
            v = nxt
        return v - v_top

    lo, hi = _EPS, v_top - _EPS
    if top_error(lo) > 0 or top_error(hi) < 0:
        raise CharacterizationError(
            f"stack solve bracket failed (n_off={n_off}, v_top={v_top})")
    v1 = brentq(top_error, lo, hi, xtol=1e-12)

    current = _device_current(params, 0.0, v1, width, device)
    internal = [v1]
    v = v1
    for _ in range(n_off - 2):
        v = _propagate(params, current, v, width, device, v_cap)
        internal.append(v)
    return current, internal


def blocked_stack_current(params: TechParams, gates_on: Sequence[bool],
                          width: float, device: str = "n") -> StackSolution:
    """Solve a blocked series stack.

    Parameters
    ----------
    params:
        Technology point.
    gates_on:
        Per-device ON flags, ordered **rail -> output**.  At least one
        device must be OFF (otherwise the network conducts and there is no
        subthreshold leakage through it).
    width:
        Width of every device in the stack (series devices share sizing).
    device:
        ``"n"`` or ``"p"``; PMOS stacks are solved in the mirrored frame.
    """
    flags = list(gates_on)
    if not flags:
        raise CharacterizationError("empty stack")
    if all(flags):
        raise CharacterizationError("stack conducts; not blocked")

    vdd = params.vdd
    vt = params.vt0_n if device == "n" else params.vt0_p
    off_idx = [i for i, on in enumerate(flags) if not on]
    first_off, last_off = off_idx[0], off_idx[-1]
    n_off = len(off_idx)

    # Pass degradation: ON devices between the topmost OFF device and the
    # output node can only pull the intermediate node to vdd - vt.
    has_on_above = last_off < len(flags) - 1
    v_top = vdd - vt if has_on_above else vdd
    if v_top <= 0:
        raise CharacterizationError("v_top <= 0; check vt vs vdd")

    current, internal = _solve_chain(params, n_off, v_top, width, device)

    # Reconstruct all k+1 node voltages in the rail frame.  ON runs below
    # the first OFF device collapse to 0; ON runs between OFF devices
    # collapse onto the lower solved node; ON runs above collapse to v_top;
    # the output node itself is at vdd.
    drops = internal + [v_top]          # upper node of each OFF device
    nodes = [0.0]
    off_seen = 0
    for i, on in enumerate(flags):
        if on:
            nodes.append(nodes[-1])
        else:
            nodes.append(drops[off_seen])
            off_seen += 1
    nodes[-1] = vdd  # the true output node sits at the far rail
    return StackSolution(current_na=current,
                         node_voltages=tuple(nodes),
                         effective_top=v_top)


def parallel_off_current(params: TechParams, n_off: int, width: float,
                         device: str = "n") -> float:
    """Subthreshold current of ``n_off`` parallel OFF devices at full VDS.

    This is the easy case the paper mentions (e.g. the pull-up network of
    an n-input NAND with output low): every device sees the same VDS = VDD,
    so currents simply add.
    """
    if n_off < 0:
        raise CharacterizationError("n_off must be >= 0")
    single = subthreshold_current(
        params, vgs=0.0, vds=params.vdd, vsb=0.0,
        width=width, device=device)
    return n_off * single
