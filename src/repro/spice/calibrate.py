"""Calibration of the analytical device model to the paper's Figure 2.

The paper anchors its leakage tables in HSPICE BSIM4 runs at 45 nm / 0.9 V;
the only published numbers are the NAND2 table of Figure 2 (78 / 73 / 264 /
408 nA for patterns 00 / 01 / 10 / 11).  We fit the five free scale
parameters of :class:`~repro.spice.constants.TechParams` —
``s_n, s_p, g_n, g_p, eta_dibl`` — so the analytical NAND2 table matches
those four numbers (the system is one-parameter under-determined; a mild
prior on the gate-leakage ratio ``g_n/g_p`` picks the physical branch where
electron tunnelling dominates hole tunnelling).

The result of this fit is frozen into the defaults of
:func:`~repro.spice.constants.default_tech`; a unit test asserts the two
stay in sync.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import least_squares

from repro.errors import CharacterizationError
from repro.spice.characterize import characterize_nand
from repro.spice.constants import PAPER_NAND2_LEAKAGE_NA, TechParams

__all__ = ["calibrate_to_figure2", "nand2_error", "PAPER_NAND2_LEAKAGE_NA"]

_PATTERNS = ((0, 0), (0, 1), (1, 0), (1, 1))

# Prior: electron tunnelling is roughly an order of magnitude stronger
# than hole tunnelling at equal oxide field.
_PRIOR_LOG_G_RATIO = math.log(6.0)
_PRIOR_WEIGHT = 0.05


def nand2_error(params: TechParams,
                targets: dict[tuple[int, int], float] | None = None
                ) -> float:
    """Maximum relative error of the model NAND2 table vs ``targets``."""
    targets = targets or PAPER_NAND2_LEAKAGE_NA
    table = characterize_nand(2, params)
    return max(abs(table[p] - targets[p]) / targets[p] for p in _PATTERNS)


def calibrate_to_figure2(
    base: TechParams | None = None,
    targets: dict[tuple[int, int], float] | None = None,
    tolerance: float = 0.02,
) -> TechParams:
    """Fit ``(s_n, s_p, g_n, g_p, eta_dibl)`` to the Figure 2 NAND2 table.

    Parameters
    ----------
    base:
        Starting technology point; only the five fitted fields change.
    targets:
        Pattern -> nA targets (defaults to the paper's Figure 2).
    tolerance:
        Maximum acceptable relative error per pattern; exceeded -> raise.

    Returns
    -------
    TechParams
        The calibrated technology point.
    """
    base = base or TechParams()
    targets = targets or PAPER_NAND2_LEAKAGE_NA
    target_vec = np.array([targets[p] for p in _PATTERNS])

    def unpack(x: np.ndarray) -> TechParams:
        s_n, s_p, g_n, g_p, eta = np.exp(x[:4]).tolist() + [float(x[4])]
        return base.replace(s_n=s_n, s_p=s_p, g_n=g_n, g_p=g_p,
                            eta_dibl=eta)

    def residuals(x: np.ndarray) -> np.ndarray:
        params = unpack(x)
        table = characterize_nand(2, params)
        model = np.array([table[p] for p in _PATTERNS])
        fit = np.log(model) - np.log(target_vec)
        prior = _PRIOR_WEIGHT * ((x[2] - x[3]) - _PRIOR_LOG_G_RATIO)
        return np.append(fit, prior)

    x0 = np.array([
        math.log(base.s_n), math.log(base.s_p),
        math.log(base.g_n), math.log(base.g_p),
        base.eta_dibl,
    ])
    lower = np.array([math.log(1.0)] * 4 + [0.01])
    upper = np.array([math.log(1e7)] * 4 + [0.45])
    x0 = np.clip(x0, lower + 1e-9, upper - 1e-9)
    result = least_squares(residuals, x0, bounds=(lower, upper),
                           xtol=1e-14, ftol=1e-14, gtol=1e-14)
    fitted = unpack(result.x)
    error = nand2_error(fitted, targets)
    if error > tolerance:
        raise CharacterizationError(
            f"calibration failed: max relative error {error:.3%} "
            f"exceeds tolerance {tolerance:.1%}")
    return fitted
