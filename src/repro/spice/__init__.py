"""Analytical device models and cell leakage characterisation.

This package substitutes the paper's HSPICE BSIM4 runs: paper eq. (2)
(subthreshold), eq. (4) (gate direct tunnelling), a numerical series-stack
solver, and per-cell per-pattern leakage tables calibrated to Figure 2.
"""

from repro.spice.bsim import (
    gate_leakage_off,
    gate_leakage_on,
    subthreshold_current,
    tunneling_current_density,
)
from repro.spice.calibrate import calibrate_to_figure2, nand2_error
from repro.spice.characterize import (
    MAX_CELL_ARITY,
    cell_leakage_table,
    characterize_inv,
    characterize_nand,
    characterize_nor,
)
from repro.spice.constants import (
    PAPER_NAND2_LEAKAGE_NA,
    TechParams,
    default_tech,
    nmos_width,
    pmos_width,
)
from repro.spice.stack import (
    StackSolution,
    blocked_stack_current,
    parallel_off_current,
)

__all__ = [
    "TechParams",
    "default_tech",
    "nmos_width",
    "pmos_width",
    "PAPER_NAND2_LEAKAGE_NA",
    "subthreshold_current",
    "tunneling_current_density",
    "gate_leakage_on",
    "gate_leakage_off",
    "StackSolution",
    "blocked_stack_current",
    "parallel_off_current",
    "characterize_inv",
    "characterize_nand",
    "characterize_nor",
    "cell_leakage_table",
    "MAX_CELL_ARITY",
    "calibrate_to_figure2",
    "nand2_error",
]
