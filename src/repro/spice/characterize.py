"""Per-pattern leakage characterisation of library cells.

The paper avoids "complex calculations for estimation of total leakage" by
tabulating HSPICE BSIM4 results per gate and input pattern.  This module
produces the same artefact — ``{input pattern: leakage current in nA}``
per cell — from the analytical device models:

* NAND/NOR/INV are characterised at transistor level: subthreshold current
  through the blocked network (series stacks solved numerically by
  :mod:`repro.spice.stack`) plus gate direct tunnelling of every device,
  with oxide voltages taken from the solved node potentials.
* Composite cells (BUFF, AND, OR, XOR, XNOR, MUX2) are characterised by
  structural composition: evaluate the internal nodes of a small
  NAND/INV implementation and sum the primitive tables.

Pin convention (important for the paper's input-reordering step): for a
NAND, ``inputs[0]`` gates the NMOS nearest **ground**; for a NOR,
``inputs[0]`` gates the PMOS nearest **VDD**.  Under this convention the
NAND2 pattern ``(0, 1)`` is the low-leakage single-off state (73 nA in
Figure 2) and ``(1, 0)`` the high one (264 nA).
"""

from __future__ import annotations

import functools
import itertools
from collections.abc import Sequence

from repro.errors import CharacterizationError
from repro.netlist.gates import GateType, eval_gate
from repro.spice.bsim import gate_leakage_off, gate_leakage_on
from repro.spice.constants import (
    TechParams,
    default_tech,
    nmos_width,
    pmos_width,
)
from repro.spice.stack import blocked_stack_current, parallel_off_current

__all__ = [
    "characterize_inv",
    "characterize_nand",
    "characterize_nor",
    "cell_leakage_table",
    "MAX_CELL_ARITY",
]

#: Largest stack depth characterised at transistor level (NAND4 / NOR4).
MAX_CELL_ARITY = 4

LeakageTable = dict[tuple[int, ...], float]


# --------------------------------------------------------------------- #
# transistor-level primitives
# --------------------------------------------------------------------- #

def characterize_nand(k: int, params: TechParams | None = None
                      ) -> LeakageTable:
    """Leakage table of a ``k``-input NAND (patterns are ``(a0..ak-1)``)."""
    params = params or default_tech()
    if not 1 <= k <= MAX_CELL_ARITY:
        raise CharacterizationError(f"NAND arity {k} unsupported")
    w_n = nmos_width(k)
    w_p = pmos_width(1)
    table: LeakageTable = {}
    for pattern in itertools.product((0, 1), repeat=k):
        table[pattern] = _nand_state_leakage(params, pattern, w_n, w_p)
    return table


def _nand_state_leakage(params: TechParams, pattern: Sequence[int],
                        w_n: float, w_p: float) -> float:
    vdd = params.vdd
    total = 0.0
    if all(pattern):
        # Output 0: pull-up (parallel PMOS, all OFF) is blocked.
        total += parallel_off_current(params, len(pattern), w_p, "p")
        for _ in pattern:
            # Every NMOS is ON with its channel at ground.
            total += gate_leakage_on(params, vdd, w_n, "n")
            # Every PMOS is OFF with |Vgd| = VDD (gate at VDD, drain at 0).
            total += gate_leakage_off(params, vdd, w_p, "p")
        return total

    # Output 1: pull-down stack (rail->output == pattern order) is blocked.
    solution = blocked_stack_current(
        params, [bool(v) for v in pattern], w_n, "n")
    total += solution.current_na
    nodes = solution.node_voltages
    for i, value in enumerate(pattern):
        if value:  # ON NMOS: channel sits at its source node
            total += gate_leakage_on(params, vdd - nodes[i], w_n, "n")
        else:      # OFF NMOS: edge tunnelling at the drain overlap
            total += gate_leakage_off(params, nodes[i + 1], w_n, "n")
    for value in pattern:
        if value == 0:  # ON PMOS, full oxide drop
            total += gate_leakage_on(params, vdd, w_p, "p")
        # OFF PMOS has gate and drain both at VDD: no tunnelling drop.
    return total


def characterize_nor(k: int, params: TechParams | None = None
                     ) -> LeakageTable:
    """Leakage table of a ``k``-input NOR (patterns are ``(a0..ak-1)``)."""
    params = params or default_tech()
    if not 1 <= k <= MAX_CELL_ARITY:
        raise CharacterizationError(f"NOR arity {k} unsupported")
    w_n = nmos_width(1)
    w_p = pmos_width(k)
    table: LeakageTable = {}
    for pattern in itertools.product((0, 1), repeat=k):
        table[pattern] = _nor_state_leakage(params, pattern, w_n, w_p)
    return table


def _nor_state_leakage(params: TechParams, pattern: Sequence[int],
                       w_n: float, w_p: float) -> float:
    vdd = params.vdd
    total = 0.0
    if not any(pattern):
        # Output 1: pull-down (parallel NMOS, all OFF) is blocked.
        total += parallel_off_current(params, len(pattern), w_n, "n")
        for _ in pattern:
            total += gate_leakage_on(params, vdd, w_p, "p")   # ON PMOS
            total += gate_leakage_off(params, vdd, w_n, "n")  # OFF NMOS EDT
        return total

    # Output 0: pull-up stack blocked.  PMOS is ON when its input is 0.
    # Solved in the mirrored frame: frame voltage w = VDD - v.
    solution = blocked_stack_current(
        params, [v == 0 for v in pattern], w_p, "p")
    total += solution.current_na
    nodes = solution.node_voltages  # frame voltages, rail (VDD) at index 0
    for i, value in enumerate(pattern):
        if value == 0:  # ON PMOS: |Vox| = |0 - Vsource| = vdd - frame node
            total += gate_leakage_on(params, vdd - nodes[i], w_p, "p")
        else:           # OFF PMOS: |Vgd| = vdd - (vdd - frame drain)
            total += gate_leakage_off(params, nodes[i + 1], w_p, "p")
    for value in pattern:
        if value == 1:  # ON NMOS pulling the output low
            total += gate_leakage_on(params, vdd, w_n, "n")
        # OFF NMOS: gate 0, drain 0 -> no drop.
    return total


def characterize_inv(params: TechParams | None = None) -> LeakageTable:
    """Leakage table of an inverter, patterns ``(0,)`` and ``(1,)``."""
    params = params or default_tech()
    vdd = params.vdd
    w_n = nmos_width(1)
    w_p = pmos_width(1)
    off_n = blocked_stack_current(params, [False], w_n, "n").current_na
    off_p = blocked_stack_current(params, [False], w_p, "p").current_na
    low_in = (off_n
              + gate_leakage_off(params, vdd, w_n, "n")
              + gate_leakage_on(params, vdd, w_p, "p"))
    high_in = (off_p
               + gate_leakage_off(params, vdd, w_p, "p")
               + gate_leakage_on(params, vdd, w_n, "n"))
    return {(0,): low_in, (1,): high_in}


# --------------------------------------------------------------------- #
# composite cells
# --------------------------------------------------------------------- #

# Each composite is a list of (node, kind, input node names); "kind" refers
# to a primitive characterised above.  Cell inputs are named i0, i1, ...
_Composite = list[tuple[str, str, tuple[str, ...]]]


def _xor2(a: str, b: str, out: str, tag: str) -> _Composite:
    """Four-NAND XOR2 implementation."""
    m = f"{tag}_m"
    p = f"{tag}_p"
    q = f"{tag}_q"
    return [
        (m, "NAND2", (a, b)),
        (p, "NAND2", (a, m)),
        (q, "NAND2", (b, m)),
        (out, "NAND2", (p, q)),
    ]


def _composite_structure(gtype: GateType, arity: int) -> _Composite:
    """NAND/NOR/INV implementation of a composite cell."""
    ins = [f"i{k}" for k in range(arity)]
    if gtype is GateType.BUFF:
        return [("t0", "INV", (ins[0],)), ("out", "INV", ("t0",))]
    if gtype is GateType.AND:
        return [("t0", f"NAND{arity}", tuple(ins)), ("out", "INV", ("t0",))]
    if gtype is GateType.OR:
        return [("t0", f"NOR{arity}", tuple(ins)), ("out", "INV", ("t0",))]
    if gtype in (GateType.XOR, GateType.XNOR):
        structure: _Composite = []
        acc = ins[0]
        for idx, nxt in enumerate(ins[1:]):
            out = f"x{idx}"
            structure.extend(_xor2(acc, nxt, out, f"s{idx}"))
            acc = out
        if gtype is GateType.XNOR:
            structure.append(("out", "INV", (acc,)))
        else:
            structure.append(("out", "BUFREF", (acc,)))  # alias, no cell
        return structure
    if gtype is GateType.MUX2:
        # inputs: (select, d0, d1); out = sel ? d1 : d0
        return [
            ("sb", "INV", ("i0",)),
            ("u", "NAND2", ("i1", "sb")),
            ("v", "NAND2", ("i2", "i0")),
            ("out", "NAND2", ("u", "v")),
        ]
    raise CharacterizationError(f"no composite structure for {gtype}")


_PRIM_EVAL = {
    "INV": GateType.NOT,
    "NAND2": GateType.NAND, "NAND3": GateType.NAND, "NAND4": GateType.NAND,
    "NOR2": GateType.NOR, "NOR3": GateType.NOR, "NOR4": GateType.NOR,
}


def _primitive_table(kind: str, params: TechParams) -> LeakageTable:
    if kind == "INV":
        return characterize_inv(params)
    if kind.startswith("NAND"):
        return characterize_nand(int(kind[4:]), params)
    if kind.startswith("NOR"):
        return characterize_nor(int(kind[3:]), params)
    raise CharacterizationError(f"unknown primitive {kind!r}")


def _characterize_composite(gtype: GateType, arity: int,
                            params: TechParams) -> LeakageTable:
    structure = _composite_structure(gtype, arity)
    prim_tables = {
        kind: _primitive_table(kind, params)
        for _name, kind, _ins in structure if kind != "BUFREF"
    }
    table: LeakageTable = {}
    for pattern in itertools.product((0, 1), repeat=arity):
        values = {f"i{k}": v for k, v in enumerate(pattern)}
        leak = 0.0
        for name, kind, in_names in structure:
            in_values = tuple(values[n] for n in in_names)
            if kind == "BUFREF":
                values[name] = in_values[0]
                continue
            values[name] = eval_gate(_PRIM_EVAL[kind], in_values)
            leak += prim_tables[kind][in_values]
        table[pattern] = leak
    return table


# --------------------------------------------------------------------- #
# dispatcher
# --------------------------------------------------------------------- #

@functools.lru_cache(maxsize=None)
def cell_leakage_table(gtype: GateType, arity: int,
                       params: TechParams | None = None) -> LeakageTable:
    """Leakage table (pattern tuple -> nA) for any supported cell.

    ``params=None`` uses the calibrated default technology.  Results are
    cached per ``(gtype, arity, params)``; :class:`TechParams` is frozen
    and hashable, so distinct corners get distinct cache slots.
    """
    params = params or default_tech()
    if gtype is GateType.NAND:
        return characterize_nand(arity, params)
    if gtype is GateType.NOR:
        return characterize_nor(arity, params)
    if gtype is GateType.NOT:
        return characterize_inv(params)
    if gtype in (GateType.CONST0, GateType.CONST1):
        return {(): 0.0}
    if gtype is GateType.DFF:
        # Rough constant: a transmission-gate flop is ~4 inverters plus two
        # NAND2-equivalents of clocked leakage; not pattern-resolved and
        # excluded from the paper's combinational-part numbers anyway.
        inv = characterize_inv(params)
        nand = characterize_nand(2, params)
        mean_inv = sum(inv.values()) / len(inv)
        mean_nand = sum(nand.values()) / len(nand)
        flat = 4.0 * mean_inv + 2.0 * mean_nand
        return {(0,): flat, (1,): flat}
    if gtype in (GateType.BUFF, GateType.AND, GateType.OR,
                 GateType.XOR, GateType.XNOR, GateType.MUX2):
        if gtype is GateType.MUX2:
            arity = 3
        return _characterize_composite(gtype, arity, params)
    raise CharacterizationError(f"cannot characterise {gtype}")
