"""Device-level current equations (paper equations (2) and (4)).

Two mechanisms are modelled, matching the paper's Section 3.B:

* **Subthreshold conduction** — BSIM-style exponential with body effect and
  DIBL (eq. 2).  Expressed per unit transistor width; the scale ``A`` of
  the paper's eq. (2)/(3) is the calibrated ``s_n`` / ``s_p`` parameter.
* **Gate direct tunnelling** — Schuegraf-Hu form (eq. 4), again per unit
  width with calibrated scale.

Currents are in nA, voltages in V.  Functions accept floats (the stack
solver operates on scalars).
"""

from __future__ import annotations

import math

from repro.spice.constants import TechParams

__all__ = [
    "subthreshold_current",
    "tunneling_current_density",
    "gate_leakage_on",
    "gate_leakage_off",
]


def subthreshold_current(params: TechParams, vgs: float, vds: float,
                         vsb: float, width: float,
                         device: str = "n") -> float:
    """Subthreshold drain current of one transistor (paper eq. 2), in nA.

    Parameters use NMOS sign conventions; for ``device="p"`` pass the
    magnitudes (|VGS|, |VSD|, |VBS|) — the PMOS is evaluated as a mirrored
    NMOS with its own scale and threshold.

    The current is::

        S * W * exp((VGS - VT0 - delta*VSB + eta*VDS) / (n kT/q))
            * (1 - exp(-VDS / (kT/q)))
    """
    if vds <= 0.0:
        return 0.0
    if device == "n":
        scale, vt0 = params.s_n, params.vt0_n
    else:
        scale, vt0 = params.s_p, params.vt0_p
    exponent = (vgs - vt0 - params.delta_body * vsb
                + params.eta_dibl * vds) / params.n_vt
    drain_term = 1.0 - math.exp(-vds / params.thermal_voltage)
    return scale * width * math.exp(exponent) * drain_term


def tunneling_current_density(params: TechParams, vox: float,
                              device: str = "n") -> float:
    """Direct-tunnelling gate current per unit width (paper eq. 4), in nA.

    ``vox`` is the magnitude of the oxide voltage drop.  The barrier height
    differs between electron tunnelling (NMOS, ~3.1 eV) and hole tunnelling
    (PMOS, ~4.5 eV), which is what makes NMOS gate leakage dominate.
    """
    if vox <= 0.0:
        return 0.0
    if device == "n":
        scale, phi = params.g_n, params.phi_ox_n
    else:
        scale, phi = params.g_p, params.phi_ox_p
    ratio = vox / phi
    # Real continuation of (1 - ratio)^(3/2) for ratio > 1 keeps the
    # exponent smooth if a caller probes beyond the barrier.
    t = 1.0 - ratio
    t32 = math.copysign(abs(t) ** 1.5, t)
    exponent = -params.b_tunnel * (1.0 - t32) / vox
    # Normalise so that the calibrated scale equals the current at
    # vox = vdd exactly (the (vox/vdd)^2 prefactor keeps eq. 4's shape).
    shape = (vox / params.vdd) ** 2 * math.exp(
        exponent - _exponent_at_vdd(params, phi))
    return scale * shape


def _exponent_at_vdd(params: TechParams, phi: float) -> float:
    ratio = params.vdd / phi
    t = 1.0 - ratio
    t32 = math.copysign(abs(t) ** 1.5, t)
    return -params.b_tunnel * (1.0 - t32) / params.vdd


def gate_leakage_on(params: TechParams, vox: float, width: float,
                    device: str = "n") -> float:
    """Gate tunnelling of an ON device with oxide drop ``vox``, in nA.

    The whole channel area tunnels (inverted channel at the source
    potential).
    """
    return width * tunneling_current_density(params, vox, device)


def gate_leakage_off(params: TechParams, vgd: float, width: float,
                     device: str = "n") -> float:
    """Edge direct tunnelling of an OFF device, in nA.

    Only the drain overlap region tunnels; modelled as ``edt_fraction`` of
    the channel area at oxide drop ``|vgd|``.
    """
    return (params.edt_fraction * width
            * tunneling_current_density(params, abs(vgd), device))
