"""Physical constants and 45 nm technology parameters.

The paper characterises gates with HSPICE BSIM4 at 45 nm / 0.9 V and stores
the results in per-pattern leakage tables.  We substitute an analytical
model (paper equations (2)-(4)) whose free scale parameters are calibrated
so that the NAND2 table reproduces the paper's Figure 2 exactly; see
:mod:`repro.spice.calibrate`.

All currents in this package are expressed in **nA**, voltages in **V**.
"""

from __future__ import annotations

import dataclasses

__all__ = ["TechParams", "default_tech", "PAPER_NAND2_LEAKAGE_NA"]

#: Paper Figure 2 — NAND2 leakage per input pattern (A, B) in nA at 45 nm,
#: VDD = 0.9 V.  Pin convention: A = inputs[0] is the NMOS nearest ground
#: in the pull-down stack (see repro.spice.stack for the orientation
#: analysis that makes (0,1) the low-leakage state).
PAPER_NAND2_LEAKAGE_NA = {
    (0, 0): 78.0,
    (0, 1): 73.0,
    (1, 0): 264.0,
    (1, 1): 408.0,
}


@dataclasses.dataclass(frozen=True)
class TechParams:
    """Technology / device-model parameters for leakage evaluation.

    The defaults correspond to the calibrated 45 nm point; construct a new
    instance (dataclass ``replace``) to explore other corners.

    Attributes
    ----------
    vdd:
        Supply voltage (V).
    thermal_voltage:
        kT/q at the evaluation temperature (V).
    n_sub:
        Subthreshold swing coefficient ``n`` of paper eq. (2).
    vt0_n, vt0_p:
        Zero-bias threshold voltage magnitudes (V).
    delta_body:
        Linearised body-effect coefficient (paper's delta).
    eta_dibl:
        Drain-induced barrier lowering coefficient (paper's eta).
    s_n, s_p:
        Subthreshold current scale per unit transistor width (nA); plays
        the role of ``A`` in paper eq. (2)/(3) with the exponential factored
        as exp((VGS - VT0 - delta*VSB + eta*VDS) / (n kT/q)).
    g_n, g_p:
        Gate direct-tunnelling scale per unit width (nA) for electron
        (NMOS) and hole (PMOS) tunnelling; plays the role of ``A`` in
        paper eq. (4).
    b_tunnel:
        The ``B`` exponent factor of eq. (4), pre-multiplied by Tox so the
        exponent is ``-b_tunnel * (1 - (1 - vox/phi)^1.5) / vox``.
    phi_ox_n, phi_ox_p:
        Tunnelling barrier heights (V) for electrons and holes.
    edt_fraction:
        Drain-overlap (edge direct tunnelling) area as a fraction of the
        full gate area, used for OFF-device gate leakage.
    """

    vdd: float = 0.9
    thermal_voltage: float = 0.02585
    n_sub: float = 1.5
    vt0_n: float = 0.32
    vt0_p: float = 0.32
    delta_body: float = 0.15
    eta_dibl: float = 0.04913784839147685
    s_n: float = 14219.34444265604
    s_p: float = 236.44991071316167
    g_n: float = 101.46904148309913
    g_p: float = 16.911506913849855
    b_tunnel: float = 6.0
    phi_ox_n: float = 3.1
    phi_ox_p: float = 4.5
    edt_fraction: float = 0.02

    @property
    def n_vt(self) -> float:
        """``n * kT/q`` — the subthreshold exponential slope (V)."""
        return self.n_sub * self.thermal_voltage

    def replace(self, **changes) -> "TechParams":
        """Return a copy with ``changes`` applied (dataclass replace)."""
        return dataclasses.replace(self, **changes)


#: Transistor widths per cell family (unit widths, drive-balanced sizing).
#: Series devices are upsized by the stack depth to preserve drive.
def nmos_width(series_depth: int) -> float:
    """Width of each NMOS in a pull-down stack of ``series_depth`` devices."""
    return float(max(1, series_depth))


def pmos_width(series_depth: int) -> float:
    """Width of each PMOS in a pull-up stack of ``series_depth`` devices.

    PMOS mobility is roughly half the NMOS mobility, hence the 2x factor.
    """
    return 2.0 * float(max(1, series_depth))


_DEFAULT = TechParams()


def default_tech() -> TechParams:
    """The calibrated default 45 nm technology point.

    The shipped defaults already reproduce Figure 2 to within a fraction of
    a percent; :func:`repro.spice.calibrate.calibrate_to_figure2` re-derives
    them from scratch.
    """
    return _DEFAULT
