"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a gate-level netlist."""


class BenchParseError(NetlistError):
    """An ISCAS89 ``.bench`` file could not be parsed.

    Attributes
    ----------
    line_number:
        1-based line number of the offending line, or ``None`` when the
        error is not tied to a specific line.
    line:
        Text of the offending line (stripped), or ``None``.
    """

    def __init__(self, message: str, line_number: int | None = None,
                 line: str | None = None):
        self.line_number = line_number
        self.line = line
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class CombinationalLoopError(NetlistError):
    """The combinational part of a circuit contains a cycle.

    Attributes
    ----------
    cycle:
        A list of line names participating in (or reachable within) the
        strongly connected region that prevented levelisation.
    """

    def __init__(self, cycle: list[str]):
        self.cycle = list(cycle)
        preview = ", ".join(self.cycle[:8])
        if len(self.cycle) > 8:
            preview += ", ..."
        super().__init__(f"combinational loop through: {preview}")


class MappingError(ReproError):
    """Technology mapping failed or produced an inconsistent netlist."""


class TimingError(ReproError):
    """Static timing analysis failed (e.g. unknown cell delay)."""


class SimulationError(ReproError):
    """Logic simulation was asked to do something impossible."""


class CharacterizationError(ReproError):
    """Device-model evaluation or cell characterisation failed."""


class ScanError(ReproError):
    """Scan insertion / scan chain construction problem."""


class AtpgError(ReproError):
    """Test generation failed in an unexpected way (not just an abort)."""


class JustificationError(ReproError):
    """Internal inconsistency inside the PODEM-like justification engine.

    Note: an *unjustifiable* objective is a normal outcome reported through
    return values, not through this exception.
    """


class ConfigError(ReproError):
    """Invalid configuration passed to a flow or experiment."""


class ChaosError(ConfigError):
    """Invalid chaos spec, unknown injection site or bad retry policy.

    A :class:`ConfigError`: a bad ``--chaos`` spec should fail fast at
    option-resolution time exactly like any other invalid knob.
    """


class CampaignError(ReproError):
    """Campaign orchestration failed (queue, worker or artefact layer)."""


class QueueError(CampaignError):
    """The filesystem work queue is missing, corrupt or inconsistent."""


class ServiceError(ReproError):
    """The artifact service could not be configured or started."""


class ExperimentError(ReproError):
    """An experiment harness could not produce its artefact."""
