"""Benchmark circuits: published ISCAS89 stats, synthetic generator, loader."""

from repro.benchgen.generator import (
    generate_circuit,
    generate_from_stats,
    generate_scaled,
)
from repro.benchgen.iscas89 import (
    ISCAS89_STATS,
    TABLE1_CIRCUITS,
    Iscas89Stats,
    scaled_stats,
    stats_for,
)
from repro.benchgen.loader import (
    ENV_BENCH_DIR,
    available_circuits,
    circuit_provenance,
    load_circuit,
    table1_circuits,
)

__all__ = [
    "Iscas89Stats",
    "ISCAS89_STATS",
    "TABLE1_CIRCUITS",
    "stats_for",
    "scaled_stats",
    "generate_circuit",
    "generate_from_stats",
    "generate_scaled",
    "load_circuit",
    "circuit_provenance",
    "available_circuits",
    "table1_circuits",
    "ENV_BENCH_DIR",
]
