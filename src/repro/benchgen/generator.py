"""Seeded synthetic benchmark generator matching ISCAS89 statistics.

When the real ISCAS89 netlists are not available offline, this generator
produces, per circuit name, a sequential netlist that reproduces the
published interface statistics (PI/PO/DFF/gate counts) with realistic
structure:

* a layered DAG built gate by gate, each gate drawing its fanins from a
  recency-biased window (deep logic) mixed with uniform choices
  (reconvergence and wide cones);
* an ISCAS-flavoured gate-type mix (NAND/NOR heavy, inverter tail);
* next-state (D) functions and primary outputs drawn from late, otherwise
  unused signals, so no logic dangles and flops have meaningful feedback;
* every primary input and every flop output is used at least once.

The generator is deterministic per (name, seed): circuit ``s344`` is the
same netlist in every run and on every machine.  It is *not* the original
s344 — substitution documented in DESIGN.md; drop real ``.bench`` files
into ``$REPRO_ISCAS89_DIR`` to run the originals instead.

Generation is O(gates log gates): the uniform-over-``unused`` fanin draw
selects the k-th member of a lexicographically pre-sorted name universe
through a Fenwick rank-select (:class:`_SortedPool`) instead of
re-sorting the set per draw, and the recency window is pure index
arithmetic instead of a per-call list copy.  Both transformations
consume the RNG stream identically to the historical quadratic code, so
every (name, seed) pair still produces the bit-identical netlist — the
fingerprint-pinned tests in ``tests/benchgen`` enforce this, because
circuit fingerprints are campaign cache keys.  Million-gate synthetic
circuits (:func:`generate_scaled`) are therefore practical to generate
on the fly for the scaling benches.
"""

from __future__ import annotations

import numpy as np

from repro.benchgen.iscas89 import Iscas89Stats, scaled_stats, stats_for
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.utils.rng import derive_seed, make_rng

__all__ = ["generate_circuit", "generate_from_stats", "generate_scaled"]

# Gate-type mix: (type, arity) weights, ISCAS-flavoured (NAND/NOR heavy).
_GATE_MENU: list[tuple[GateType, int, float]] = [
    (GateType.NOT, 1, 0.14),
    (GateType.NAND, 2, 0.24),
    (GateType.NAND, 3, 0.07),
    (GateType.NAND, 4, 0.03),
    (GateType.NOR, 2, 0.16),
    (GateType.NOR, 3, 0.05),
    (GateType.AND, 2, 0.12),
    (GateType.AND, 3, 0.03),
    (GateType.OR, 2, 0.10),
    (GateType.OR, 3, 0.03),
    (GateType.XOR, 2, 0.02),
    (GateType.BUFF, 1, 0.01),
]

_MENU_TYPES: list[tuple[GateType, int]] = [(t, a) for t, a, _w in _GATE_MENU]

# Precomputed CDF reproducing rng.choice(len, p=weights) exactly:
# Generator.choice normalizes, cumsums and divides by the last entry
# before searchsorting one uniform draw, so doing the same up front
# consumes the identical stream and returns the identical indices.
_MENU_WEIGHTS = np.array([w for _t, _a, w in _GATE_MENU])
_MENU_WEIGHTS = _MENU_WEIGHTS / _MENU_WEIGHTS.sum()
_MENU_CDF = _MENU_WEIGHTS.cumsum()
_MENU_CDF = _MENU_CDF / _MENU_CDF[-1]


class _SortedPool:
    """Membership pool over a fixed name universe with O(log n) k-th
    select in lexicographic order.

    Replaces ``sorted(unused)[k]`` — O(n log n) per fanin draw — with a
    Fenwick (binary indexed) tree over the pre-sorted universe: the
    k-th smallest member is found by descending the tree's implicit
    prefix sums.  Selection order is identical to sorting the live set,
    so the RNG-indexed draws of the historical code are reproduced bit
    for bit.
    """

    __slots__ = ("_names", "_pos", "_member", "_tree", "_size", "_count")

    def __init__(self, universe: list[str]):
        self._names = sorted(universe)
        self._pos = {name: i for i, name in enumerate(self._names)}
        self._size = len(self._names)
        self._member = bytearray(self._size)
        self._tree = [0] * (self._size + 1)
        self._count = 0

    def add(self, name: str) -> None:
        pos = self._pos[name]
        if self._member[pos]:
            return
        self._member[pos] = 1
        self._count += 1
        tree = self._tree
        i = pos + 1
        while i <= self._size:
            tree[i] += 1
            i += i & -i

    def discard(self, name: str) -> None:
        pos = self._pos.get(name)
        if pos is None or not self._member[pos]:
            return
        self._member[pos] = 0
        self._count -= 1
        tree = self._tree
        i = pos + 1
        while i <= self._size:
            tree[i] -= 1
            i += i & -i

    def kth(self, k: int) -> str:
        """The k-th smallest member (0-based); k must be < len(self)."""
        if not 0 <= k < self._count:
            raise IndexError(k)
        # Descend the Fenwick prefix sums: find the smallest position
        # whose member-count prefix exceeds k.
        pos = 0
        remaining = k + 1
        bit = 1 << (self._size.bit_length() - 1) if self._size else 0
        tree = self._tree
        while bit:
            nxt = pos + bit
            if nxt <= self._size and tree[nxt] < remaining:
                remaining -= tree[nxt]
                pos = nxt
            bit >>= 1
        return self._names[pos]

    def __contains__(self, name: str) -> bool:
        pos = self._pos.get(name)
        return pos is not None and bool(self._member[pos])

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def sorted_members(self) -> list[str]:
        """All members in lexicographic order (== ``sorted(set)``)."""
        member = self._member
        return [name for i, name in enumerate(self._names) if member[i]]


def generate_circuit(name: str, seed: int = 1) -> Circuit:
    """Synthetic circuit with the published statistics of ``name``."""
    return generate_from_stats(stats_for(name), seed)


def generate_scaled(n_gates: int, seed: int = 1, *,
                    name: str | None = None,
                    n_inputs: int | None = None,
                    n_outputs: int | None = None,
                    n_dffs: int | None = None) -> Circuit:
    """Synthetic circuit of an arbitrary gate budget (no published stats).

    The interface counts default to ISCAS-like ratios via
    :func:`repro.benchgen.iscas89.scaled_stats`; pass explicit counts to
    override any of them.  Deterministic per (resolved name, seed), like
    every other generated circuit.  Intended for the scaling benches:
    10^5–10^6-gate circuits generate in seconds.
    """
    stats = scaled_stats(n_gates, name=name, n_inputs=n_inputs,
                         n_outputs=n_outputs, n_dffs=n_dffs)
    return generate_from_stats(stats, seed)


def generate_from_stats(stats: Iscas89Stats, seed: int = 1) -> Circuit:
    """Synthetic circuit matching an explicit statistics record."""
    rng = make_rng(derive_seed(seed, f"benchgen:{stats.name}"))
    circuit = Circuit(stats.name)

    pis = [circuit.add_input(f"I{k}") for k in range(stats.n_inputs)]
    q_lines = [f"Q{k}" for k in range(stats.n_dffs)]
    d_lines = [f"D{k}" for k in range(stats.n_dffs)]
    for q, d in zip(q_lines, d_lines):
        circuit.add_gate(q, GateType.DFF, (d,))

    sources = pis + q_lines

    # D lines are produced as the last n_dffs gates, so they see the full
    # depth of the circuit; plain gates are G<i>.
    n_plain = stats.n_gates - stats.n_dffs
    if n_plain < 0:
        raise ValueError(
            f"{stats.name}: gate budget {stats.n_gates} below DFF count")

    available: list[str] = list(sources)
    # D lines never enter the unused pool (they feed their flop by
    # construction), so the selectable universe is sources + plain gates.
    unused = _SortedPool(sources + [f"G{i}" for i in range(n_plain)])
    for line in sources:
        unused.add(line)
    window = max(8, stats.n_gates // 8)

    def pick_fanins(k: int) -> tuple[str, ...]:
        chosen: list[str] = []
        # The recency pool is a snapshot of available[-window:] at call
        # time; available never mutates inside one call, so indexing
        # from `base` is the historical slice without the O(window)
        # copy per gate.
        base = max(0, len(available) - window)
        pool_len = len(available) - base
        while len(chosen) < k:
            candidate: str
            if unused and rng.random() < 0.35:
                candidate = unused.kth(int(rng.integers(len(unused))))
            elif rng.random() < 0.65 and pool_len >= 1:
                candidate = available[base + int(rng.integers(pool_len))]
            else:
                candidate = available[int(rng.integers(len(available)))]
            if candidate not in chosen:
                chosen.append(candidate)
                unused.discard(candidate)
        return tuple(chosen)

    def menu_draw() -> tuple[GateType, int]:
        return _MENU_TYPES[int(_MENU_CDF.searchsorted(rng.random(),
                                                      side="right"))]

    for i in range(n_plain):
        gtype, arity = menu_draw()
        arity = min(arity, len(available))
        if arity < 2 and gtype not in (GateType.NOT, GateType.BUFF):
            gtype, arity = GateType.NOT, 1
        out = f"G{i}"
        circuit.add_gate(out, gtype, pick_fanins(arity))
        available.append(out)
        unused.add(out)

    # Next-state functions: one dedicated gate per flop, consuming unused
    # signals first so nothing dangles.
    for d in d_lines:
        gtype, arity = menu_draw()
        arity = min(max(arity, 2), len(available))
        gtype = gtype if gtype not in (GateType.NOT, GateType.BUFF) \
            else GateType.NAND
        circuit.add_gate(d, gtype, pick_fanins(arity))
        available.append(d)

    # Primary outputs: late unused signals first, then random late picks.
    # The pool comprehension iterates `available` in order and names are
    # unique, so it is already sorted by position — the historical
    # sort(key=available.index) was a stable no-op (and O(n^2)).
    q_set = set(q_lines)
    po_pool = [s for s in available if s in unused and s not in q_set]
    outputs: list[str] = []
    for line in reversed(po_pool):
        if len(outputs) >= stats.n_outputs:
            break
        outputs.append(line)
        unused.discard(line)
    need = stats.n_outputs - len(outputs)
    if need > 0:
        out_set = set(outputs)
        tail = [s for s in available if s not in out_set]
        lo = max(0, len(tail) - 4 * stats.n_outputs)
        # The draw window [lo, len(tail)) holds len(tail) - lo distinct
        # candidates, none of them outputs yet, and it never widens: a
        # deficit larger than the window used to spin the rejection loop
        # forever.  The candidate set shrinks by one per accepted draw,
        # so feasibility checked up front guarantees termination; the
        # draws themselves stay bit-identical to the historical loop for
        # every feasible record (fingerprints are campaign cache keys).
        if len(tail) - lo < need:
            raise ValueError(
                f"{stats.name}: n_outputs {stats.n_outputs} exceeds the "
                f"{len(tail) - lo} distinct candidate signals "
                f"({stats.n_inputs} PIs + {stats.n_gates} gates + "
                f"{stats.n_dffs} flops reachable)")
        while need:
            candidate = tail[int(rng.integers(lo, len(tail)))]
            if candidate not in out_set:
                out_set.add(candidate)
                outputs.append(candidate)
                need -= 1
    for line in outputs:
        circuit.add_output(line)

    # Anything still unused feeds an extra fanin of some PO-side gate?  No:
    # remaining unused signals are tolerated only if they are flop outputs
    # (state that only influences next state); pure gates must be consumed.
    pi_set = set(pis)
    for line in unused.sorted_members():
        if line in q_set or line in pi_set:
            continue
        # Give the dangling gate a consumer: replace a random D gate input.
        d = d_lines[int(rng.integers(len(d_lines)))]
        gate = circuit.gates[d]
        if line not in gate.inputs:
            circuit.replace_gate(d, gate.gtype, gate.inputs + (line,))

    circuit.validate()
    _check_stats(circuit, stats)
    return circuit


def _check_stats(circuit: Circuit, stats: Iscas89Stats) -> None:
    actual = (len(circuit.inputs), len(circuit.outputs),
              len(circuit.dff_gates), len(circuit.combinational_gates()))
    expected = (stats.n_inputs, stats.n_outputs, stats.n_dffs,
                stats.n_gates)
    if actual != expected:
        raise AssertionError(
            f"{stats.name}: generated stats {actual} != published "
            f"{expected}")
