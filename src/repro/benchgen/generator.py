"""Seeded synthetic benchmark generator matching ISCAS89 statistics.

When the real ISCAS89 netlists are not available offline, this generator
produces, per circuit name, a sequential netlist that reproduces the
published interface statistics (PI/PO/DFF/gate counts) with realistic
structure:

* a layered DAG built gate by gate, each gate drawing its fanins from a
  recency-biased window (deep logic) mixed with uniform choices
  (reconvergence and wide cones);
* an ISCAS-flavoured gate-type mix (NAND/NOR heavy, inverter tail);
* next-state (D) functions and primary outputs drawn from late, otherwise
  unused signals, so no logic dangles and flops have meaningful feedback;
* every primary input and every flop output is used at least once.

The generator is deterministic per (name, seed): circuit ``s344`` is the
same netlist in every run and on every machine.  It is *not* the original
s344 — substitution documented in DESIGN.md; drop real ``.bench`` files
into ``$REPRO_ISCAS89_DIR`` to run the originals instead.
"""

from __future__ import annotations

import numpy as np

from repro.benchgen.iscas89 import Iscas89Stats, stats_for
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType
from repro.utils.rng import derive_seed, make_rng

__all__ = ["generate_circuit", "generate_from_stats"]

# Gate-type mix: (type, arity) weights, ISCAS-flavoured (NAND/NOR heavy).
_GATE_MENU: list[tuple[GateType, int, float]] = [
    (GateType.NOT, 1, 0.14),
    (GateType.NAND, 2, 0.24),
    (GateType.NAND, 3, 0.07),
    (GateType.NAND, 4, 0.03),
    (GateType.NOR, 2, 0.16),
    (GateType.NOR, 3, 0.05),
    (GateType.AND, 2, 0.12),
    (GateType.AND, 3, 0.03),
    (GateType.OR, 2, 0.10),
    (GateType.OR, 3, 0.03),
    (GateType.XOR, 2, 0.02),
    (GateType.BUFF, 1, 0.01),
]


def generate_circuit(name: str, seed: int = 1) -> Circuit:
    """Synthetic circuit with the published statistics of ``name``."""
    return generate_from_stats(stats_for(name), seed)


def generate_from_stats(stats: Iscas89Stats, seed: int = 1) -> Circuit:
    """Synthetic circuit matching an explicit statistics record."""
    rng = make_rng(derive_seed(seed, f"benchgen:{stats.name}"))
    circuit = Circuit(stats.name)

    pis = [circuit.add_input(f"I{k}") for k in range(stats.n_inputs)]
    q_lines = [f"Q{k}" for k in range(stats.n_dffs)]
    d_lines = [f"D{k}" for k in range(stats.n_dffs)]
    for q, d in zip(q_lines, d_lines):
        circuit.add_gate(q, GateType.DFF, (d,))

    sources = pis + q_lines
    menu_types = [(t, a) for t, a, _w in _GATE_MENU]
    menu_weights = np.array([w for _t, _a, w in _GATE_MENU])
    menu_weights = menu_weights / menu_weights.sum()

    # D lines are produced as the last n_dffs gates, so they see the full
    # depth of the circuit; plain gates are G<i>.
    n_plain = stats.n_gates - stats.n_dffs
    if n_plain < 0:
        raise ValueError(
            f"{stats.name}: gate budget {stats.n_gates} below DFF count")

    available: list[str] = list(sources)
    unused: set[str] = set(sources)
    window = max(8, stats.n_gates // 8)

    def pick_fanins(k: int) -> tuple[str, ...]:
        chosen: list[str] = []
        pool_recent = available[-window:]
        while len(chosen) < k:
            candidate: str
            if unused and rng.random() < 0.35:
                candidate = sorted(unused)[int(rng.integers(len(unused)))]
            elif rng.random() < 0.65 and len(pool_recent) >= 1:
                candidate = pool_recent[int(rng.integers(len(pool_recent)))]
            else:
                candidate = available[int(rng.integers(len(available)))]
            if candidate not in chosen:
                chosen.append(candidate)
                unused.discard(candidate)
        return tuple(chosen)

    for i in range(n_plain):
        menu_idx = int(rng.choice(len(menu_types), p=menu_weights))
        gtype, arity = menu_types[menu_idx]
        arity = min(arity, len(available))
        if arity < 2 and gtype not in (GateType.NOT, GateType.BUFF):
            gtype, arity = GateType.NOT, 1
        out = f"G{i}"
        circuit.add_gate(out, gtype, pick_fanins(arity))
        available.append(out)
        unused.add(out)

    # Next-state functions: one dedicated gate per flop, consuming unused
    # signals first so nothing dangles.
    for d in d_lines:
        menu_idx = int(rng.choice(len(menu_types), p=menu_weights))
        gtype, arity = menu_types[menu_idx]
        arity = min(max(arity, 2), len(available))
        gtype = gtype if gtype not in (GateType.NOT, GateType.BUFF) \
            else GateType.NAND
        circuit.add_gate(d, gtype, pick_fanins(arity))
        available.append(d)

    # Primary outputs: late unused signals first, then random late picks.
    po_pool = [s for s in available if s in unused and s not in q_lines]
    po_pool.sort(key=available.index)
    outputs: list[str] = []
    for line in reversed(po_pool):
        if len(outputs) >= stats.n_outputs:
            break
        outputs.append(line)
        unused.discard(line)
    tail = [s for s in available if s not in outputs]
    while len(outputs) < stats.n_outputs:
        lo = max(0, len(tail) - 4 * stats.n_outputs)
        candidate = tail[int(rng.integers(lo, len(tail)))]
        if candidate not in outputs:
            outputs.append(candidate)
    for line in outputs:
        circuit.add_output(line)

    # Anything still unused feeds an extra fanin of some PO-side gate?  No:
    # remaining unused signals are tolerated only if they are flop outputs
    # (state that only influences next state); pure gates must be consumed.
    for line in sorted(unused):
        if line in q_lines or line in pis:
            continue
        # Give the dangling gate a consumer: replace a random D gate input.
        d = d_lines[int(rng.integers(len(d_lines)))]
        gate = circuit.gates[d]
        if line not in gate.inputs:
            circuit.replace_gate(d, gate.gtype, gate.inputs + (line,))

    circuit.validate()
    _check_stats(circuit, stats)
    return circuit


def _check_stats(circuit: Circuit, stats: Iscas89Stats) -> None:
    actual = (len(circuit.inputs), len(circuit.outputs),
              len(circuit.dff_gates), len(circuit.combinational_gates()))
    expected = (stats.n_inputs, stats.n_outputs, stats.n_dffs,
                stats.n_gates)
    if actual != expected:
        raise AssertionError(
            f"{stats.name}: generated stats {actual} != published "
            f"{expected}")
