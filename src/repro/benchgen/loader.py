"""Benchmark circuit loader with real-netlist override.

Resolution order for :func:`load_circuit`:

1. a real ``.bench`` file named ``<name>.bench`` in ``$REPRO_ISCAS89_DIR``
   (or an explicit ``search_dir``), parsed verbatim;
2. circuits embedded verbatim in the library (currently the real ``s27``);
3. the seeded synthetic generator matching the published statistics.

:func:`circuit_provenance` reports which source would be used — the
experiment harnesses print it so reproduction reports are explicit about
running on substitutes.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.benchgen.generator import generate_circuit
from repro.benchgen.iscas89 import ISCAS89_STATS, TABLE1_CIRCUITS
from repro.netlist import builders
from repro.netlist.bench import parse_bench_file
from repro.netlist.circuit import Circuit

__all__ = ["load_circuit", "circuit_provenance", "available_circuits",
           "ENV_BENCH_DIR"]

ENV_BENCH_DIR = "REPRO_ISCAS89_DIR"

_BUILTIN = {"s27": builders.s27}


def _real_bench_path(name: str,
                     search_dir: str | Path | None) -> Path | None:
    directory = search_dir if search_dir is not None \
        else os.environ.get(ENV_BENCH_DIR)
    if not directory:
        return None
    path = Path(directory) / f"{name}.bench"
    return path if path.is_file() else None


def circuit_provenance(name: str,
                       search_dir: str | Path | None = None) -> str:
    """One of "real-file", "embedded", "synthetic"."""
    if _real_bench_path(name, search_dir) is not None:
        return "real-file"
    if name in _BUILTIN:
        return "embedded"
    return "synthetic"


def load_circuit(name: str, seed: int = 1,
                 search_dir: str | Path | None = None) -> Circuit:
    """Load benchmark ``name`` (see module docstring for resolution).

    ``seed`` only affects the synthetic fallback.
    """
    path = _real_bench_path(name, search_dir)
    if path is not None:
        return parse_bench_file(path, name)
    if name in _BUILTIN:
        return _BUILTIN[name]()
    return generate_circuit(name, seed)


def available_circuits() -> list[str]:
    """Names resolvable without external files (embedded + synthetic)."""
    names = set(ISCAS89_STATS) | set(_BUILTIN)
    return sorted(names, key=lambda n: (len(n), n))


def table1_circuits() -> list[str]:
    """The paper's Table I circuit list, in row order."""
    return list(TABLE1_CIRCUITS)
