"""Published interface statistics of the ISCAS89 benchmark circuits.

The paper evaluates on twelve ISCAS89 circuits.  The netlists themselves
are distributed separately (drop real ``.bench`` files into
``$REPRO_ISCAS89_DIR`` to use them); when absent, the synthetic generator
(:mod:`repro.benchgen.generator`) produces circuits that reproduce these
published statistics — primary inputs, primary outputs, flip-flops and
combinational gate count — with realistic topology.
"""

from __future__ import annotations

import dataclasses
import math

__all__ = ["Iscas89Stats", "ISCAS89_STATS", "TABLE1_CIRCUITS",
           "stats_for", "scaled_stats"]


@dataclasses.dataclass(frozen=True)
class Iscas89Stats:
    """Published interface statistics of one ISCAS89 circuit."""

    name: str
    n_inputs: int
    n_outputs: int
    n_dffs: int
    n_gates: int    # combinational gates (inverters included)


#: Published ISCAS89 statistics (Brglez, Bryan & Kozminski, ISCAS 1989).
ISCAS89_STATS: dict[str, Iscas89Stats] = {
    s.name: s for s in [
        Iscas89Stats("s27", 4, 1, 3, 10),
        Iscas89Stats("s344", 9, 11, 15, 160),
        Iscas89Stats("s349", 9, 11, 15, 161),
        Iscas89Stats("s382", 3, 6, 21, 158),
        Iscas89Stats("s386", 7, 7, 6, 159),
        Iscas89Stats("s400", 3, 6, 21, 164),
        Iscas89Stats("s420", 18, 1, 16, 218),
        Iscas89Stats("s444", 3, 6, 21, 181),
        Iscas89Stats("s510", 19, 7, 6, 211),
        Iscas89Stats("s526", 3, 6, 21, 193),
        Iscas89Stats("s641", 35, 24, 19, 379),
        Iscas89Stats("s713", 35, 23, 19, 393),
        Iscas89Stats("s820", 18, 19, 5, 289),
        Iscas89Stats("s832", 18, 19, 5, 287),
        Iscas89Stats("s838", 34, 1, 32, 446),
        Iscas89Stats("s953", 16, 23, 29, 395),
        Iscas89Stats("s1196", 14, 14, 18, 529),
        Iscas89Stats("s1238", 14, 14, 18, 508),
        Iscas89Stats("s1423", 17, 5, 74, 657),
        Iscas89Stats("s1488", 8, 19, 6, 653),
        Iscas89Stats("s1494", 8, 19, 6, 647),
        Iscas89Stats("s5378", 35, 49, 179, 2779),
        Iscas89Stats("s9234", 36, 39, 211, 5597),
        Iscas89Stats("s13207", 62, 152, 638, 7951),
        Iscas89Stats("s15850", 77, 150, 534, 9772),
        Iscas89Stats("s35932", 35, 320, 1728, 16065),
        Iscas89Stats("s38417", 28, 106, 1636, 22179),
        Iscas89Stats("s38584", 38, 304, 1426, 19253),
    ]
}

#: The twelve circuits of the paper's Table I, in row order.
TABLE1_CIRCUITS: tuple[str, ...] = (
    "s344", "s382", "s444", "s510", "s641", "s713",
    "s1196", "s1238", "s1423", "s1494", "s5378", "s9234",
)


def stats_for(name: str) -> Iscas89Stats:
    """Statistics record for ``name`` (KeyError with guidance if unknown)."""
    try:
        return ISCAS89_STATS[name]
    except KeyError:
        known = ", ".join(sorted(ISCAS89_STATS))
        raise KeyError(
            f"unknown ISCAS89 circuit {name!r}; known: {known}") from None


def scaled_stats(n_gates: int, *, name: str | None = None,
                 n_inputs: int | None = None,
                 n_outputs: int | None = None,
                 n_dffs: int | None = None) -> Iscas89Stats:
    """A synthetic statistics record for an arbitrary gate budget.

    Interface counts default to ratios modelled on the large published
    circuits (s13207...s38584): flop count ~ ``n_gates / 16`` and
    PI/PO counts ~ ``sqrt(n_gates) / 4`` — wide enough for non-trivial
    stimulus, narrow enough that the scan chain dominates the episode
    the way it does on the real designs.  Pass any count explicitly to
    override.  ``name`` defaults to ``synth<n_gates>``; the (name, seed)
    pair fully determines the generated netlist, so distinct budgets
    never share an RNG stream.

    This is the ``stats_for``-independent entry for million-gate
    scaling studies; :func:`repro.benchgen.generator.generate_scaled`
    wraps it.
    """
    if n_gates < 4:
        raise ValueError(f"scaled stats need >= 4 gates, got {n_gates}")
    root = max(1, math.isqrt(n_gates))
    inputs = n_inputs if n_inputs is not None else max(8, root // 4)
    outputs = n_outputs if n_outputs is not None else max(4, root // 4)
    dffs = n_dffs if n_dffs is not None else max(2, n_gates // 16)
    if dffs >= n_gates:
        raise ValueError(
            f"flop count {dffs} must stay below the gate budget {n_gates}")
    return Iscas89Stats(name or f"synth{n_gates}", inputs, outputs,
                        dffs, n_gates)
