"""The scan test view: a sequential circuit seen through its scan chain.

In full-scan testing the combinational logic is exercised as a pure
function from (primary inputs + pseudo-inputs) to (primary outputs +
pseudo-outputs).  :class:`ScanDesign` bundles a circuit with its chain and
provides the capture-cycle semantics used by the scan-power simulator and
the ATPG.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

from repro.errors import ScanError
from repro.netlist.circuit import Circuit
from repro.scan.chain import ScanChain
from repro.simulation.eval2 import simulate_comb

__all__ = ["ScanDesign", "TestVector"]


@dataclasses.dataclass(frozen=True)
class TestVector:
    """One scan test: values for every PI and every scan cell.

    ``scan_state`` is positional (chain order); ``pi_values`` is keyed by
    primary input name.
    """

    #: keep pytest from collecting this dataclass as a test case
    __test__ = False

    pi_values: Mapping[str, int]
    scan_state: tuple[int, ...]

    def __post_init__(self) -> None:
        for name, value in self.pi_values.items():
            if value not in (0, 1):
                raise ScanError(f"PI {name!r} value {value!r} not 0/1")
        if any(b not in (0, 1) for b in self.scan_state):
            raise ScanError("scan state bits must be 0/1")


class ScanDesign:
    """A full-scan circuit: combinational logic plus one scan chain."""

    def __init__(self, circuit: Circuit, chain: ScanChain | None = None):
        if not circuit.dff_gates:
            raise ScanError(
                f"{circuit.name}: cannot scan a circuit without flops")
        self.circuit = circuit
        self.chain = chain or ScanChain.from_circuit(circuit)
        chain_q = set(self.chain.q_lines)
        circuit_q = set(circuit.dff_outputs)
        if chain_q != circuit_q:
            raise ScanError("chain does not cover exactly the circuit flops")

    @classmethod
    def full_scan(cls, circuit: Circuit,
                  order: Sequence[str] | None = None,
                  seed: int | None = None) -> "ScanDesign":
        """Full-scan design with the given (or declaration) chain order."""
        return cls(circuit, ScanChain.from_circuit(circuit, order, seed))

    # ------------------------------------------------------------------ #

    @property
    def pseudo_inputs(self) -> list[str]:
        """Scan cell Q lines, in chain order."""
        return self.chain.q_lines

    @property
    def pseudo_outputs(self) -> list[str]:
        """Scan cell D lines, in chain order."""
        return self.chain.d_lines

    @property
    def controllable_lines(self) -> list[str]:
        """All combinational input lines: PIs then pseudo-inputs."""
        return list(self.circuit.inputs) + self.pseudo_inputs

    def comb_assignment(self, scan_state: Sequence[int],
                        pi_values: Mapping[str, int]) -> dict[str, int]:
        """Full combinational input assignment for one cycle."""
        values = dict(pi_values)
        values.update(self.chain.state_as_dict(scan_state))
        return values

    def capture(self, vector: TestVector) -> tuple[tuple[int, ...],
                                                   dict[str, int]]:
        """Apply ``vector`` in normal mode and capture.

        Returns ``(captured_scan_state, po_values)`` — the response that
        subsequently shifts out while the next vector shifts in.
        """
        assignment = self.comb_assignment(vector.scan_state,
                                          vector.pi_values)
        values = simulate_comb(self.circuit, assignment)
        captured = tuple(values[d] for d in self.chain.d_lines)
        po_values = {po: values[po] for po in self.circuit.outputs}
        return captured, po_values
