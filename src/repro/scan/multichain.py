"""Multiple parallel scan chains.

The paper evaluates single-chain designs; industrial scan splits the
flops over ``N`` chains that shift **simultaneously**, cutting shift
cycles per vector from ``L`` to ``ceil(L / N)``.  This module extends the
scan substrate accordingly:

* :class:`MultiChainDesign` — a circuit with a list of chains
  (``partition`` builds balanced chains round-robin or from explicit
  orders);
* per-vector shift scheduling where shorter chains pad with leading
  zeros so every chain finishes loading on the same clock (the usual
  "stitch to the longest chain" discipline);
* :func:`evaluate_multichain_power` — the Table I measurement under
  parallel shifting.  All shift policies (input control, MUX ties) apply
  unchanged.

The single-chain evaluator is the special case ``N = 1``; a test asserts
the two agree exactly.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.cells.library import CellLibrary, default_library
from repro.errors import ScanError
from repro.leakage.estimator import leakage_power_uw
from repro.netlist.circuit import Circuit
from repro.power.dynamic import (
    energy_per_cycle_uw_per_hz,
    switching_energy_fj,
)
from repro.power.scanpower import ScanPowerReport, ShiftPolicy
from repro.scan.chain import ScanCell, ScanChain
from repro.scan.testview import ScanDesign, TestVector
from repro.simulation.backends import Backend, resolve_backend
from repro.simulation.cyclesim import simulate_cycles
from repro.simulation.episode import EpisodePlan, episode_batching_enabled
from repro.simulation.eval2 import simulate_comb
from repro.simulation.values import pack_bits

__all__ = ["MultiChainDesign", "evaluate_multichain_power"]


class MultiChainDesign:
    """A full-scan circuit whose flops are split over several chains.

    Cell order across chains defines the *global* cell order used by
    :class:`~repro.scan.testview.TestVector` scan states: chain 0's cells
    first, then chain 1's, and so on — so single-chain vectors (e.g. from
    the ATPG, which is chain-agnostic) apply directly once the design's
    ``global_q_lines`` order is used.
    """

    def __init__(self, circuit: Circuit, chains: Sequence[ScanChain]):
        if not chains:
            raise ScanError("need at least one chain")
        self.circuit = circuit
        self.chains = list(chains)
        seen: set[str] = set()
        for chain in self.chains:
            overlap = seen & set(chain.q_lines)
            if overlap:
                raise ScanError(
                    f"cells in multiple chains: {sorted(overlap)}")
            seen |= set(chain.q_lines)
        circuit_q = set(circuit.dff_outputs)
        if seen != circuit_q:
            raise ScanError("chains do not cover exactly the circuit flops")

    @classmethod
    def partition(cls, circuit: Circuit, n_chains: int,
                  order: Sequence[str] | None = None
                  ) -> "MultiChainDesign":
        """Split the flops round-robin into ``n_chains`` balanced chains."""
        if n_chains < 1:
            raise ScanError("n_chains must be >= 1")
        q_lines = list(order) if order is not None \
            else [g.output for g in circuit.dff_gates]
        if n_chains > len(q_lines):
            raise ScanError(
                f"{n_chains} chains for only {len(q_lines)} flops")
        by_q = {g.output: ScanCell(q=g.output, d=g.inputs[0])
                for g in circuit.dff_gates}
        buckets: list[list[ScanCell]] = [[] for _ in range(n_chains)]
        for i, q in enumerate(q_lines):
            buckets[i % n_chains].append(by_q[q])
        chains = [ScanChain(cells, name=f"chain{k}")
                  for k, cells in enumerate(buckets)]
        return cls(circuit, chains)

    # ------------------------------------------------------------------ #

    @property
    def n_chains(self) -> int:
        return len(self.chains)

    @property
    def max_length(self) -> int:
        """Shift cycles needed per vector (the longest chain)."""
        return max(chain.length for chain in self.chains)

    @property
    def total_cells(self) -> int:
        return sum(chain.length for chain in self.chains)

    @property
    def global_q_lines(self) -> list[str]:
        """Global cell order: chain 0 first, then chain 1, ..."""
        lines: list[str] = []
        for chain in self.chains:
            lines.extend(chain.q_lines)
        return lines

    @property
    def global_d_lines(self) -> list[str]:
        lines: list[str] = []
        for chain in self.chains:
            lines.extend(chain.d_lines)
        return lines

    def split_state(self, state: Sequence[int]) -> list[tuple[int, ...]]:
        """Slice a global scan state into per-chain states."""
        if len(state) != self.total_cells:
            raise ScanError("global state length mismatch")
        slices: list[tuple[int, ...]] = []
        offset = 0
        for chain in self.chains:
            slices.append(tuple(state[offset:offset + chain.length]))
            offset += chain.length
        return slices

    def as_single_chain_design(self) -> ScanDesign:
        """The same circuit with all chains concatenated into one chain
        (used for capture evaluation and ATPG reuse)."""
        cells = [cell for chain in self.chains for cell in chain.cells]
        return ScanDesign(self.circuit, ScanChain(cells, name="concat"))

    def capture(self, vector: TestVector
                ) -> tuple[tuple[int, ...], dict[str, int]]:
        """Normal-mode capture (chain structure is irrelevant here)."""
        assignment = dict(vector.pi_values)
        for q, bit in zip(self.global_q_lines, vector.scan_state):
            assignment[q] = bit
        values = simulate_comb(self.circuit, assignment)
        captured = tuple(values[d] for d in self.global_d_lines)
        po_values = {po: values[po] for po in self.circuit.outputs}
        return captured, po_values


def _chain_shift_bits(chain: ScanChain, initial: tuple[int, ...],
                      vector_slice: tuple[int, ...],
                      n_shift_cycles: int) -> list[tuple[int, ...]]:
    """Per-cycle states of one chain over a padded shift segment.

    The chain idles through ``n_shift_cycles - length`` leading pad
    shifts (zero fill entering) and then loads its slice, finishing
    exactly on the segment's last cycle.
    """
    pad = n_shift_cycles - chain.length
    if pad < 0:
        raise ScanError("segment shorter than chain")
    states: list[tuple[int, ...]] = []
    state = initial
    for _ in range(pad):
        state = chain.shift_once(state, 0)
        states.append(state)
    for bit in chain.load_bits(vector_slice):
        state = chain.shift_once(state, bit)
        states.append(state)
    return states


def evaluate_multichain_power(design: MultiChainDesign,
                              vectors: Sequence[TestVector],
                              policy: ShiftPolicy | None = None,
                              library: CellLibrary | None = None,
                              include_capture: bool = True,
                              backend: str | Backend | None = None,
                              episode_batch: bool | None = None
                              ) -> ScanPowerReport:
    """Replay a scan test set with all chains shifting in parallel.

    Semantics mirror the single-chain evaluator; only the schedule
    differs: every vector costs ``max_length`` shift cycles (plus the
    capture cycle), during which each chain walks its own contents.
    ``backend`` accepts any registered engine, including meta-backends
    like ``sharded``; it is resolved exactly once per call and affects
    speed only.  With episode batching on (``episode_batch`` following
    :func:`~repro.power.scanpower.evaluate_scan_power`'s resolution),
    evaluation goes through ``Backend.simulate_episode_batch`` so
    sharding meta-backends may chunk the cycle axis of oversized
    replays; off, it runs the plain cycle simulation.  Both paths are
    bit-identical.
    """
    policy = policy or ShiftPolicy()
    library = library or default_library()
    circuit = design.circuit
    engine = resolve_backend(backend)
    if not vectors:
        raise ScanError("empty test set")
    unknown_mux = set(policy.mux_ties) - set(design.global_q_lines)
    if unknown_mux:
        raise ScanError(f"mux ties on unknown cells: {sorted(unknown_mux)}")

    segment = design.max_length
    pi_bits: dict[str, list[int]] = {pi: [] for pi in circuit.inputs}
    q_bits: dict[str, list[int]] = {q: [] for q in design.global_q_lines}
    chain_states = [
        (0,) * chain.length for chain in design.chains
    ]

    for vector in vectors:
        slices = design.split_state(vector.scan_state)
        per_chain = [
            _chain_shift_bits(chain, state, piece, segment)
            for chain, state, piece in zip(design.chains, chain_states,
                                           slices)
        ]
        for cycle in range(segment):
            for pi in circuit.inputs:
                if policy.pi_values is not None and \
                        pi in policy.pi_values:
                    pi_bits[pi].append(policy.pi_values[pi])
                else:
                    pi_bits[pi].append(vector.pi_values[pi])
            for chain, states in zip(design.chains, per_chain):
                cycle_state = states[cycle]
                for cell, bit in zip(chain.cells, cycle_state):
                    tie = policy.mux_ties.get(cell.q)
                    q_bits[cell.q].append(bit if tie is None else tie)
        if include_capture:
            for pi in circuit.inputs:
                pi_bits[pi].append(vector.pi_values[pi])
            for q, bit in zip(design.global_q_lines, vector.scan_state):
                q_bits[q].append(bit)
        captured, _po = design.capture(vector)
        chain_states = design.split_state(captured)

    all_bits = {**pi_bits, **q_bits}
    n_cycles = len(next(iter(all_bits.values())))
    waveforms = {line: pack_bits(bits) for line, bits in all_bits.items()}
    if episode_batching_enabled(episode_batch):
        per_episode = segment + (1 if include_capture else 0)
        plan = EpisodePlan(
            circuit=circuit, waveforms=waveforms, n_cycles=n_cycles,
            offsets=tuple(range(0, n_cycles, per_episode)),
            lengths=(per_episode,) * len(vectors))
        result = engine.simulate_episode_batch(plan, library,
                                               collect_leakage=True)
    else:
        result = simulate_cycles(circuit, waveforms, n_cycles, library,
                                 collect_leakage=True, backend=engine)
    energy_fj = switching_energy_fj(circuit, result.transitions, library)
    return ScanPowerReport(
        circuit_name=circuit.name,
        policy_name=f"{policy.name}@{design.n_chains}chains",
        n_vectors=len(vectors),
        n_cycles=n_cycles,
        dynamic_uw_per_hz=energy_per_cycle_uw_per_hz(energy_fj, n_cycles),
        static_uw=leakage_power_uw(result.mean_leakage_na, library.vdd),
        total_transitions=result.total_transitions,
        mean_leakage_na=result.mean_leakage_na,
    )


def total_test_cycles(design: MultiChainDesign, n_vectors: int,
                     include_capture: bool = True) -> int:
    """Total scan clocks to apply ``n_vectors`` (the test-time metric)."""
    per_vector = design.max_length + (1 if include_capture else 0)
    return n_vectors * per_vector
