"""Physical MUX insertion at scan-cell outputs (the paper's Figure 1).

The proposed structure places a 2:1 MUX on selected pseudo-inputs:

* select = the existing **Shift Enable** signal (no new control signal);
* one data pin = the scan cell's Q;
* the other data pin tied locally to Vcc or Gnd (no routing overhead).

During shift, the MUX presents the tie value to the combinational logic;
in normal/capture mode it is transparent to Q, so fault coverage and
functionality are untouched.

Most analyses in this library model MUXes *virtually* (by substituting
constant waveforms for the muxed pseudo-inputs), which is exact for power
purposes.  This module performs the *netlist-level* rewrite, which is what
the timing re-check in the paper's AddMUX uses, and what area accounting
measures.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.cells.library import CellLibrary, default_library
from repro.errors import ScanError
from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType

__all__ = ["MuxPlan", "insert_muxes", "SHIFT_ENABLE"]

#: Name given to the shift-enable primary input in rewritten netlists.
SHIFT_ENABLE = "scan_shift_enable"


@dataclasses.dataclass(frozen=True)
class MuxPlan:
    """Which pseudo-inputs get MUXes and which constant each one ties to.

    ``tie_values[q]`` is the value presented during shift mode.  Pseudo-
    inputs absent from ``tie_values`` keep their direct connection (their
    transitions must be suppressed by the controlled-input pattern
    instead).
    """

    tie_values: Mapping[str, int]

    @property
    def muxed_lines(self) -> frozenset[str]:
        return frozenset(self.tie_values)

    def area_overhead_um2(self, library: CellLibrary | None = None) -> float:
        """Total added cell area (MUX2 + tie cells)."""
        library = library or default_library()
        mux_area = library.spec(GateType.MUX2, 3).area_um2
        tie_area = library.spec(GateType.CONST0, 0).area_um2
        return len(self.tie_values) * (mux_area + tie_area)


def insert_muxes(circuit: Circuit, plan: MuxPlan,
                 shift_enable: str = SHIFT_ENABLE) -> Circuit:
    """Return a new circuit with the plan's MUXes physically inserted.

    For each muxed pseudo-input ``q``: a tie cell, then
    ``q__mux = MUX2(shift_enable, q, tie)`` (shift-enable high selects the
    tie value), with every former sink of ``q`` rewired to ``q__mux``.
    """
    dff_outputs = set(circuit.dff_outputs)
    unknown = set(plan.tie_values) - dff_outputs
    if unknown:
        raise ScanError(
            f"not pseudo-inputs (flop Q lines): {sorted(unknown)}")

    rewritten = circuit.copy()
    if not rewritten.has_line(shift_enable):
        rewritten.add_input(shift_enable)

    for q_line, tie in plan.tie_values.items():
        if tie not in (0, 1):
            raise ScanError(f"tie value for {q_line!r} must be 0/1")
        tie_line = f"{q_line}__tie"
        mux_line = f"{q_line}__mux"
        for name in (tie_line, mux_line):
            if rewritten.has_line(name):
                raise ScanError(f"name collision inserting MUX: {name!r}")
        sinks = list(rewritten.fanout(q_line))
        tie_type = GateType.CONST1 if tie else GateType.CONST0
        rewritten.add_gate(tie_line, tie_type, ())
        rewritten.add_gate(mux_line, GateType.MUX2,
                           (shift_enable, q_line, tie_line))
        for sink, _pin in sinks:
            gate = rewritten.gates[sink]
            new_inputs = tuple(
                mux_line if src == q_line else src for src in gate.inputs)
            rewritten.replace_gate(sink, gate.gtype, new_inputs)
        if rewritten.is_output(q_line):
            # A Q line that is also a PO keeps its direct connection; the
            # MUX only shields the combinational fanout.
            pass
    rewritten.validate()
    return rewritten
