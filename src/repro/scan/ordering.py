"""Scan-cell and test-vector reordering for shift power (paper epilogue).

The paper's experiments deliberately use *no* reordering: "No test vector
reordering or scan cell reordering was performed in these experiments.
By applying reordering techniques, further improvements can be achieved."
This module implements that mentioned-but-unevaluated extension, so the
claim can be measured (ablation bench ``bench_ablation_ordering``):

* **Vector reordering** — application order is free in scan testing
  (coverage is order-independent); choosing an order that minimises the
  Hamming distance between consecutive *loaded states* reduces the
  difference traffic shifted through the chain.  This is a shortest
  Hamiltonian path problem on the Hamming graph; we solve it with
  networkx's greedy TSP approximation plus an optional 2-opt refinement.
* **Chain reordering** — the chain order determines which bit stream
  passes through which cell; placing cells whose *vector columns* are
  similar next to each other makes neighbouring cells carry correlated
  values, so fewer shift steps flip them.  Same TSP formulation over
  cell columns.

Both run on the non-multiplexed cells' traffic only when a
:class:`~repro.scan.mux.MuxPlan` is given (muxed pseudo-inputs present
constants during shift, so their columns are free).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import networkx as nx
import numpy as np

from repro.errors import ScanError
from repro.scan.chain import ScanChain
from repro.scan.testview import ScanDesign, TestVector

__all__ = ["OrderingResult", "reorder_vectors", "reorder_chain",
           "hamming_path_cost"]


@dataclasses.dataclass
class OrderingResult:
    """Outcome of a reordering search.

    ``order`` holds indices into the original sequence; ``cost_before`` /
    ``cost_after`` are the summed Hamming distances along the sequence.
    """

    order: list[int]
    cost_before: int
    cost_after: int

    @property
    def improvement(self) -> float:
        """Relative cost reduction (0.0 when there was nothing to gain)."""
        if self.cost_before == 0:
            return 0.0
        return (self.cost_before - self.cost_after) / self.cost_before


def hamming_path_cost(rows: np.ndarray) -> int:
    """Sum of Hamming distances between consecutive rows."""
    if len(rows) < 2:
        return 0
    return int((rows[1:] != rows[:-1]).sum())


def _tsp_path_order(rows: np.ndarray, two_opt_rounds: int) -> list[int]:
    """Approximate shortest Hamiltonian path over rows (Hamming metric).

    A virtual depot node with zero-cost edges converts the path problem
    into a tour for networkx's ``greedy_tsp``; 2-opt passes then refine.
    """
    n = len(rows)
    if n <= 2:
        return list(range(n))
    graph = nx.complete_graph(n + 1)  # node n is the depot
    for i in range(n):
        graph[n][i]["weight"] = 0
        for j in range(i + 1, n):
            graph[i][j]["weight"] = int((rows[i] != rows[j]).sum())
    tour = nx.approximation.greedy_tsp(graph, source=n)
    # tour: depot ... depot; drop the depot to get a path order.
    path = [node for node in tour[:-1] if node != n]

    def path_cost(order: list[int]) -> int:
        return sum(graph[a][b]["weight"]
                   for a, b in zip(order, order[1:]))

    for _ in range(two_opt_rounds):
        improved = False
        cost = path_cost(path)
        for i in range(len(path) - 1):
            for j in range(i + 2, len(path)):
                candidate = path[:i + 1] + path[i + 1:j + 1][::-1] \
                    + path[j + 1:]
                new_cost = path_cost(candidate)
                if new_cost < cost:
                    path, cost = candidate, new_cost
                    improved = True
        if not improved:
            break
    return path


def _vector_matrix(design: ScanDesign, vectors: Sequence[TestVector],
                   active_cells: Sequence[int]) -> np.ndarray:
    matrix = np.zeros((len(vectors), len(active_cells)), dtype=np.int8)
    for vi, vector in enumerate(vectors):
        for ci, cell_pos in enumerate(active_cells):
            matrix[vi, ci] = vector.scan_state[cell_pos]
    return matrix


def _active_cells(design: ScanDesign,
                  muxed: frozenset[str] | set[str] | None) -> list[int]:
    muxed = muxed or set()
    return [i for i, cell in enumerate(design.chain.cells)
            if cell.q not in muxed]


def reorder_vectors(design: ScanDesign, vectors: Sequence[TestVector],
                    muxed: set[str] | None = None,
                    two_opt_rounds: int = 2
                    ) -> tuple[list[TestVector], OrderingResult]:
    """Reorder the test set to minimise consecutive-state differences.

    Fault coverage is untouched (the same vectors are applied).  Returns
    the reordered list and the bookkeeping.
    """
    if not vectors:
        raise ScanError("empty test set")
    active = _active_cells(design, muxed)
    rows = _vector_matrix(design, vectors, active)
    before = hamming_path_cost(rows)
    order = _tsp_path_order(rows, two_opt_rounds)
    after = hamming_path_cost(rows[order])
    if after > before:  # the approximation must never make things worse
        order = list(range(len(vectors)))
        after = before
    return ([vectors[i] for i in order],
            OrderingResult(order=order, cost_before=before,
                           cost_after=after))


def reorder_chain(design: ScanDesign, vectors: Sequence[TestVector],
                  muxed: set[str] | None = None,
                  two_opt_rounds: int = 2
                  ) -> tuple[ScanDesign, list[TestVector],
                             OrderingResult]:
    """Reorder the scan chain so neighbouring cells carry similar bits.

    Returns a new :class:`ScanDesign` (same circuit, permuted chain), the
    vectors re-expressed in the new chain order, and the bookkeeping.
    Muxed cells (whose shift values are constants) are ignored by the
    cost model but keep their relative participation in the chain.
    """
    if not vectors:
        raise ScanError("empty test set")
    cells = design.chain.cells
    active = _active_cells(design, muxed)
    if len(active) < 2:
        return design, list(vectors), OrderingResult(
            order=list(range(len(cells))), cost_before=0, cost_after=0)

    columns = _vector_matrix(design, vectors, active).T  # cell-major
    before = hamming_path_cost(columns)
    order_within_active = _tsp_path_order(columns, two_opt_rounds)
    after = hamming_path_cost(columns[order_within_active])
    if after > before:
        order_within_active = list(range(len(active)))
        after = before

    # Build the full cell permutation: active cells take their new
    # relative order; muxed cells stay at their original positions.
    new_positions = list(range(len(cells)))
    reordered_active = [active[i] for i in order_within_active]
    for slot, original in zip(active, reordered_active):
        new_positions[slot] = original

    new_chain = ScanChain([cells[i] for i in new_positions],
                          name=design.chain.name + "_reordered")
    new_design = ScanDesign(design.circuit, new_chain)

    remapped = [
        TestVector(
            pi_values=v.pi_values,
            scan_state=tuple(v.scan_state[i] for i in new_positions))
        for v in vectors
    ]
    return new_design, remapped, OrderingResult(
        order=new_positions, cost_before=before, cost_after=after)
