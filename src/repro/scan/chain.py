"""Scan chain model and shift-state generation.

A full-scan design replaces every DFF with a scan cell; the cells form a
shift register.  Position 0 is nearest the scan-in pin; on every shift
clock ``state'[0] = scan_in`` and ``state'[p] = state[p-1]``.  Loading a
test vector ``v`` therefore feeds bits in the order
``v[L-1], v[L-2], ..., v[0]`` and takes exactly ``L`` shifts, during which
all the intermediate chain states drive the circuit's pseudo-inputs —
these intermediate states are precisely the transitions the paper's
structure blocks.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator, Sequence

from repro.errors import ScanError
from repro.netlist.circuit import Circuit
from repro.utils.rng import make_rng

__all__ = ["ScanCell", "ScanChain"]


@dataclasses.dataclass(frozen=True)
class ScanCell:
    """One scan cell: its Q line (pseudo-input) and D line (pseudo-output)."""

    q: str
    d: str


class ScanChain:
    """An ordered scan chain over a circuit's flops.

    The paper performs **no** scan-cell reordering ("No test vector
    reordering or scan cell reordering was performed"); the default order
    is the flop declaration order, with an optional seeded shuffle for
    sensitivity studies.
    """

    def __init__(self, cells: Sequence[ScanCell], name: str = "chain0"):
        if not cells:
            raise ScanError("scan chain must contain at least one cell")
        q_names = [c.q for c in cells]
        if len(set(q_names)) != len(q_names):
            raise ScanError("duplicate scan cells in chain")
        self.name = name
        self._cells = tuple(cells)
        self._position = {c.q: i for i, c in enumerate(self._cells)}

    @classmethod
    def from_circuit(cls, circuit: Circuit,
                     order: Sequence[str] | None = None,
                     seed: int | None = None,
                     name: str = "chain0") -> "ScanChain":
        """Build the chain from a circuit's DFFs.

        ``order`` (Q line names) overrides the declaration order; ``seed``
        applies a reproducible shuffle instead.
        """
        by_q = {g.output: ScanCell(q=g.output, d=g.inputs[0])
                for g in circuit.dff_gates}
        if not by_q:
            raise ScanError(f"{circuit.name}: no flops to scan")
        if order is not None:
            missing = set(by_q) - set(order)
            extra = set(order) - set(by_q)
            if missing or extra:
                raise ScanError(
                    f"chain order mismatch: missing={sorted(missing)} "
                    f"unknown={sorted(extra)}")
            cells = [by_q[q] for q in order]
        else:
            cells = list(by_q.values())
            if seed is not None:
                rng = make_rng(seed)
                rng.shuffle(cells)
        return cls(cells, name=name)

    # ------------------------------------------------------------------ #

    @property
    def cells(self) -> tuple[ScanCell, ...]:
        return self._cells

    @property
    def length(self) -> int:
        return len(self._cells)

    @property
    def q_lines(self) -> list[str]:
        """Pseudo-input lines in chain order."""
        return [c.q for c in self._cells]

    @property
    def d_lines(self) -> list[str]:
        """Pseudo-output lines in chain order."""
        return [c.d for c in self._cells]

    def position_of(self, q_line: str) -> int:
        """Chain position of the cell with output ``q_line``."""
        try:
            return self._position[q_line]
        except KeyError:
            raise ScanError(f"{q_line!r} is not in chain "
                            f"{self.name}") from None

    # ------------------------------------------------------------------ #
    # shift semantics
    # ------------------------------------------------------------------ #

    def shift_once(self, state: tuple[int, ...],
                   scan_in: int) -> tuple[int, ...]:
        """One shift clock: returns the next chain state."""
        if len(state) != self.length:
            raise ScanError("state length mismatch")
        return (scan_in,) + state[:-1]

    def load_bits(self, vector: Sequence[int]) -> list[int]:
        """Scan-in bit sequence that loads ``vector`` in ``length`` shifts."""
        if len(vector) != self.length:
            raise ScanError("vector length mismatch")
        return [vector[self.length - 1 - t] for t in range(self.length)]

    def shift_states(self, initial: Sequence[int],
                     scan_in_bits: Sequence[int]
                     ) -> Iterator[tuple[int, ...]]:
        """Yield the chain state after each shift of ``scan_in_bits``."""
        state = tuple(initial)
        if len(state) != self.length:
            raise ScanError("initial state length mismatch")
        for bit in scan_in_bits:
            state = self.shift_once(state, bit)
            yield state

    def load_states(self, initial: Sequence[int],
                    vector: Sequence[int]) -> list[tuple[int, ...]]:
        """All intermediate states while loading ``vector``.

        The last returned state equals ``vector`` — the property the whole
        scan protocol rests on (and the chain's unit tests assert).
        """
        return list(self.shift_states(initial, self.load_bits(vector)))

    def state_as_dict(self, state: Sequence[int]) -> dict[str, int]:
        """Map a positional state onto Q line names."""
        return {cell.q: value
                for cell, value in zip(self._cells, state)}
