"""Scan structures: chains, test view, MUX insertion (paper Figure 1)."""

from repro.scan.chain import ScanCell, ScanChain
from repro.scan.multichain import (
    MultiChainDesign,
    evaluate_multichain_power,
    total_test_cycles,
)
from repro.scan.mux import SHIFT_ENABLE, MuxPlan, insert_muxes
from repro.scan.ordering import (
    OrderingResult,
    hamming_path_cost,
    reorder_chain,
    reorder_vectors,
)
from repro.scan.testview import ScanDesign, TestVector

__all__ = [
    "ScanCell",
    "ScanChain",
    "ScanDesign",
    "TestVector",
    "MuxPlan",
    "insert_muxes",
    "SHIFT_ENABLE",
    "OrderingResult",
    "reorder_vectors",
    "reorder_chain",
    "hamming_path_cost",
    "MultiChainDesign",
    "evaluate_multichain_power",
    "total_test_cycles",
]
