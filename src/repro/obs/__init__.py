"""Zero-dependency observability for the repro stack.

``repro.obs`` is the cross-cutting layer every engine and service in
this package reports into:

* :mod:`repro.obs.trace` — span-based structured tracing.  Hot paths
  wrap phases in ``with span("phase", **attrs):`` blocks; when tracing
  is enabled (``--trace DIR`` / ``$REPRO_TRACE`` /
  ``RuntimeOptions.trace``) every finished span is appended to a
  per-process JSONL file under the trace directory, carrying trace and
  span IDs that stitch pool/fork/spawn shard workers and ``repro-power
  worker`` processes into one tree.  When tracing is off (the default)
  a span is two ``time.monotonic()`` calls and nothing is written.

* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and fixed-bucket histograms with JSON and Prometheus
  text-format rendering; the artifact service's ``/metrics`` endpoint
  is backed by it.

Both modules are stdlib-only by design: the observability layer must
import (and stay near-free) on every backend, worker and CI leg.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import (
    Span,
    TraceSummary,
    activate_context,
    collect_phases,
    current_trace_id,
    disable,
    enable,
    flush,
    propagation_context,
    read_spans,
    record_event,
    resolve_trace,
    span,
    summarize_trace,
    sync_from_session,
    trace_dir,
    traced,
    traced_task,
    tracing_enabled,
    using_context,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceSummary",
    "activate_context",
    "collect_phases",
    "current_trace_id",
    "disable",
    "enable",
    "flush",
    "get_registry",
    "propagation_context",
    "read_spans",
    "record_event",
    "resolve_trace",
    "span",
    "summarize_trace",
    "sync_from_session",
    "trace_dir",
    "traced",
    "traced_task",
    "tracing_enabled",
    "using_context",
]
