"""Span-based structured tracing with cross-process propagation.

A *span* is one timed phase: a name, monotonic start/duration, a
16-hex span ID, the 32-hex trace ID of the run it belongs to, the span
ID of its parent (or ``None`` for a root), the recording PID/thread
and free-form attributes.  Instrumented code wraps phases in::

    with span("sim.episode_batch", backend="numpy") as sp:
        ...                      # sp.elapsed_s() mid-flight
    sp.dur_s                     # measured duration, always available

Spans **always measure** (two ``time.monotonic()`` calls — the same
clock ``utils.timing.Stopwatch`` uses, so callers may read ``dur_s``
for bookkeeping whether or not tracing is on) but are only *recorded*
when tracing is enabled.  Enabled means a trace directory is
configured — per-call arg > session default (``RuntimeOptions.trace``,
``--trace DIR``) > ``$REPRO_TRACE`` > off — and every finished span is
buffered and appended to ``<dir>/trace-<pid>-<token>.jsonl`` (one JSON
object per line; flushed whenever a root span closes, when the buffer
tops 512 spans, at :func:`disable`, and at interpreter exit).
Per-process files mean concurrent writers never interleave.

Cross-process stitching
-----------------------
:func:`propagation_context` captures ``{"trace_id", "parent_span_id",
"dir"}`` for shipping inside a task payload or queue job record;
:func:`activate_context` (or the scoped :func:`using_context`)
installs it in the receiving process so new root spans parent under
the shipping span and carry the same trace ID.  Fork workers need no
payload at all: the trace configuration and the forking thread's open
span stack are inherited copy-on-write, and an ``os.register_at_fork``
hook resets the child's output file and drops the parent's unflushed
buffer so nothing is written twice.  One campaign — pool, fork, spawn
and ``repro-power worker`` processes included — therefore yields a
single stitched tree under one directory, summarized by
:func:`summarize_trace` / ``repro-power trace summarize DIR``.

Span record schema (one JSONL line)::

    {"trace": "<32 hex>", "span": "<16 hex>", "parent": "<16 hex>"|null,
     "name": "phase", "t0": <epoch seconds>, "dur_s": <float>,
     "pid": <int>, "thread": "<name>", "attrs": {...}}
"""

from __future__ import annotations

import atexit
import dataclasses
import functools
import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "Span",
    "TraceSummary",
    "activate_context",
    "collect_phases",
    "current_trace_id",
    "disable",
    "enable",
    "flush",
    "propagation_context",
    "read_spans",
    "record_event",
    "resolve_trace",
    "span",
    "summarize_trace",
    "sync_from_session",
    "trace_dir",
    "traced",
    "traced_task",
    "tracing_enabled",
    "using_context",
]

_FLUSH_THRESHOLD = 512

_lock = threading.Lock()
_enabled = False
_dir: Path | None = None
_trace_id: str | None = None
_remote_parent: str | None = None
_buffer: list[dict[str, Any]] = []
_file_token = ""
_managed = False  # recorder enabled by sync_from_session (vs. enable())
_local = threading.local()


def _stack() -> list[str]:
    stack: list[str] | None = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def _collectors() -> list[dict[str, float]]:
    sinks: list[dict[str, float]] | None = getattr(_local, "sinks", None)
    if sinks is None:
        sinks = _local.sinks = []
    return sinks


# ---------------------------------------------------------------------- #
# enable / disable / resolution
# ---------------------------------------------------------------------- #


def tracing_enabled() -> bool:
    """Whether finished spans are currently being recorded."""
    return _enabled


def trace_dir() -> Path | None:
    """The active trace directory, or ``None`` when tracing is off."""
    return _dir if _enabled else None


def current_trace_id() -> str | None:
    """The active 32-hex trace ID, or ``None`` when tracing is off."""
    return _trace_id if _enabled else None


def enable(directory: str | Path, *, trace_id: str | None = None,
           parent_span_id: str | None = None) -> None:
    """Start recording spans into ``directory``.

    A fresh trace ID is minted unless ``trace_id`` is given (workers
    receiving a :func:`propagation_context` pass the parent's).
    Re-enabling the same directory without an explicit ``trace_id`` is
    a no-op, so repeated ``set_session_defaults`` calls never rotate a
    run's trace ID mid-flight.
    """
    global _enabled, _dir, _trace_id, _remote_parent, _file_token
    with _lock:
        target = Path(directory)
        if _enabled and _dir == target and trace_id is None:
            return
        target.mkdir(parents=True, exist_ok=True)
        _dir = target
        _trace_id = trace_id or uuid.uuid4().hex
        _remote_parent = parent_span_id
        _file_token = uuid.uuid4().hex[:8]
        _enabled = True


def disable() -> None:
    """Flush buffered spans and stop recording."""
    global _enabled, _dir, _trace_id, _remote_parent, _managed
    with _lock:
        _flush_locked()
        _enabled = False
        _dir = None
        _trace_id = None
        _remote_parent = None
        _managed = False


def resolve_trace(trace: str | None = None) -> str | None:
    """The effective trace directory for one invocation.

    Resolution: ``trace`` argument > session default
    (:func:`repro.runtime.session_defaults`) > ``$REPRO_TRACE`` > off.
    An empty string at any level pins tracing off.  Returns the
    directory path or ``None``.
    """
    if trace is not None:
        return trace or None
    from repro import runtime
    session = runtime.session_defaults().trace
    if session is not None:
        return session or None
    return os.environ.get("REPRO_TRACE") or None


def sync_from_session() -> None:
    """Align the recording state with the resolved session knob.

    Called by :func:`repro.runtime.set_session_defaults` (and the
    ``using`` scope) so ``RuntimeOptions(trace=...)`` turns the
    recorder on and off like any other runtime knob.  Only a recorder
    the session itself enabled is disabled here — an explicit
    :func:`enable` (e.g. a worker adopting a shipped context) is not
    torn down by an unrelated session reset.
    """
    global _managed
    directory = resolve_trace()
    if directory:
        enable(directory)
        _managed = True
    elif _enabled and _managed:
        disable()


# ---------------------------------------------------------------------- #
# spans
# ---------------------------------------------------------------------- #


class Span:
    """One timed phase; use via the :class:`span` context manager."""

    __slots__ = ("name", "attrs", "trace_id", "span_id", "parent_id",
                 "t0", "dur_s", "_start", "_pushed")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self.t0 = 0.0
        self.dur_s = 0.0
        self._start = 0.0
        self._pushed = False

    def elapsed_s(self) -> float:
        """Monotonic seconds since the span was entered."""
        return time.monotonic() - self._start


class span:
    """Context manager timing one phase (recorded only when enabled).

    ``with span("queue.claim", worker=wid) as sp:`` — ``sp`` is the
    :class:`Span`; ``sp.dur_s`` holds the measured duration after exit
    regardless of whether tracing is on, so instrumented code may use
    it for its own bookkeeping (one clock source).
    """

    __slots__ = ("_sp",)

    def __init__(self, name: str, **attrs: Any):
        self._sp = Span(name, attrs)

    def __enter__(self) -> Span:
        sp = self._sp
        if _enabled:
            stack = _stack()
            sp.trace_id = _trace_id
            sp.parent_id = stack[-1] if stack else _remote_parent
            sp.span_id = uuid.uuid4().hex[:16]
            stack.append(sp.span_id)
            sp._pushed = True
            sp.t0 = time.time()
        sp._start = time.monotonic()
        return sp

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        sp = self._sp
        sp.dur_s = time.monotonic() - sp._start
        for sink in _collectors():
            sink[sp.name] = sink.get(sp.name, 0.0) + sp.dur_s
        if sp._pushed:
            stack = _stack()
            if stack and stack[-1] == sp.span_id:
                stack.pop()
            if _enabled:
                record: dict[str, Any] = {
                    "trace": sp.trace_id,
                    "span": sp.span_id,
                    "parent": sp.parent_id,
                    "name": sp.name,
                    "t0": sp.t0,
                    "dur_s": sp.dur_s,
                    "pid": os.getpid(),
                    "thread": threading.current_thread().name,
                    "attrs": sp.attrs,
                }
                if exc_type is not None:
                    record["error"] = exc_type.__name__
                _record(record, root_done=not stack)


def record_event(name: str, dur_s: float, **attrs: Any) -> None:
    """Record a completed span without touching the thread-local stack.

    For timings measured outside a ``with span(...)`` block — notably
    asyncio request handlers, where concurrent coroutines interleave
    on one thread and a stack-based context manager would mis-nest.
    The event parents under whatever span is open on this thread (or
    the remote parent) and is a no-op when tracing is off.
    """
    if not _enabled:
        return
    stack = _stack()
    record: dict[str, Any] = {
        "trace": _trace_id,
        "span": uuid.uuid4().hex[:16],
        "parent": stack[-1] if stack else _remote_parent,
        "name": name,
        "t0": time.time() - dur_s,
        "dur_s": dur_s,
        "pid": os.getpid(),
        "thread": threading.current_thread().name,
        "attrs": attrs,
    }
    _record(record, root_done=not stack)


class _TracedTask:
    """Picklable task wrapper carrying the sender's trace context.

    Wraps a module-level worker function for ``multiprocessing`` maps:
    the receiving process adopts the shipped context (joining the
    sender's trace), runs the task under a named span and flushes its
    span file before returning (``multiprocessing`` children cannot be
    relied on to run ``atexit`` hooks).  When tracing is off the
    shipped context is ``None`` and the wrapper is a plain call.
    """

    __slots__ = ("fn", "context", "name")

    def __init__(self, fn: Any, context: Mapping[str, Any] | None,
                 name: str):
        self.fn = fn
        self.context = context
        self.name = name

    def __call__(self, item: Any) -> Any:
        with using_context(self.context):
            with span(self.name):
                result = self.fn(item)
        flush()
        return result


def traced_task(fn: Any, name: str = "shard.worker") -> Any:
    """Wrap ``fn`` so worker processes executing it join this trace."""
    return _TracedTask(fn, propagation_context(), name)


def traced(name: str, **attrs: Any):
    """Decorator wrapping every call of a function in a :class:`span`.

    One-line instrumentation for phase-sized functions (plan compiles,
    dispatch entry points) — not for inner loops.
    """
    def decorate(fn: Any) -> Any:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(name, **attrs):
                return fn(*args, **kwargs)
        return wrapper
    return decorate


class _collect_phases:
    """Accumulate ``{phase name: total seconds}`` for this thread.

    Works whether or not tracing is enabled (spans always measure), so
    campaign executors can attach per-job phase timings to manifests
    unconditionally.  Nested spans each contribute their own duration,
    so a parent phase's total includes time also counted under its
    children — sums are per-phase, not a partition of wall time.
    """

    __slots__ = ("sink",)

    def __init__(self) -> None:
        self.sink: dict[str, float] = {}

    def __enter__(self) -> dict[str, float]:
        _collectors().append(self.sink)
        return self.sink

    def __exit__(self, *exc: Any) -> None:
        sinks = _collectors()
        if self.sink in sinks:
            sinks.remove(self.sink)


collect_phases = _collect_phases


# ---------------------------------------------------------------------- #
# recording / flushing
# ---------------------------------------------------------------------- #


def _record(record: dict[str, Any], *, root_done: bool) -> None:
    with _lock:
        if not _enabled:
            return
        _buffer.append(record)
        if root_done or len(_buffer) >= _FLUSH_THRESHOLD:
            _flush_locked()


def _flush_locked() -> Path | None:
    global _buffer
    if not _buffer or _dir is None:
        return None
    path = _dir / f"trace-{os.getpid()}-{_file_token}.jsonl"
    lines = "".join(
        json.dumps(rec, sort_keys=True, default=str) + "\n"
        for rec in _buffer)
    try:
        with path.open("a") as handle:
            handle.write(lines)
    except OSError:
        return None
    finally:
        _buffer = []
    return path


def flush() -> Path | None:
    """Write buffered spans to the trace directory now.

    Returns the per-process JSONL path written to, or ``None`` when
    there was nothing to flush.  Worker entry points call this before
    exiting (``multiprocessing`` children skip ``atexit``).
    """
    with _lock:
        return _flush_locked()


def _after_fork_in_child() -> None:
    # The child inherits the parent's configuration and the forking
    # thread's open span stack (that is what stitches fork workers for
    # free) but must not re-flush the parent's buffered spans, and
    # needs its own output file and a fresh lock.
    global _lock, _buffer, _file_token
    _lock = threading.Lock()
    _buffer = []
    _file_token = uuid.uuid4().hex[:8]


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(
        before=lambda: _lock.acquire(),
        after_in_parent=lambda: _lock.release(),
        after_in_child=_after_fork_in_child,
    )

atexit.register(flush)


# ---------------------------------------------------------------------- #
# propagation
# ---------------------------------------------------------------------- #


def propagation_context() -> dict[str, str | None] | None:
    """Trace context for shipping to another process, or ``None``.

    The receiving process passes it to :func:`activate_context` /
    :func:`using_context`; its new root spans then parent under the
    span open here and join this trace.  The directory travels too
    (the work queue and shard workers share a filesystem, exactly like
    the queue directory itself).
    """
    if not _enabled:
        return None
    stack = _stack()
    return {
        "trace_id": _trace_id,
        "parent_span_id": stack[-1] if stack else _remote_parent,
        "dir": str(_dir),
    }


def activate_context(context: Mapping[str, Any] | None) -> None:
    """Adopt a shipped :func:`propagation_context` in this process.

    Enables recording into the shipped directory when this process has
    no trace configuration of its own; a worker started with an
    explicit ``--trace DIR`` keeps writing there but still adopts the
    trace ID and parent so the tree stitches.  ``None`` is a no-op.
    """
    global _trace_id, _remote_parent
    if not context:
        return
    directory = context.get("dir")
    if not _enabled and directory:
        enable(directory, trace_id=context.get("trace_id"),
               parent_span_id=context.get("parent_span_id"))
        return
    with _lock:
        if context.get("trace_id"):
            _trace_id = context["trace_id"]
        _remote_parent = context.get("parent_span_id")


class using_context:
    """Scoped :func:`activate_context` — restores IDs on exit.

    Long-lived workers (the campaign pool, the queue drain loop) serve
    payloads from potentially different traces; each task adopts its
    payload's context only for the duration of its execution.  The
    thread's open-span stack is set aside for the scope: the shipped
    ``parent_span_id`` is the authoritative parent here, not whatever
    spans this process inherited across ``fork`` or has open in its
    own drain loop.
    """

    __slots__ = ("_context", "_saved", "_saved_stack")

    def __init__(self, context: Mapping[str, Any] | None):
        self._context = context
        self._saved: tuple[str | None, str | None] | None = None
        self._saved_stack: list[str] | None = None

    def __enter__(self) -> None:
        if self._context:
            self._saved = (_trace_id, _remote_parent)
            stack = _stack()
            self._saved_stack = stack[:]
            stack.clear()
            activate_context(self._context)

    def __exit__(self, *exc: Any) -> None:
        global _trace_id, _remote_parent
        if self._saved is not None:
            with _lock:
                _trace_id, _remote_parent = self._saved
            stack = _stack()
            stack.clear()
            stack.extend(self._saved_stack or [])


# ---------------------------------------------------------------------- #
# reading / summarizing
# ---------------------------------------------------------------------- #


def read_spans(directory: str | Path) -> list[dict[str, Any]]:
    """All span records under ``directory`` (every trace-*.jsonl).

    Unparseable lines are skipped (a crashed writer can truncate its
    last line); records are returned sorted by wall-clock start.
    """
    records: list[dict[str, Any]] = []
    root = Path(directory)
    for path in sorted(root.glob("trace-*.jsonl")):
        try:
            text = path.read_text()
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "span" in record:
                records.append(record)
    records.sort(key=lambda r: (r.get("t0", 0.0), r.get("span", "")))
    return records


@dataclasses.dataclass
class _PhaseAgg:
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0


@dataclasses.dataclass
class TraceSummary:
    """Aggregate view of one trace directory.

    ``phases`` maps phase name to (count, total seconds, max seconds);
    ``wall_s`` is the summed duration of root spans; ``critical_path``
    walks from the longest root span down its longest child at each
    level; ``orphans`` are spans whose recorded parent appears nowhere
    in the directory (a propagation bug — pinned empty by tests).
    """

    spans: int
    traces: list[str]
    processes: list[int]
    wall_s: float
    phases: dict[str, tuple[int, float, float]]
    critical_path: list[tuple[str, float, int]]
    orphans: list[str]

    def render(self) -> str:
        lines = [
            f"spans: {self.spans}   traces: {len(self.traces)}   "
            f"processes: {len(self.processes)}   wall: {self.wall_s:.3f}s",
        ]
        if self.orphans:
            lines.append(f"ORPHAN SPANS: {len(self.orphans)} "
                         f"(broken parent links)")
        if self.phases:
            name_w = max(len(n) for n in self.phases)
            name_w = max(name_w, len("phase"))
            lines.append("")
            lines.append(f"{'phase':<{name_w}}  {'count':>7}  "
                         f"{'total_s':>10}  {'mean_s':>10}  {'max_s':>10}")
            for name in sorted(self.phases,
                               key=lambda n: -self.phases[n][1]):
                count, total, peak = self.phases[name]
                lines.append(
                    f"{name:<{name_w}}  {count:>7}  {total:>10.4f}  "
                    f"{total / count:>10.4f}  {peak:>10.4f}")
        if self.critical_path:
            lines.append("")
            lines.append("critical path:")
            for depth, (name, dur, pid) in enumerate(self.critical_path):
                lines.append(f"  {'  ' * depth}{name}  "
                             f"{dur:.4f}s  [pid {pid}]")
        return "\n".join(lines)


def summarize_trace(directory: str | Path) -> TraceSummary:
    """Aggregate every span under ``directory`` into a summary."""
    records = read_spans(directory)
    by_id = {rec["span"]: rec for rec in records}
    children: dict[str, list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    orphans: list[str] = []
    phases: dict[str, _PhaseAgg] = {}
    traces: list[str] = []
    processes: list[int] = []
    for rec in records:
        trace = rec.get("trace")
        if trace and trace not in traces:
            traces.append(trace)
        pid = rec.get("pid")
        if isinstance(pid, int) and pid not in processes:
            processes.append(pid)
        agg = phases.setdefault(rec.get("name", "?"), _PhaseAgg())
        dur = float(rec.get("dur_s", 0.0))
        agg.count += 1
        agg.total_s += dur
        agg.max_s = max(agg.max_s, dur)
        parent = rec.get("parent")
        if parent is None:
            roots.append(rec)
        elif parent in by_id:
            children.setdefault(parent, []).append(rec)
        else:
            orphans.append(rec["span"])
    wall_s = sum(float(rec.get("dur_s", 0.0)) for rec in roots)
    critical: list[tuple[str, float, int]] = []
    if roots:
        node = max(roots, key=lambda rec: float(rec.get("dur_s", 0.0)))
        while node is not None:
            critical.append((node.get("name", "?"),
                             float(node.get("dur_s", 0.0)),
                             int(node.get("pid", 0))))
            kids = children.get(node["span"])
            node = (max(kids, key=lambda rec: float(rec.get("dur_s", 0.0)))
                    if kids else None)
    return TraceSummary(
        spans=len(records),
        traces=traces,
        processes=sorted(processes),
        wall_s=wall_s,
        phases={name: (agg.count, agg.total_s, agg.max_s)
                for name, agg in phases.items()},
        critical_path=critical,
        orphans=orphans,
    )


def _reset_for_tests() -> None:
    """Drop all recorder state (tests only)."""
    global _enabled, _dir, _trace_id, _remote_parent, _buffer, _managed
    with _lock:
        _enabled = False
        _dir = None
        _trace_id = None
        _remote_parent = None
        _buffer = []
        _managed = False
    _local.stack = []
    _local.sinks = []
