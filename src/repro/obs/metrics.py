"""Process-wide counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a thread-safe, get-or-create store of
instruments keyed by ``(name, labels)``; instruments with the same
name but different label sets form one *family* sharing a type and a
help string, exactly as Prometheus models them.  The module-level
:func:`get_registry` instance is the process-wide default every
instrumented subsystem (cache, queue, service, shard dispatch) reports
into; the artifact service's ``/metrics`` endpoint renders it.

Two renderings, same data:

* :meth:`MetricsRegistry.snapshot` — a flat JSON-able dict, label sets
  folded into the key (``'repro_queue_depth{state="pending"}'``);
  histograms become ``{"count", "sum", "buckets"}`` sub-dicts.
* :meth:`MetricsRegistry.render_prometheus` — the text exposition
  format (``# HELP`` / ``# TYPE`` lines, ``_bucket{le=...}`` /
  ``_sum`` / ``_count`` series for histograms) a Prometheus server
  scrapes directly.

Everything is stdlib-only and an increment is one lock acquisition —
instruments are safe to hit from the service's asyncio callbacks and
worker threads alike.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   60.0)


def _label_suffix(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape(value)}"' for key, value in labels)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


class Counter:
    """Monotonically increasing count (``_total`` by convention)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (depths, sizes, temperatures)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches
    the tail.  ``observe`` is O(number of buckets).
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock,
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self._lock = lock
        self.buckets = bounds
        self._counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
                    break

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper bound, cumulative count)`` pairs incl. ``+Inf``."""
        with self._lock:
            running = 0
            pairs = []
            for index, bound in enumerate(self.buckets):
                running += self._counts[index]
                pairs.append((bound, running))
            pairs.append((math.inf, self._count))
            return pairs


class MetricsRegistry:
    """Thread-safe get-or-create store of metric instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[
            tuple[str, tuple[tuple[str, str], ...]], Any] = {}
        self._families: dict[str, tuple[str, str]] = {}  # name -> (type, help)

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def _get(self, kind: str, name: str, help_text: str,
             labels: Mapping[str, str] | None,
             factory: Any) -> Any:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        key_labels = tuple(sorted(
            (str(k), str(v)) for k, v in (labels or {}).items()))
        for label, _ in key_labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        key = (name, key_labels)
        with self._lock:
            family = self._families.get(name)
            if family is not None and family[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family[0]}")
            if family is None or (help_text and not family[1]):
                self._families[name] = (kind, help_text or
                                        (family[1] if family else ""))
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory()
                self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labels: Mapping[str, str] | None = None) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get("counter", name, help, labels,
                         lambda: Counter(self._lock))

    def gauge(self, name: str, help: str = "",
              labels: Mapping[str, str] | None = None) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get("gauge", name, help, labels,
                         lambda: Gauge(self._lock))

    def histogram(self, name: str, help: str = "",
                  labels: Mapping[str, str] | None = None,
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  ) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``."""
        return self._get("histogram", name, help, labels,
                         lambda: Histogram(self._lock, buckets))

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, Any]:
        """Flat JSON-able view; label sets folded into the key."""
        with self._lock:
            out: dict[str, Any] = {}
            for (name, labels), inst in sorted(self._instruments.items()):
                key = name + _label_suffix(labels)
                if isinstance(inst, Histogram):
                    running = 0
                    buckets: dict[str, int] = {}
                    for index, bound in enumerate(inst.buckets):
                        running += inst._counts[index]
                        buckets[_format_value(bound)] = running
                    buckets["+Inf"] = inst._count
                    out[key] = {"count": inst._count, "sum": inst._sum,
                                "buckets": buckets}
                else:
                    value = inst._value
                    out[key] = int(value) if value == int(value) else value
            return out

    def render_prometheus(self) -> str:
        """The text exposition format a Prometheus server scrapes."""
        with self._lock:
            by_family: dict[str, list[tuple[
                tuple[tuple[str, str], ...], Any]]] = {}
            for (name, labels), inst in sorted(self._instruments.items()):
                by_family.setdefault(name, []).append((labels, inst))
            lines: list[str] = []
            for name in sorted(by_family):
                kind, help_text = self._families[name]
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
                for labels, inst in by_family[name]:
                    suffix = _label_suffix(labels)
                    if isinstance(inst, Histogram):
                        cumulative = 0
                        for index, bound in enumerate(inst.buckets):
                            cumulative += inst._counts[index]
                            le = _format_value(bound)
                            bucket_labels = labels + (("le", le),)
                            lines.append(
                                f"{name}_bucket"
                                f"{_label_suffix(bucket_labels)} "
                                f"{cumulative}")
                        inf_labels = labels + (("le", "+Inf"),)
                        lines.append(f"{name}_bucket"
                                     f"{_label_suffix(inf_labels)} "
                                     f"{inst._count}")
                        lines.append(f"{name}_sum{suffix} "
                                     f"{_format_value(inst._sum)}")
                        lines.append(f"{name}_count{suffix} "
                                     f"{inst._count}")
                    else:
                        lines.append(f"{name}{suffix} "
                                     f"{_format_value(inst._value)}")
            return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every instrument and family (tests only)."""
        with self._lock:
            self._instruments.clear()
            self._families.clear()


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY
