"""Leakage observability (paper Section 3.C, after Johnson et al. [15]).

For a line ``i``, the leakage observability is::

    L_obs(i) = L_avg(i, 1) - L_avg(i, 0)

the difference between the average total leakage with the line at 1 versus
at 0.  A large positive value means driving (or justifying) the line to 1
is expensive in leakage; the paper uses the attribute as the tie-breaking
*directive* for every decision in its transition-blocking search, extended
from primary inputs (as in [15]) to **all** circuit lines.

Two estimators:

* :func:`monte_carlo_observability` — one packed random simulation;
  ``L_avg(i, v)`` is estimated as the *conditional* mean leakage over
  samples where line ``i`` happens to equal ``v``.  This yields the
  attribute for every line of the circuit in one pass, which is exactly
  what the paper's extension needs.  (For primary inputs, conditioning
  and forcing coincide by independence.)
* :func:`forced_observability` — the literal forcing semantics of [15]
  for controllable lines: resample with the line pinned to 1 and to 0.
  Used to validate the Monte-Carlo estimator and in ablations.

Lines that never take one of the two values in the sample get
observability 0 (no information — neutral for the directive's argmin /
argmax use).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cells.library import CellLibrary, default_library
from repro.leakage.estimator import per_sample_leakage, state_sample_leakage
from repro.netlist.circuit import Circuit
from repro.simulation.backends import Backend, resolve_backend
from repro.simulation.bitsim import random_input_words
from repro.simulation.eval2 import comb_input_lines
from repro.utils.rng import make_rng

__all__ = ["monte_carlo_observability", "forced_observability"]


def monte_carlo_observability(circuit: Circuit, n_samples: int = 512,
                              seed: int | np.random.Generator | None = 0,
                              library: CellLibrary | None = None,
                              backend: str | Backend | None = None
                              ) -> dict[str, float]:
    """Leakage observability for **every** line, by conditional means.

    One packed simulation of ``n_samples`` uniform random input vectors;
    per line, the mean leakage over samples at 1 minus the mean over
    samples at 0.
    """
    library = library or default_library()
    rng = make_rng(seed)
    input_words = random_input_words(circuit, n_samples, rng)
    state = resolve_backend(backend).run(circuit, input_words, n_samples)
    totals = state_sample_leakage(state, circuit, library)

    observability: dict[str, float] = {}
    for line in state.lines():
        ones = state.bools(line)
        n_ones = int(ones.sum())
        if n_ones == 0 or n_ones == n_samples:
            observability[line] = 0.0
            continue
        avg_one = float(totals[ones].mean())
        avg_zero = float(totals[~ones].mean())
        observability[line] = avg_one - avg_zero
    return observability


def forced_observability(circuit: Circuit,
                         lines: Sequence[str] | None = None,
                         n_samples: int = 256,
                         seed: int | np.random.Generator | None = 0,
                         library: CellLibrary | None = None,
                         backend: str | Backend | None = None
                         ) -> dict[str, float]:
    """Forcing-semantics observability for controllable input lines.

    For each requested line (default: all combinational inputs), sample
    the other inputs uniformly and compare the mean leakage with the line
    pinned to 1 versus pinned to 0 — the literal ``L_avg(i, v)`` of [15].
    The *same* random words are reused for both polarities (common random
    numbers), which makes the difference estimator much tighter.
    """
    library = library or default_library()
    controllable = comb_input_lines(circuit)
    if lines is None:
        lines = controllable
    unknown = set(lines) - set(controllable)
    if unknown:
        raise ValueError(
            f"forced_observability only supports input lines; "
            f"got {sorted(unknown)}")

    rng = make_rng(seed)
    base_words = random_input_words(circuit, n_samples, rng)
    full = (1 << n_samples) - 1

    observability: dict[str, float] = {}
    for line in lines:
        words_one = dict(base_words)
        words_one[line] = full
        words_zero = dict(base_words)
        words_zero[line] = 0
        leak_one = per_sample_leakage(
            circuit, words_one, n_samples, library, backend).mean()
        leak_zero = per_sample_leakage(
            circuit, words_zero, n_samples, library, backend).mean()
        observability[line] = float(leak_one - leak_zero)
    return observability
