"""Commutative-gate input reordering for leakage (paper Section 4, end).

The leakage of a cell depends on *which pin* carries which value: NAND2
under "01" leaks 73 nA but under "10" leaks 264 nA (Figure 2), because the
position of the OFF transistor in the stack matters.  After the scan-mode
control vector is fixed, the paper permutes the inputs of each gate so the
quiescent pattern it sees lands on the cheapest row of its table:
"changing the order of inputs such that it will result in '01' rather
than '10' can further decrease the total leakage in scan mode".

Functionality is unchanged (only commutative gates are touched) and the
delay model is pin-symmetric, so timing is unaffected.  Lines that still
carry unknown (X) values during scan mode are handled in expectation.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Mapping, Sequence

from repro.cells.library import CellLibrary, default_library
from repro.netlist.circuit import Circuit
from repro.netlist.gates import COMMUTATIVE_TYPES, X

__all__ = ["ReorderResult", "expected_gate_leakage", "best_pin_order",
           "reorder_for_leakage"]


@dataclasses.dataclass(frozen=True)
class ReorderResult:
    """Outcome of a reordering pass.

    ``circuit`` is the rewritten netlist; ``swapped_gates`` maps each
    modified gate output to its new input order; ``saved_na`` is the
    expected leakage reduction in scan mode.
    """

    circuit: Circuit
    swapped_gates: dict[str, tuple[str, ...]]
    saved_na: float


def expected_gate_leakage(table: Mapping[tuple[int, ...], float],
                          values: Sequence[int],
                          p_one: float = 0.5) -> float:
    """Expected leakage (nA) of one cell given 0/1/X pin values."""
    unknown = [i for i, v in enumerate(values) if v == X]
    if not unknown:
        return table[tuple(values)]
    acc = 0.0
    for combo in itertools.product((0, 1), repeat=len(unknown)):
        pattern = list(values)
        weight = 1.0
        for idx, bit in zip(unknown, combo):
            pattern[idx] = bit
            weight *= p_one if bit else (1.0 - p_one)
        acc += weight * table[tuple(pattern)]
    return acc


def best_pin_order(table: Mapping[tuple[int, ...], float],
                   values: Sequence[int],
                   p_one: float = 0.5) -> tuple[tuple[int, ...], float]:
    """Pin permutation minimising expected leakage for ``values``.

    Returns ``(permutation, expected_leakage)``; the permutation is a
    tuple ``perm`` such that new pin ``k`` receives old input ``perm[k]``.
    Ties keep the earliest (most identity-like) permutation, so the
    rewrite is deterministic and minimal.
    """
    best_perm = tuple(range(len(values)))
    best_leak = expected_gate_leakage(table, values, p_one)
    for perm in itertools.permutations(range(len(values))):
        permuted = [values[i] for i in perm]
        leak = expected_gate_leakage(table, permuted, p_one)
        if leak < best_leak - 1e-12:
            best_perm = perm
            best_leak = leak
    return best_perm, best_leak


def reorder_for_leakage(circuit: Circuit, quiescent: Mapping[str, int],
                        library: CellLibrary | None = None,
                        p_one: float = 0.5) -> ReorderResult:
    """Permute commutative gate inputs to minimise scan-mode leakage.

    Parameters
    ----------
    circuit:
        The netlist (not modified; a rewritten copy is returned).
    quiescent:
        Scan-mode value (0/1/X) of every line — the settled state under
        the chosen controlled-input pattern.  Lines missing from the map
        count as X.
    p_one:
        Probability that an X line sits at 1, for the expectation.
    """
    library = library or default_library()
    rewritten = circuit.copy()
    swapped: dict[str, tuple[str, ...]] = {}
    saved = 0.0
    for gate in circuit.combinational_gates():
        if gate.gtype not in COMMUTATIVE_TYPES or len(gate.inputs) < 2:
            continue
        values = [quiescent.get(src, X) for src in gate.inputs]
        if all(v == values[0] for v in values):
            continue  # fully symmetric pattern, nothing to gain
        table = library.leakage_table(gate.gtype, len(gate.inputs))
        baseline = expected_gate_leakage(table, values, p_one)
        perm, leak = best_pin_order(table, values, p_one)
        if perm == tuple(range(len(values))):
            continue
        new_inputs = tuple(gate.inputs[i] for i in perm)
        rewritten.replace_gate(gate.output, gate.gtype, new_inputs)
        swapped[gate.output] = new_inputs
        saved += baseline - leak
    rewritten.validate()
    return ReorderResult(circuit=rewritten, swapped_gates=swapped,
                         saved_na=saved)
