"""Circuit-level static power estimation from per-cell leakage tables.

Three evaluation modes, all summing paper eq. (5)
(``P = sum_i I_sub,i * VDD``) over the combinational gates:

* :func:`circuit_leakage_na` — one full 0/1 assignment;
* :func:`expected_leakage_na` — a three-valued assignment, X lines treated
  as independent Bernoulli(p) signals (used while the control pattern is
  still partial);
* :func:`per_sample_leakage` — packed multi-sample evaluation returning a
  numpy vector (backs Monte-Carlo observability and random-search IVC).
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping

import numpy as np

from repro.cells.library import CellLibrary, default_library
from repro.netlist.circuit import Circuit
from repro.netlist.gates import X
from repro.simulation.backends import Backend, SimState, resolve_backend
from repro.simulation.values import unpack_bool_array

__all__ = [
    "circuit_leakage_na",
    "expected_leakage_na",
    "per_sample_leakage",
    "state_sample_leakage",
    "leakage_power_uw",
    "leakage_from_pattern_counts",
    "per_episode_leakage",
]


def leakage_power_uw(leak_na: float, vdd: float) -> float:
    """Convert a leakage current (nA) into static power (uW) at ``vdd``."""
    return leak_na * vdd * 1e-3


def circuit_leakage_na(circuit: Circuit, values: Mapping[str, int],
                       library: CellLibrary | None = None) -> float:
    """Total combinational leakage (nA) under a full 0/1 assignment."""
    library = library or default_library()
    total = 0.0
    for gate in circuit.combinational_gates():
        pattern = tuple(values[src] for src in gate.inputs)
        total += library.leakage_na(gate.gtype, pattern)
    return total


def expected_leakage_na(circuit: Circuit, values: Mapping[str, int],
                        library: CellLibrary | None = None,
                        p_one: float = 0.5) -> float:
    """Expected leakage (nA) under a three-valued assignment.

    Every X input of a gate is treated as an independent Bernoulli
    (``p_one``) variable.  Exact for gates with 0 X inputs; for the rest
    this ignores spatial correlation, which is the standard first-order
    approximation (and only used to steer searches, never to report
    results — reported numbers always come from full simulations).
    """
    library = library or default_library()
    total = 0.0
    for gate in circuit.combinational_gates():
        in_values = [values.get(src, X) for src in gate.inputs]
        unknown = [i for i, v in enumerate(in_values) if v == X]
        table = library.leakage_table(gate.gtype, len(gate.inputs))
        if not unknown:
            total += table[tuple(in_values)]
            continue
        acc = 0.0
        for combo in itertools.product((0, 1), repeat=len(unknown)):
            pattern = list(in_values)
            weight = 1.0
            for idx, bit in zip(unknown, combo):
                pattern[idx] = bit
                weight *= p_one if bit else (1.0 - p_one)
            acc += weight * table[tuple(pattern)]
        total += acc
    return total


def _word_to_bool_array(word: int, n: int) -> np.ndarray:
    """Low ``n`` bits of ``word`` as a boolean numpy array (bit 0 first).

    Kept as an alias of :func:`repro.simulation.values.unpack_bool_array`
    for the modules that import it from here.
    """
    return unpack_bool_array(word, n)


def state_sample_leakage(state: SimState, circuit: Circuit,
                         library: CellLibrary) -> np.ndarray:
    """Per-sample total leakage (nA) from an existing simulation state.

    The vectorized LUT pricing behind :func:`per_sample_leakage`, usable
    on any backend's :class:`~repro.simulation.backends.SimState` without
    re-simulating.
    """
    n = state.n
    totals = np.zeros(n, dtype=np.float64)
    for gate in circuit.combinational_gates():
        table = library.leakage_table(gate.gtype, len(gate.inputs))
        in_bits = [state.bools(src) for src in gate.inputs]
        # Build the per-sample pattern index, then look leakage up once.
        index = np.zeros(n, dtype=np.int64)
        for bit_pos, bits in enumerate(in_bits):
            index += bits.astype(np.int64) << bit_pos
        lut = np.zeros(1 << len(in_bits), dtype=np.float64)
        for pattern, leak in table.items():
            code = 0
            for bit_pos, bit in enumerate(pattern):
                code |= bit << bit_pos
            lut[code] = leak
        totals += lut[index]
    return totals


def leakage_from_pattern_counts(circuit: Circuit,
                                counts: Mapping[str, np.ndarray],
                                library: CellLibrary | None = None
                                ) -> dict[str, float]:
    """Price exact per-gate pattern counts with the leakage tables.

    ``counts`` maps each combinational gate output to its ``int64``
    pattern-count array (see :meth:`repro.simulation.backends.SimState.
    pattern_counts`).  Accumulation runs per gate in the leakage
    table's iteration order — the exact float recipe every backend's
    ``leakage_sum`` uses — so pricing counts merged across
    pattern-axis shards reproduces the unsharded sums bit for bit.
    Entries come back in topological order, matching the backends'
    ``leakage_sum`` ordering contract.
    """
    library = library or default_library()
    leakage: dict[str, float] = {}
    for line in circuit.topo_order():
        gate = circuit.gates[line]
        table = library.leakage_table(gate.gtype, len(gate.inputs))
        gate_counts = counts[line]
        total = 0.0
        for pattern, leak_na in table.items():
            code = 0
            for pin, bit in enumerate(pattern):
                code |= bit << pin
            cycles = int(gate_counts[code])
            if cycles:
                total += cycles * leak_na
        leakage[line] = total
    return leakage


def per_episode_leakage(plan, library: CellLibrary | None = None,
                        backend: str | Backend | None = None
                        ) -> np.ndarray:
    """Mean leakage (nA) of every episode, sliced from one batch.

    ``plan`` is a compiled :class:`~repro.simulation.episode.
    EpisodePlan`; the whole test set's replay is priced in a single
    packed simulation and each episode's mean is sliced out via the
    plan's offsets — no per-episode re-simulation.
    """
    leaks = per_sample_leakage(plan.circuit, plan.waveforms,
                               plan.n_cycles, library, backend=backend)
    return np.array([leaks[start:stop].mean()
                     for start, stop in plan.episode_bounds()],
                    dtype=np.float64)


def per_sample_leakage(circuit: Circuit, input_words: Mapping[str, int],
                       n: int, library: CellLibrary | None = None,
                       backend: str | Backend | None = None
                       ) -> np.ndarray:
    """Per-sample total leakage (nA) for ``n`` packed input samples.

    Returns a float64 array of length ``n``; entry ``t`` is the circuit
    leakage under sample ``t``.  Also used with *cycles* as samples to get
    per-cycle leakage profiles.
    """
    library = library or default_library()
    state = resolve_backend(backend).run(circuit, input_words, n)
    return state_sample_leakage(state, circuit, library)
