"""Static power: estimation, leakage observability, IVC, pin reordering."""

from repro.leakage.estimator import (
    circuit_leakage_na,
    expected_leakage_na,
    leakage_from_pattern_counts,
    leakage_power_uw,
    per_episode_leakage,
    per_sample_leakage,
)
from repro.leakage.ivc import (
    IvcResult,
    greedy_bit_improvement,
    random_fill_search,
)
from repro.leakage.observability import (
    forced_observability,
    monte_carlo_observability,
)
from repro.leakage.reorder import (
    ReorderResult,
    best_pin_order,
    expected_gate_leakage,
    reorder_for_leakage,
)

__all__ = [
    "circuit_leakage_na",
    "expected_leakage_na",
    "per_sample_leakage",
    "per_episode_leakage",
    "leakage_from_pattern_counts",
    "leakage_power_uw",
    "monte_carlo_observability",
    "forced_observability",
    "IvcResult",
    "random_fill_search",
    "greedy_bit_improvement",
    "ReorderResult",
    "expected_gate_leakage",
    "best_pin_order",
    "reorder_for_leakage",
]
