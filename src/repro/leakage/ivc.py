"""Input vector control: minimum-leakage vector search (refs [14], [15]).

The paper fills the controlled inputs left unassigned by the
transition-blocking search with a minimum-leakage completion found by
random search: "The appropriate values for these don't care inputs ...
can be found by applying several random inputs and examining the total
leakage for each of them.  The number of the required simulations is far
less than the total possible vectors [14]."

:func:`random_fill_search` implements exactly that (packed: all trials are
simulated in one pass); :func:`greedy_bit_improvement` is an optional
hill-climbing refinement used by the ablation benches.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from repro.cells.library import CellLibrary, default_library
from repro.errors import ConfigError
from repro.leakage.estimator import per_sample_leakage
from repro.netlist.circuit import Circuit
from repro.simulation.backends import Backend
from repro.simulation.eval2 import comb_input_lines
from repro.simulation.values import mask
from repro.utils.rng import make_rng

__all__ = ["IvcResult", "random_fill_search", "greedy_bit_improvement"]


@dataclasses.dataclass(frozen=True)
class IvcResult:
    """Outcome of a minimum-leakage vector search.

    ``assignment`` maps every free line to its chosen value; ``leakage_na``
    is the full-circuit leakage of the winning completion; ``trials`` is
    the number of candidate vectors examined.
    """

    assignment: dict[str, int]
    leakage_na: float
    trials: int


def _packed_fixed_words(fixed: Mapping[str, int], n: int) -> dict[str, int]:
    full = mask(n)
    words: dict[str, int] = {}
    for line, value in fixed.items():
        if value not in (0, 1):
            raise ConfigError(f"fixed value for {line!r} must be 0/1")
        words[line] = full if value else 0
    return words


def random_fill_search(circuit: Circuit, fixed: Mapping[str, int],
                       free_lines: Sequence[str], n_trials: int = 64,
                       seed: int | np.random.Generator | None = 0,
                       library: CellLibrary | None = None,
                       noise_lines: Sequence[str] = (),
                       n_noise: int = 1,
                       backend: str | Backend | None = None) -> IvcResult:
    """Random search for the lowest-leakage completion of ``free_lines``.

    ``fixed`` assigns the already-decided combinational inputs; every
    combinational input must be in exactly one of the three groups
    (fixed / free / noise).  All candidates are evaluated in a single
    packed simulation.

    ``noise_lines`` model inputs that keep toggling regardless of the
    chosen completion (the non-multiplexed pseudo-inputs during shift):
    every trial is scored by its **mean** leakage over ``n_noise``
    independent random states of the noise lines.

    ``backend`` selects the packed-simulation engine (bit-identical
    across engines; speed only).
    """
    library = library or default_library()
    inputs = comb_input_lines(circuit)
    groups = [set(fixed), set(free_lines), set(noise_lines)]
    declared: set[str] = set()
    for group in groups:
        overlap = declared & group
        if overlap:
            raise ConfigError(
                f"inputs in more than one group: {sorted(overlap)}")
        declared |= group
    missing = set(inputs) - declared
    if missing:
        raise ConfigError(f"inputs unaccounted for: {sorted(missing)}")
    if n_trials < 1 or n_noise < 1:
        raise ConfigError("n_trials and n_noise must be >= 1")

    rng = make_rng(seed)
    n_samples = n_trials * n_noise
    full = mask(n_samples)
    n_bytes = (n_samples + 7) // 8
    words = _packed_fixed_words(fixed, n_samples)
    for line in noise_lines:
        words[line] = int.from_bytes(rng.bytes(n_bytes), "little") & full

    if not free_lines:
        leaks = per_sample_leakage(circuit, words, n_samples, library,
                                   backend=backend)
        return IvcResult(assignment={},
                         leakage_na=float(leaks.mean()),
                         trials=0)

    block = mask(n_noise)  # one trial's samples share the free values
    free_words: dict[str, int] = {}
    trial_bits: dict[str, int] = {}
    for line in free_lines:
        bits = int.from_bytes(rng.bytes((n_trials + 7) // 8), "little") \
            & mask(n_trials)
        trial_bits[line] = bits
        word = 0
        for t in range(n_trials):
            if (bits >> t) & 1:
                word |= block << (t * n_noise)
        free_words[line] = word
        words[line] = word

    leaks = per_sample_leakage(circuit, words, n_samples, library,
                               backend=backend)
    per_trial = leaks.reshape(n_trials, n_noise).mean(axis=1)
    best = int(np.argmin(per_trial))
    assignment = {
        line: (trial_bits[line] >> best) & 1 for line in free_lines
    }
    return IvcResult(assignment=assignment,
                     leakage_na=float(per_trial[best]),
                     trials=n_trials)


def greedy_bit_improvement(circuit: Circuit, fixed: Mapping[str, int],
                           start: Mapping[str, int],
                           max_rounds: int = 4,
                           library: CellLibrary | None = None,
                           backend: str | Backend | None = None
                           ) -> IvcResult:
    """Coordinate-descent refinement of a completion.

    Repeatedly flips single free bits, keeping flips that lower leakage,
    until a fixed point or ``max_rounds``.  Each round evaluates all
    candidate flips in one packed simulation of ``len(start)+1`` samples.
    """
    library = library or default_library()
    current = dict(start)
    free_lines = list(current)
    trials = 0
    for _ in range(max_rounds):
        n = len(free_lines) + 1
        full = mask(n)
        words = _packed_fixed_words(fixed, n)
        for i, line in enumerate(free_lines):
            base = full if current[line] else 0
            # Sample 0 is the incumbent; sample i+1 flips line i.
            words[line] = base ^ (1 << (i + 1))
        leaks = per_sample_leakage(circuit, words, n, library,
                                   backend=backend)
        trials += n
        best = int(np.argmin(leaks))
        if best == 0:
            return IvcResult(dict(current), float(leaks[0]), trials)
        flipped = free_lines[best - 1]
        current[flipped] ^= 1
    n = 1
    words = _packed_fixed_words(fixed, n)
    for line, value in current.items():
        words[line] = mask(1) if value else 0
    leak = per_sample_leakage(circuit, words, 1, library,
                              backend=backend)[0]
    return IvcResult(dict(current), float(leak), trials)
