"""Standard-cell library: electrical and timing parameters per cell.

The paper maps every circuit "to a library which contains only NAND gates,
NOR gates, and inverters" and characterises leakage per cell and input
pattern.  :class:`CellLibrary` bundles:

* per-cell **leakage tables** (from :mod:`repro.spice.characterize`,
  calibrated to Figure 2),
* **pin capacitances** and **wire/output loads** for the dynamic-power
  model (paper eq. 1),
* a linear **delay model** ``delay = intrinsic + slope * C_load`` for STA,
* cell **areas**, used to report the MUX insertion overhead.

Specs exist for unmapped gate types too (AND/OR/XOR/...), so timing and
power estimation also work on circuits before technology mapping; their
parameters are those of their NAND/NOR/INV compositions.
"""

from __future__ import annotations

import dataclasses
import functools

from repro.errors import TimingError
from repro.netlist.gates import GateType
from repro.spice.characterize import (
    MAX_CELL_ARITY,
    cell_leakage_table,
)
from repro.spice.constants import TechParams, default_tech

__all__ = ["CellSpec", "CellLibrary", "default_library", "MAX_CELL_ARITY"]


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """Electrical/timing parameters of one library cell.

    Capacitances in fF, delays in ps, area in um^2 (45 nm flavoured,
    drive-balanced sizing — absolute values are representative, relative
    values are what the algorithms consume).
    """

    name: str
    gtype: GateType
    arity: int
    pin_cap_ff: float
    internal_cap_ff: float
    intrinsic_delay_ps: float
    drive_slope_ps_per_ff: float
    area_um2: float


def _spec(name, gtype, arity, pin, internal, intrinsic, slope, area):
    return CellSpec(name, gtype, arity, pin, internal, intrinsic, slope,
                    area)


_SPECS: dict[tuple[GateType, int], CellSpec] = {}


def _register(spec: CellSpec) -> None:
    _SPECS[(spec.gtype, spec.arity)] = spec


# --- native cells (transistor-level characterised) --------------------- #
_register(_spec("INV", GateType.NOT, 1, 1.4, 0.3, 7.0, 4.5, 0.6))
_register(_spec("NAND2", GateType.NAND, 2, 1.8, 0.6, 10.0, 5.5, 1.0))
_register(_spec("NAND3", GateType.NAND, 3, 2.2, 1.0, 14.0, 7.0, 1.4))
_register(_spec("NAND4", GateType.NAND, 4, 2.6, 1.5, 18.0, 8.5, 1.9))
_register(_spec("NOR2", GateType.NOR, 2, 1.9, 0.7, 12.0, 6.5, 1.0))
_register(_spec("NOR3", GateType.NOR, 3, 2.3, 1.2, 17.0, 8.5, 1.4))
_register(_spec("NOR4", GateType.NOR, 4, 2.7, 1.8, 22.0, 10.5, 1.9))
# --- composite cells (NAND/NOR/INV implementations) -------------------- #
_register(_spec("BUF", GateType.BUFF, 1, 1.4, 0.5, 14.0, 3.5, 1.2))
_register(_spec("AND2", GateType.AND, 2, 1.8, 1.0, 17.0, 4.5, 1.6))
_register(_spec("AND3", GateType.AND, 3, 2.2, 1.4, 21.0, 4.5, 2.0))
_register(_spec("AND4", GateType.AND, 4, 2.6, 1.9, 25.0, 4.5, 2.5))
_register(_spec("OR2", GateType.OR, 2, 1.9, 1.1, 19.0, 4.5, 1.6))
_register(_spec("OR3", GateType.OR, 3, 2.3, 1.6, 24.0, 4.5, 2.0))
_register(_spec("OR4", GateType.OR, 4, 2.7, 2.2, 29.0, 4.5, 2.5))
_register(_spec("XOR2", GateType.XOR, 2, 3.1, 2.0, 24.0, 6.0, 3.0))
_register(_spec("XOR3", GateType.XOR, 3, 3.1, 4.0, 48.0, 6.0, 6.0))
_register(_spec("XOR4", GateType.XOR, 4, 3.1, 6.0, 72.0, 6.0, 9.0))
_register(_spec("XNOR2", GateType.XNOR, 2, 3.1, 2.2, 31.0, 6.0, 3.4))
_register(_spec("XNOR3", GateType.XNOR, 3, 3.1, 4.2, 55.0, 6.0, 6.4))
_register(_spec("XNOR4", GateType.XNOR, 4, 3.1, 6.2, 79.0, 6.0, 9.4))
# --- special cells ------------------------------------------------------ #
_register(_spec("MUX2", GateType.MUX2, 3, 2.0, 1.6, 16.0, 6.0, 2.2))
_register(_spec("SDFF", GateType.DFF, 1, 1.8, 3.0, 45.0, 5.0, 4.5))
_register(_spec("TIE0", GateType.CONST0, 0, 0.0, 0.0, 0.0, 0.0, 0.3))
_register(_spec("TIE1", GateType.CONST1, 0, 0.0, 0.0, 0.0, 0.0, 0.3))


class CellLibrary:
    """A technology point plus the full set of cell parameters.

    Parameters
    ----------
    tech:
        Device-model parameters (defaults to the Figure 2 calibration).
    wire_cap_per_fanout_ff:
        Wire capacitance charged per driven pin (crude routing model).
    output_load_ff:
        Extra load on primary outputs / flop D pins seen from outside.
    """

    def __init__(self, tech: TechParams | None = None,
                 wire_cap_per_fanout_ff: float = 0.25,
                 output_load_ff: float = 3.0):
        self.tech = tech or default_tech()
        self.wire_cap_per_fanout_ff = wire_cap_per_fanout_ff
        self.output_load_ff = output_load_ff

    # -- specs ---------------------------------------------------------- #

    def spec(self, gtype: GateType, arity: int) -> CellSpec:
        """The :class:`CellSpec` implementing ``gtype`` at ``arity``.

        NOT/BUFF/DFF/MUX2/CONST are arity-normalised; wide AND-family gates
        beyond :data:`MAX_CELL_ARITY` raise (map them first).
        """
        key_arity = arity
        if gtype in (GateType.NOT, GateType.BUFF, GateType.DFF):
            key_arity = 1
        elif gtype is GateType.MUX2:
            key_arity = 3
        elif gtype in (GateType.CONST0, GateType.CONST1):
            key_arity = 0
        spec = _SPECS.get((gtype, key_arity))
        if spec is None:
            raise TimingError(
                f"no library cell for {gtype} with {arity} inputs "
                f"(decompose wide gates via repro.techmap first)")
        return spec

    # -- leakage --------------------------------------------------------- #

    def leakage_table(self, gtype: GateType, arity: int
                      ) -> dict[tuple[int, ...], float]:
        """Per-pattern leakage (nA) of the cell implementing ``gtype``."""
        self.spec(gtype, arity)  # arity check
        return cell_leakage_table(gtype, arity, self.tech)

    def leakage_na(self, gtype: GateType, pattern: tuple[int, ...]) -> float:
        """Leakage current (nA) of one cell under input ``pattern``."""
        return self.leakage_table(gtype, len(pattern)).get(pattern, 0.0)

    # -- capacitance / energy -------------------------------------------- #

    def pin_cap_ff(self, gtype: GateType, arity: int) -> float:
        """Input pin capacitance (fF) of the cell implementing ``gtype``."""
        return self.spec(gtype, arity).pin_cap_ff

    @property
    def vdd(self) -> float:
        """Supply voltage of the technology point (V)."""
        return self.tech.vdd

    def switching_energy_fj(self, cap_ff: float) -> float:
        """Energy (fJ) of one output transition over ``cap_ff``.

        Paper eq. (1): 0.5 * C * VDD^2 per transition (the voltage swing of
        output nodes is the full supply).
        """
        return 0.5 * cap_ff * self.vdd * self.vdd

    # -- timing ----------------------------------------------------------- #

    def delay_ps(self, gtype: GateType, arity: int,
                 load_ff: float) -> float:
        """Pin-to-output delay (ps) at ``load_ff`` (linear delay model)."""
        spec = self.spec(gtype, arity)
        return spec.intrinsic_delay_ps + spec.drive_slope_ps_per_ff * load_ff

    @property
    def mux_spec(self) -> CellSpec:
        """The 2:1 multiplexer the proposed method inserts."""
        return _SPECS[(GateType.MUX2, 3)]

    # -- identity (for caching alongside frozen TechParams) --------------- #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CellLibrary):
            return NotImplemented
        return (self.tech == other.tech
                and self.wire_cap_per_fanout_ff
                == other.wire_cap_per_fanout_ff
                and self.output_load_ff == other.output_load_ff)

    def __hash__(self) -> int:
        return hash((self.tech, self.wire_cap_per_fanout_ff,
                     self.output_load_ff))


@functools.lru_cache(maxsize=1)
def default_library() -> CellLibrary:
    """The shared default library at the calibrated 45 nm point."""
    return CellLibrary()
