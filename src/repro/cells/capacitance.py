"""Load capacitance extraction for a circuit under a cell library.

The dynamic-power model (paper eq. 1) weighs every transition by the
capacitance it charges: the sum of the driven input pin capacitances, a
per-fanout wire contribution, the driving cell's internal capacitance and
an external load on primary outputs.
"""

from __future__ import annotations

from repro.cells.library import CellLibrary, default_library
from repro.netlist.circuit import Circuit

__all__ = ["line_load_ff", "load_map_ff", "switched_caps_ff"]


def line_load_ff(circuit: Circuit, line: str,
                 library: CellLibrary | None = None,
                 include_internal: bool = True) -> float:
    """Capacitance (fF) charged when ``line`` transitions.

    Components: fanout pin caps + wire cap per fanout + (optionally) the
    internal cap of the driving cell + the external output load when the
    line is a primary output.
    """
    library = library or default_library()
    total = 0.0
    for sink, _pin in circuit.fanout(line):
        gate = circuit.gates[sink]
        total += library.pin_cap_ff(gate.gtype, len(gate.inputs))
        total += library.wire_cap_per_fanout_ff
    if circuit.is_output(line):
        total += library.output_load_ff
    if include_internal and line in circuit.gates:
        gate = circuit.gates[line]
        total += library.spec(gate.gtype, len(gate.inputs)).internal_cap_ff
    return total


def load_map_ff(circuit: Circuit, library: CellLibrary | None = None,
                include_internal: bool = True) -> dict[str, float]:
    """``line -> load capacitance (fF)`` for every line in the circuit."""
    library = library or default_library()
    return {
        line: line_load_ff(circuit, line, library, include_internal)
        for line in circuit.lines()
    }


def switched_caps_ff(circuit: Circuit,
                     library: CellLibrary | None = None) -> dict[str, float]:
    """Alias of :func:`load_map_ff` with internal caps included.

    Named for its role in power estimation: multiply by the per-line
    transition counts and ``0.5 * VDD^2`` to get switching energy.
    """
    return load_map_ff(circuit, library, include_internal=True)
