"""Standard-cell library: leakage tables, capacitances, delays, areas."""

from repro.cells.capacitance import line_load_ff, load_map_ff, switched_caps_ff
from repro.cells.report import describe_library, leakage_summary
from repro.cells.library import (
    MAX_CELL_ARITY,
    CellLibrary,
    CellSpec,
    default_library,
)

__all__ = [
    "CellLibrary",
    "CellSpec",
    "default_library",
    "MAX_CELL_ARITY",
    "line_load_ff",
    "load_map_ff",
    "switched_caps_ff",
    "describe_library",
    "leakage_summary",
]
