"""Human-readable cell library report (a liberty-file stand-in).

``describe_library()`` renders every cell's electrical summary — pin
capacitance, delay parameters, area and the leakage table — the way a
``.lib`` reader would summarise a real library.  Used by documentation
and by people sanity-checking a new :class:`TechParams` corner.
"""

from __future__ import annotations

from repro.cells.library import CellLibrary, default_library
from repro.netlist.gates import GateType
from repro.utils.tables import format_table

__all__ = ["describe_library", "leakage_summary"]

_REPORT_CELLS: list[tuple[GateType, int]] = [
    (GateType.NOT, 1),
    (GateType.NAND, 2), (GateType.NAND, 3), (GateType.NAND, 4),
    (GateType.NOR, 2), (GateType.NOR, 3), (GateType.NOR, 4),
    (GateType.MUX2, 3),
]


def leakage_summary(library: CellLibrary, gtype: GateType,
                    arity: int) -> tuple[float, float, float]:
    """(min, mean, max) leakage in nA over a cell's input patterns."""
    table = library.leakage_table(gtype, arity)
    values = list(table.values())
    return min(values), sum(values) / len(values), max(values)


def describe_library(library: CellLibrary | None = None) -> str:
    """Multi-line text description of the library's cells."""
    library = library or default_library()
    rows = []
    for gtype, arity in _REPORT_CELLS:
        spec = library.spec(gtype, arity)
        lo, mean, hi = leakage_summary(library, gtype, arity)
        rows.append([
            spec.name,
            f"{spec.pin_cap_ff:.1f}",
            f"{spec.intrinsic_delay_ps:.0f}",
            f"{spec.drive_slope_ps_per_ff:.1f}",
            f"{spec.area_um2:.1f}",
            f"{lo:.0f}/{mean:.0f}/{hi:.0f}",
        ])
    header = (f"Cell library @ VDD={library.vdd:g} V, "
              f"wire {library.wire_cap_per_fanout_ff:g} fF/fanout, "
              f"PO load {library.output_load_ff:g} fF")
    table = format_table(
        ["cell", "pin fF", "t0 ps", "slope ps/fF", "area um2",
         "leak nA min/mean/max"],
        rows)
    return header + "\n" + table
