"""Command-line interface: ``python -m repro`` / ``repro-power``.

Subcommands:

* ``table1``  — regenerate the paper's Table I (E1);
* ``figure2`` — regenerate the paper's Figure 2 (E2);
* ``run``     — run the full flow on one circuit and print its summary;
* ``ablation``— run one of the ablation studies (A1-A4);
* ``campaign``— run a multi-circuit sweep on the campaign layer
  (persistent worker pool + content-addressed result cache);
* ``list``    — list the available benchmark circuits.

``table1`` and ``ablation`` accept ``--jobs N`` / ``--cache-dir DIR``
to run transparently on the campaign layer; results are bit-identical
to the serial path.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.benchgen.loader import (
    available_circuits,
    circuit_provenance,
    load_circuit,
)
from repro.core.config import FlowConfig
from repro.core.flow import ProposedFlow
from repro.experiments.ablations import (
    ablation_ivc_budget,
    ablation_mux_margin,
    ablation_observability,
    ablation_reorder,
    render_rows,
)
from repro.experiments.figure2 import run_figure2
from repro.experiments.table1 import run_table1
from repro.experiments.textio import table1_to_csv, table1_to_markdown

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    from repro.campaign.manifest import SPEC_KINDS
    from repro.simulation.backends import available_backends

    parser = argparse.ArgumentParser(
        prog="repro-power",
        description=("Reproduction of 'Simultaneous Reduction of Dynamic "
                     "and Static Power in Scan Structures' (DATE 2005)"))
    parser.add_argument("--seed", type=int, default=1,
                        help="master seed for all stochastic steps")
    parser.add_argument("--backend", choices=available_backends(),
                        default=None,
                        help=("simulation backend for all packed "
                              "simulations (results are bit-identical; "
                              "default: $REPRO_SIM_BACKEND or bigint)"))
    parser.add_argument("--fault-backend", choices=available_backends(),
                        default=None,
                        help=("backend for fault simulation specifically "
                              "(bit-identical; default: $REPRO_FAULT_BACKEND, "
                              "else --backend)"))
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help=("worker processes for the 'sharded' fault "
                              "backend (implies --fault-backend sharded; "
                              "default: $REPRO_SIM_SHARDS or cpu count)"))
    parser.add_argument("--episode-batch", choices=("on", "off"),
                        default=None,
                        help=("batched whole-test-set episode engine for "
                              "scan-power replays (bit-identical to the "
                              "per-episode path; default: "
                              "$REPRO_EPISODE_BATCH or on)"))
    parser.add_argument("--fault-plan", choices=("on", "off"),
                        default=None,
                        help=("planned fault x pattern replay for fault "
                              "simulations (bit-identical to the "
                              "per-batch loop; default: "
                              "$REPRO_FAULT_PLAN or on)"))
    parser.add_argument("--stream-budget", type=int, default=None,
                        metavar="N",
                        help=("out-of-core streaming budget in uint64 "
                              "elements of one window's state matrix: "
                              "plans that exceed it evaluate in "
                              "bounded-memory windows, bit-identical "
                              "to the resident path (0 = off; "
                              "default: $REPRO_STREAM_BUDGET or off)"))
    sub = parser.add_subparsers(dest="command", required=True)

    def add_campaign_args(p) -> None:
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help=("run independent flows on N pool workers "
                             "(default: serial)"))
        p.add_argument("--cache-dir", metavar="DIR", default=None,
                       help=("content-addressed result cache directory "
                             "(re-runs skip cached flows)"))

    t1 = sub.add_parser("table1", help="regenerate Table I")
    t1.add_argument("circuits", nargs="*",
                    help="circuit names (default: the tractable subset)")
    t1.add_argument("--format", choices=("text", "csv", "markdown"),
                    default="text")
    t1.add_argument("--quiet", action="store_true",
                    help="suppress per-circuit progress output")
    t1.add_argument("--experiments-md", metavar="PATH", default=None,
                    help="also write the EXPERIMENTS.md report to PATH")
    add_campaign_args(t1)

    sub.add_parser("figure2", help="regenerate Figure 2")

    camp = sub.add_parser(
        "campaign",
        help="run a circuits x seeds sweep on the campaign layer")
    camp.add_argument("spec", nargs="?", default=None,
                      help="JSON campaign spec file (see README "
                           "'Campaigns'); omit to use --circuits; the "
                           "literal word 'gc' instead runs cache "
                           "eviction (with --max-mb)")
    camp.add_argument("--circuits", nargs="+", default=None,
                      metavar="NAME",
                      help="inline spec: circuits to sweep")
    camp.add_argument("--kind", choices=SPEC_KINDS, default=None,
                      help=("job kind: 'flow' (Table-I flow artefacts, "
                            "default) or 'figure2' (leakage-table "
                            "artefacts; --circuits optional)"))
    camp.add_argument("--max-mb", type=float, default=None, metavar="N",
                      help=("with 'gc': evict least-recently-modified "
                            "cache entries until the cache fits N MB"))
    camp.add_argument("--seeds", nargs="+", type=int, default=None,
                      metavar="SEED",
                      help="inline spec: seeds to sweep (default: --seed)")
    camp.add_argument("--name", default=None,
                      help=("campaign name (manifest file stem; "
                            "default: the spec's name or 'campaign'; "
                            "overrides a spec file's name)"))
    camp.add_argument("--manifest", metavar="PATH", default=None,
                      help=("manifest path (default: "
                            "<cache-dir>/<name>.manifest.json)"))
    camp.add_argument("--no-cache", action="store_true",
                      help="disable the result cache for this run")
    camp.add_argument("--expect-all-cached", action="store_true",
                      help=("exit non-zero if any job had to execute "
                            "(CI guard for warm re-runs)"))
    camp.add_argument("--quiet", action="store_true",
                      help="suppress per-job progress output")
    add_campaign_args(camp)

    run_p = sub.add_parser("run", help="run the flow on one circuit")
    run_p.add_argument("circuit")
    run_p.add_argument("--no-reorder", action="store_true",
                       help="skip the input-reordering step")
    run_p.add_argument("--no-directive", action="store_true",
                       help="disable the leakage-observability directive")

    ab = sub.add_parser("ablation", help="run an ablation study")
    ab.add_argument("which",
                    choices=("observability", "mux", "reorder", "ivc"))
    ab.add_argument("circuits", nargs="*", default=None)
    add_campaign_args(ab)

    sub.add_parser("list", help="list available circuits")
    sub.add_parser("library", help="describe the cell library")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    from repro.errors import SimulationError
    from repro.simulation.backends import (
        resolve_backend,
        resolve_fault_backend,
        set_default_backend,
    )
    from repro.simulation.episode import (
        episode_batching_enabled,
        set_default_episode_batching,
    )
    from repro.simulation.fault_episode import (
        fault_planning_enabled,
        set_default_fault_planning,
    )
    from repro.simulation.streaming import (
        resolve_stream_budget,
        set_default_stream_budget,
    )
    episode_batch = {"on": True, "off": False, None: None}[
        args.episode_batch]
    fault_plan = {"on": True, "off": False, None: None}[args.fault_plan]
    if args.stream_budget is not None and args.stream_budget < 0:
        print("repro-power: error: --stream-budget must be >= 0",
              file=sys.stderr)
        return 2
    # Session defaults, like --backend: reach consumers that don't
    # thread the knobs through their own config (e.g. the ablations).
    set_default_episode_batching(episode_batch)
    set_default_fault_planning(fault_plan)
    set_default_stream_budget(args.stream_budget)
    try:
        if args.backend is not None:
            set_default_backend(args.backend)
        else:
            resolve_backend(None)  # fail fast on a bad $REPRO_SIM_BACKEND
        # ... and on a bad $REPRO_FAULT_BACKEND (flag values are already
        # argparse-validated).
        engine = resolve_fault_backend(args.fault_backend)
        from repro.simulation.backends import ShardedBackend
        if isinstance(engine, ShardedBackend) and args.shards is None:
            engine.effective_shards(0)  # and on a bad $REPRO_SIM_SHARDS
        if episode_batch is None:
            episode_batching_enabled(None)  # bad $REPRO_EPISODE_BATCH
        if fault_plan is None:
            fault_planning_enabled(None)  # bad $REPRO_FAULT_PLAN
        resolve_stream_budget(None)  # bad $REPRO_STREAM_BUDGET
    except SimulationError as exc:
        print(f"repro-power: error: {exc}", file=sys.stderr)
        return 2
    if args.shards is not None and args.shards < 1:
        print("repro-power: error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.shards is not None and args.fault_backend not in (None, "sharded"):
        print("repro-power: error: --shards only applies to the 'sharded' "
              "fault backend", file=sys.stderr)
        return 2
    if getattr(args, "jobs", None) is not None and args.jobs < 1:
        print("repro-power: error: --jobs must be >= 1", file=sys.stderr)
        return 2

    if args.command == "list":
        for name in available_circuits():
            print(f"{name:10s} {circuit_provenance(name)}")
        return 0

    if args.command == "figure2":
        print(run_figure2().render())
        return 0

    if args.command == "library":
        from repro.cells.report import describe_library
        print(describe_library())
        return 0

    if args.command == "campaign":
        return _run_campaign_command(args, episode_batch, fault_plan)

    if args.command == "table1":
        config = FlowConfig(seed=args.seed, backend=args.backend,
                            fault_backend=args.fault_backend,
                            shards=args.shards,
                            episode_batch=episode_batch,
                            fault_plan=fault_plan,
                            stream_budget=args.stream_budget)
        circuits = args.circuits or None
        run = run_table1(circuits, config, verbose=not args.quiet,
                         jobs=args.jobs, cache_dir=args.cache_dir)
        if args.experiments_md:
            from repro.experiments.figure2 import run_figure2 as _fig2
            from repro.experiments.report_writer import \
                write_experiments_md
            write_experiments_md(run, _fig2(), args.experiments_md)
        if args.format == "csv":
            print(table1_to_csv(run.rows))
        elif args.format == "markdown":
            print(table1_to_markdown(run.rows))
        else:
            print(run.render())
        return 0

    if args.command == "run":
        config = FlowConfig(
            seed=args.seed,
            backend=args.backend,
            fault_backend=args.fault_backend,
            shards=args.shards,
            episode_batch=episode_batch,
            fault_plan=fault_plan,
            stream_budget=args.stream_budget,
            reorder_inputs=not args.no_reorder,
            use_observability_directive=not args.no_directive)
        result = ProposedFlow(config).run(load_circuit(args.circuit,
                                                       seed=args.seed))
        print(result.summary())
        return 0

    if args.command == "ablation":
        circuits = args.circuits or ["s344", "s382"]
        grid_kwargs = {"seed": args.seed, "jobs": args.jobs or 1,
                       "cache_dir": args.cache_dir}
        if args.which == "observability":
            rows = ablation_observability(circuits, **grid_kwargs)
            print(render_rows(rows, "A1: observability directive"))
        elif args.which == "mux":
            rows = ablation_mux_margin(circuits, **grid_kwargs)
            print(render_rows(rows, "A2: MUX margin sweep"))
        elif args.which == "reorder":
            rows = ablation_reorder(circuits, **grid_kwargs)
            print(render_rows(rows, "A3: input reordering"))
        else:
            # A4 replays IVC fills against one in-process base flow;
            # it has no campaign path (see repro.experiments.ablations).
            rows = ablation_ivc_budget(circuits[0], seed=args.seed)
            print(render_rows(rows, "A4: IVC budget sweep"))
        return 0

    return 2  # pragma: no cover - argparse enforces the choices


def _run_campaign_gc(args) -> int:
    """``repro campaign gc --max-mb N``: LRU-by-mtime cache eviction."""
    from repro.campaign.cache import ResultCache

    conflicting = [flag for flag, value in (
        ("--circuits", args.circuits), ("--seeds", args.seeds),
        ("--kind", args.kind), ("--name", args.name),
        ("--jobs", args.jobs), ("--manifest", args.manifest),
        ("--no-cache", args.no_cache or None),
        ("--expect-all-cached", args.expect_all_cached or None),
    ) if value is not None]
    if conflicting:
        print(f"repro-power: error: campaign gc does not accept "
              f"{', '.join(conflicting)}", file=sys.stderr)
        return 2
    if args.max_mb is None:
        print("repro-power: error: campaign gc needs --max-mb N",
              file=sys.stderr)
        return 2
    if args.max_mb < 0:
        print("repro-power: error: --max-mb must be >= 0",
              file=sys.stderr)
        return 2
    cache_dir = args.cache_dir or ".repro-cache"
    cache = ResultCache(cache_dir)
    evicted, freed = cache.gc(int(args.max_mb * 1024 * 1024))
    print(f"campaign gc: evicted {evicted} entry(ies), freed "
          f"{freed / (1024 * 1024):.2f} MB "
          f"(cache {cache_dir}, budget {args.max_mb:g} MB)")
    return 0


def _run_campaign_command(args, episode_batch: bool | None,
                          fault_plan: bool | None) -> int:
    """The ``campaign`` subcommand (spec -> runner -> status report)."""
    from pathlib import Path

    from repro.campaign.manifest import CampaignSpec, load_spec
    from repro.campaign.runner import run_campaign
    from repro.errors import ConfigError

    if args.spec == "gc":
        return _run_campaign_gc(args)
    if args.max_mb is not None:
        print("repro-power: error: --max-mb only applies to "
              "'campaign gc'", file=sys.stderr)
        return 2

    runtime_base = {}
    if args.backend is not None:
        runtime_base["backend"] = args.backend
    if args.fault_backend is not None:
        runtime_base["fault_backend"] = args.fault_backend
    if args.shards is not None:
        runtime_base["shards"] = args.shards
    if episode_batch is not None:
        runtime_base["episode_batch"] = episode_batch
    if fault_plan is not None:
        runtime_base["fault_plan"] = fault_plan
    if args.stream_budget is not None:
        runtime_base["stream_budget"] = args.stream_budget

    try:
        if args.spec is not None:
            if args.circuits or args.seeds:
                print("repro-power: error: pass either a spec file or "
                      "--circuits/--seeds, not both", file=sys.stderr)
                return 2
            spec = load_spec(args.spec)
            if runtime_base or args.name is not None \
                    or args.kind is not None:
                spec = CampaignSpec(
                    circuits=spec.circuits, seeds=spec.seeds,
                    overrides=spec.overrides,
                    base={**spec.base, **runtime_base},
                    name=args.name if args.name is not None
                    else spec.name,
                    kind=args.kind if args.kind is not None
                    else spec.kind)
        elif args.circuits or args.kind == "figure2":
            spec = CampaignSpec(
                circuits=tuple(args.circuits) if args.circuits
                else ("figure2",),
                seeds=tuple(args.seeds) if args.seeds else (args.seed,),
                base=runtime_base,
                name=args.name or "campaign",
                kind=args.kind or "flow")
        else:
            print("repro-power: error: campaign needs a spec file, "
                  "--circuits, or --kind figure2", file=sys.stderr)
            return 2
    except ConfigError as exc:
        print(f"repro-power: error: {exc}", file=sys.stderr)
        return 2

    cache_dir = None if args.no_cache else \
        (args.cache_dir or ".repro-cache")
    manifest = args.manifest
    if manifest is None and cache_dir is not None:
        manifest = str(Path(cache_dir) / f"{spec.name}.manifest.json")

    try:
        result = run_campaign(spec, jobs=args.jobs or 1,
                              cache_dir=cache_dir,
                              manifest_path=manifest,
                              verbose=not args.quiet)
    except ConfigError as exc:
        print(f"repro-power: error: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    if manifest is not None:
        print(f"Manifest: {manifest}")
    if args.expect_all_cached and result.n_executed:
        print(f"repro-power: error: expected a fully cached campaign "
              f"but {result.n_executed} job(s) executed",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
