"""Command-line interface: ``python -m repro`` / ``repro-power``.

Subcommands:

* ``table1``  — regenerate the paper's Table I (E1);
* ``figure2`` — regenerate the paper's Figure 2 (E2);
* ``run``     — run the full flow on one circuit and print its summary;
* ``ablation``— run one of the ablation studies (A1-A4);
* ``campaign``— run a multi-circuit sweep on the campaign layer
  (persistent worker pool + content-addressed result cache), or
  enqueue it onto a shared work queue (``--enqueue DIR``);
* ``worker``  — drain a shared work queue directory (any number of
  worker processes, on one or many hosts, share one queue);
* ``serve``   — HTTP artifact API over the result cache (Table-I
  rows, flow artefacts, Figure 2; ETag caching, enqueue-on-miss);
* ``list``    — list the available benchmark circuits.

``table1`` and ``ablation`` accept ``--jobs N`` / ``--cache-dir DIR``
to run transparently on the campaign layer; results are bit-identical
to the serial path.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.benchgen.loader import (
    available_circuits,
    circuit_provenance,
    load_circuit,
)
from repro.core.config import FlowConfig
from repro.core.flow import ProposedFlow
from repro.experiments.ablations import (
    ablation_ivc_budget,
    ablation_mux_margin,
    ablation_observability,
    ablation_reorder,
    render_rows,
)
from repro.experiments.figure2 import run_figure2
from repro.experiments.table1 import run_table1
from repro.experiments.textio import table1_to_csv, table1_to_markdown

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    from repro.campaign.manifest import SPEC_KINDS
    from repro.simulation.backends import available_backends

    parser = argparse.ArgumentParser(
        prog="repro-power",
        description=("Reproduction of 'Simultaneous Reduction of Dynamic "
                     "and Static Power in Scan Structures' (DATE 2005)"))
    parser.add_argument("--seed", type=int, default=1,
                        help="master seed for all stochastic steps")
    parser.add_argument("--backend", choices=available_backends(),
                        default=None,
                        help=("simulation backend for all packed "
                              "simulations (results are bit-identical; "
                              "default: $REPRO_SIM_BACKEND or bigint)"))
    parser.add_argument("--fault-backend", choices=available_backends(),
                        default=None,
                        help=("backend for fault simulation specifically "
                              "(bit-identical; default: $REPRO_FAULT_BACKEND, "
                              "else --backend)"))
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help=("worker processes for the 'sharded' fault "
                              "backend (implies --fault-backend sharded; "
                              "default: $REPRO_SIM_SHARDS or cpu count)"))
    parser.add_argument("--episode-batch", choices=("on", "off"),
                        default=None,
                        help=("batched whole-test-set episode engine for "
                              "scan-power replays (bit-identical to the "
                              "per-episode path; default: "
                              "$REPRO_EPISODE_BATCH or on)"))
    parser.add_argument("--fault-plan", choices=("on", "off"),
                        default=None,
                        help=("planned fault x pattern replay for fault "
                              "simulations (bit-identical to the "
                              "per-batch loop; default: "
                              "$REPRO_FAULT_PLAN or on)"))
    parser.add_argument("--stream-budget", type=int, default=None,
                        metavar="N",
                        help=("out-of-core streaming budget in uint64 "
                              "elements of one window's state matrix: "
                              "plans that exceed it evaluate in "
                              "bounded-memory windows, bit-identical "
                              "to the resident path (0 = off; "
                              "default: $REPRO_STREAM_BUDGET or off)"))
    parser.add_argument("--trace", metavar="DIR", default=None,
                        help=("record span traces of this invocation "
                              "as JSONL files under DIR; worker "
                              "processes join the same trace "
                              "(default: $REPRO_TRACE or off; "
                              "'' pins off)"))
    parser.add_argument("--array-namespace", metavar="MODULE",
                        default=None,
                        help=("array namespace for the array_api "
                              "backend's shared kernels, e.g. cupy "
                              "(bit-identical; default: "
                              "$REPRO_ARRAY_NAMESPACE or numpy)"))
    parser.add_argument("--chaos", metavar="SPEC", default=None,
                        help=("seeded fault injection, e.g. "
                              "'seed=7,queue.*=0.2,cache.write=0.5' "
                              "(site patterns -> firing rates; see "
                              "README 'Failure semantics'; injected "
                              "faults are survived — results stay "
                              "bit-identical; default: $REPRO_CHAOS "
                              "or off; '' pins off)"))
    sub = parser.add_subparsers(dest="command", required=True)

    def add_campaign_args(p) -> None:
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help=("run independent flows on N pool workers "
                             "(default: serial)"))
        p.add_argument("--cache-dir", metavar="DIR", default=None,
                       help=("content-addressed result cache directory "
                             "(re-runs skip cached flows)"))

    t1 = sub.add_parser("table1", help="regenerate Table I")
    t1.add_argument("circuits", nargs="*",
                    help="circuit names (default: the tractable subset)")
    t1.add_argument("--format", choices=("text", "csv", "markdown"),
                    default="text")
    t1.add_argument("--quiet", action="store_true",
                    help="suppress per-circuit progress output")
    t1.add_argument("--experiments-md", metavar="PATH", default=None,
                    help="also write the EXPERIMENTS.md report to PATH")
    add_campaign_args(t1)

    sub.add_parser("figure2", help="regenerate Figure 2")

    camp = sub.add_parser(
        "campaign",
        help="run a circuits x seeds sweep on the campaign layer")
    camp.add_argument("spec", nargs="?", default=None,
                      help="JSON campaign spec file (see README "
                           "'Campaigns'); omit to use --circuits; the "
                           "literal word 'gc' instead runs cache "
                           "eviction (with --max-mb); the literal "
                           "word 'retry-failed' re-queues a work "
                           "queue's quarantined jobs (pass the queue "
                           "directory after it)")
    camp.add_argument("queue_dir", nargs="?", default=None,
                      metavar="QUEUE_DIR",
                      help=("with 'retry-failed': the work queue "
                            "directory whose failed/ jobs to re-queue"))
    camp.add_argument("--circuits", nargs="+", default=None,
                      metavar="NAME",
                      help="inline spec: circuits to sweep")
    camp.add_argument("--kind", choices=SPEC_KINDS, default=None,
                      help=("job kind: 'flow' (Table-I flow artefacts, "
                            "default) or 'figure2' (leakage-table "
                            "artefacts; --circuits optional)"))
    camp.add_argument("--max-mb", type=float, default=None, metavar="N",
                      help=("with 'gc': evict least-recently-modified "
                            "cache entries until the cache fits N MB"))
    camp.add_argument("--max-age-days", type=float, default=None,
                      metavar="N",
                      help=("with 'gc': evict cache entries not "
                            "written for N days (combinable with "
                            "--max-mb; age runs first)"))
    camp.add_argument("--enqueue", metavar="DIR", default=None,
                      help=("enqueue the expanded spec onto the work "
                            "queue at DIR instead of running it; "
                            "drain with 'repro-power worker DIR'"))
    camp.add_argument("--lease-ttl", type=float, default=None,
                      metavar="S",
                      help=("with --enqueue: lease time-to-live in "
                            "seconds; a claimed job whose worker "
                            "stops heartbeating for S seconds is "
                            "re-queued (default: 60)"))
    camp.add_argument("--seeds", nargs="+", type=int, default=None,
                      metavar="SEED",
                      help="inline spec: seeds to sweep (default: --seed)")
    camp.add_argument("--name", default=None,
                      help=("campaign name (manifest file stem; "
                            "default: the spec's name or 'campaign'; "
                            "overrides a spec file's name)"))
    camp.add_argument("--manifest", metavar="PATH", default=None,
                      help=("manifest path (default: "
                            "<cache-dir>/<name>.manifest.json)"))
    camp.add_argument("--no-cache", action="store_true",
                      help="disable the result cache for this run")
    camp.add_argument("--expect-all-cached", action="store_true",
                      help=("exit non-zero if any job had to execute "
                            "(CI guard for warm re-runs)"))
    camp.add_argument("--quiet", action="store_true",
                      help="suppress per-job progress output")
    add_campaign_args(camp)

    worker = sub.add_parser(
        "worker",
        help="drain a campaign work queue (multi-host capable)")
    worker.add_argument("queue_dir", metavar="QUEUE_DIR",
                        help=("work queue directory (created by "
                              "'campaign --enqueue' or 'serve "
                              "--queue-dir'); share it between hosts "
                              "to distribute the drain"))
    worker.add_argument("--cache-dir", metavar="DIR", default=None,
                        help=("result cache directory (default: "
                              ".repro-cache); share it with the other "
                              "workers and the service"))
    worker.add_argument("--worker-id", default=None, metavar="ID",
                        help="worker name recorded in leases/manifest "
                             "(default: <hostname>-<pid>)")
    worker.add_argument("--wait", action="store_true",
                        help=("keep polling for new jobs after the "
                              "queue drains (long-lived worker behind "
                              "'serve'; default: exit when empty)"))
    worker.add_argument("--poll-s", type=float, default=0.5,
                        metavar="S",
                        help="idle poll interval in seconds")
    worker.add_argument("--max-jobs", type=int, default=None,
                        metavar="N",
                        help="process at most N jobs, then exit")
    worker.add_argument("--lease-ttl", type=float, default=None,
                        metavar="S",
                        help=("override the queue's lease TTL for "
                              "this worker's scavenging"))
    worker.add_argument("--max-attempts", type=int, default=None,
                        metavar="N",
                        help=("re-queue a job whose execution raised "
                              "up to N attempts before quarantining "
                              "it in failed/ (default: the queue's "
                              "max_attempts, normally 3)"))
    worker.add_argument("--manifest", metavar="PATH", default=None,
                        help=("after draining, assemble the campaign "
                              "manifest from the queue's records into "
                              "PATH"))
    worker.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress output")

    serve = sub.add_parser(
        "serve",
        help="HTTP artifact API over the campaign result cache")
    serve.add_argument("--cache-dir", metavar="DIR", default=None,
                       help=("result cache directory to serve from "
                             "(default: .repro-cache)"))
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8350,
                       help="TCP port (default: 8350)")
    serve.add_argument("--queue-dir", metavar="DIR", default=None,
                       help=("enqueue cache misses onto the work "
                             "queue at DIR (202 + poll URL; created "
                             "if missing) instead of answering 404"))
    serve.add_argument("--compute-on-miss", action="store_true",
                       help=("compute missing artefacts inline on a "
                             "worker thread (wins over --queue-dir)"))
    serve.add_argument("--base", metavar="JSON", default=None,
                       help=("base FlowConfig kwargs (JSON object) "
                             "applied under every request's "
                             "overrides"))
    serve.add_argument("--max-connections", type=int, default=None,
                       metavar="N",
                       help=("shed connections beyond N concurrent "
                             "with 503 + Retry-After (default: "
                             "uncapped)"))
    serve.add_argument("--request-timeout", type=float, default=None,
                       metavar="S",
                       help=("answer 504 to requests not handled "
                             "within S seconds (default: unbounded)"))

    run_p = sub.add_parser("run", help="run the flow on one circuit")
    run_p.add_argument("circuit")
    run_p.add_argument("--no-reorder", action="store_true",
                       help="skip the input-reordering step")
    run_p.add_argument("--no-directive", action="store_true",
                       help="disable the leakage-observability directive")

    ab = sub.add_parser("ablation", help="run an ablation study")
    ab.add_argument("which",
                    choices=("observability", "mux", "reorder", "ivc"))
    ab.add_argument("circuits", nargs="*", default=None)
    add_campaign_args(ab)

    trace_p = sub.add_parser(
        "trace", help="inspect recorded span traces")
    trace_sub = trace_p.add_subparsers(dest="trace_command",
                                       required=True)
    tsum = trace_sub.add_parser(
        "summarize",
        help=("aggregate a --trace directory: per-phase totals, "
              "processes, critical path"))
    tsum.add_argument("trace_dir", metavar="DIR",
                      help="directory previously passed to --trace")

    sub.add_parser("list", help="list available circuits")
    sub.add_parser("library", help="describe the cell library")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    from repro.errors import ConfigError, SimulationError
    from repro.runtime import RuntimeOptions, set_session_defaults
    from repro.simulation.backends import (
        resolve_backend,
        resolve_fault_backend,
    )
    from repro.simulation.episode import episode_batching_enabled
    from repro.simulation.fault_episode import fault_planning_enabled
    from repro.simulation.streaming import resolve_stream_budget
    episode_batch = {"on": True, "off": False, None: None}[
        args.episode_batch]
    fault_plan = {"on": True, "off": False, None: None}[args.fault_plan]
    if args.stream_budget is not None and args.stream_budget < 0:
        print("repro-power: error: --stream-budget must be >= 0",
              file=sys.stderr)
        return 2
    if args.shards is not None and args.shards < 1:
        print("repro-power: error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.shards is not None and args.fault_backend not in (None, "sharded"):
        print("repro-power: error: --shards only applies to the 'sharded' "
              "fault backend", file=sys.stderr)
        return 2
    try:
        # One unified session install for every runtime knob — all
        # ``None`` fields defer to the environment/built-in defaults
        # (and a flagless invocation resets a leaked session).
        set_session_defaults(RuntimeOptions(
            backend=args.backend,
            fault_backend=args.fault_backend,
            shards=args.shards,
            episode_batch=episode_batch,
            fault_plan=fault_plan,
            stream_budget=args.stream_budget,
            trace=args.trace,
            array_namespace=args.array_namespace,
            chaos=args.chaos))
        # Fail fast on malformed environment defaults behind any knob
        # the flags left unset (flag values are argparse-validated).
        resolve_backend(None)  # bad $REPRO_SIM_BACKEND
        engine = resolve_fault_backend(None)  # bad $REPRO_FAULT_BACKEND
        from repro.simulation.backends import ShardedBackend
        if isinstance(engine, ShardedBackend) and args.shards is None:
            engine.effective_shards(0)  # and on a bad $REPRO_SIM_SHARDS
        if episode_batch is None:
            episode_batching_enabled(None)  # bad $REPRO_EPISODE_BATCH
        if fault_plan is None:
            fault_planning_enabled(None)  # bad $REPRO_FAULT_PLAN
        resolve_stream_budget(None)  # bad $REPRO_STREAM_BUDGET
        if args.array_namespace is None:
            from repro.simulation.backends.array_api import (
                resolve_array_namespace,
            )
            resolve_array_namespace(None)  # bad $REPRO_ARRAY_NAMESPACE
    except (ConfigError, SimulationError, OSError) as exc:
        # OSError: an unwritable/invalid --trace directory.
        print(f"repro-power: error: {exc}", file=sys.stderr)
        return 2
    if getattr(args, "jobs", None) is not None and args.jobs < 1:
        print("repro-power: error: --jobs must be >= 1", file=sys.stderr)
        return 2

    if args.command == "trace":
        from repro.obs.trace import summarize_trace
        summary = summarize_trace(args.trace_dir)
        if not summary.spans:
            print(f"repro-power: no spans found under "
                  f"{args.trace_dir}", file=sys.stderr)
            return 1
        print(summary.render())
        return 0

    if args.command == "list":
        for name in available_circuits():
            print(f"{name:10s} {circuit_provenance(name)}")
        return 0

    if args.command == "figure2":
        print(run_figure2().render())
        return 0

    if args.command == "library":
        from repro.cells.report import describe_library
        print(describe_library())
        return 0

    if args.command == "campaign":
        return _run_campaign_command(args, episode_batch, fault_plan)

    if args.command == "worker":
        return _run_worker_command(args)

    if args.command == "serve":
        return _run_serve_command(args)

    if args.command == "table1":
        config = FlowConfig(seed=args.seed, backend=args.backend,
                            fault_backend=args.fault_backend,
                            shards=args.shards,
                            episode_batch=episode_batch,
                            fault_plan=fault_plan,
                            stream_budget=args.stream_budget,
                            array_namespace=args.array_namespace)
        circuits = args.circuits or None
        run = run_table1(circuits, config, verbose=not args.quiet,
                         jobs=args.jobs, cache_dir=args.cache_dir)
        if args.experiments_md:
            from repro.experiments.figure2 import run_figure2 as _fig2
            from repro.experiments.report_writer import \
                write_experiments_md
            write_experiments_md(run, _fig2(), args.experiments_md)
        if args.format == "csv":
            print(table1_to_csv(run.rows))
        elif args.format == "markdown":
            print(table1_to_markdown(run.rows))
        else:
            print(run.render())
        return 0

    if args.command == "run":
        config = FlowConfig(
            seed=args.seed,
            backend=args.backend,
            fault_backend=args.fault_backend,
            shards=args.shards,
            episode_batch=episode_batch,
            fault_plan=fault_plan,
            stream_budget=args.stream_budget,
            array_namespace=args.array_namespace,
            reorder_inputs=not args.no_reorder,
            use_observability_directive=not args.no_directive)
        result = ProposedFlow(config).run(load_circuit(args.circuit,
                                                       seed=args.seed))
        print(result.summary())
        return 0

    if args.command == "ablation":
        circuits = args.circuits or ["s344", "s382"]
        grid_kwargs = {"seed": args.seed, "jobs": args.jobs or 1,
                       "cache_dir": args.cache_dir}
        if args.which == "observability":
            rows = ablation_observability(circuits, **grid_kwargs)
            print(render_rows(rows, "A1: observability directive"))
        elif args.which == "mux":
            rows = ablation_mux_margin(circuits, **grid_kwargs)
            print(render_rows(rows, "A2: MUX margin sweep"))
        elif args.which == "reorder":
            rows = ablation_reorder(circuits, **grid_kwargs)
            print(render_rows(rows, "A3: input reordering"))
        else:
            # A4 replays IVC fills against one in-process base flow;
            # it has no campaign path (see repro.experiments.ablations).
            rows = ablation_ivc_budget(circuits[0], seed=args.seed)
            print(render_rows(rows, "A4: IVC budget sweep"))
        return 0

    return 2  # pragma: no cover - argparse enforces the choices


def _run_campaign_retry_failed(args) -> int:
    """``repro campaign retry-failed DIR``: re-queue quarantined jobs.

    Every job parked in ``failed/`` (attempt budget exhausted) is
    moved back to ``pending/`` with its attempt count and failure
    record cleared, so the next worker drain retries it from scratch
    — the operator's lever after fixing whatever poisoned the jobs.
    """
    from repro.campaign.queue import WorkQueue
    from repro.errors import QueueError

    if args.queue_dir is None:
        print("repro-power: error: campaign retry-failed needs the "
              "work queue directory", file=sys.stderr)
        return 2
    try:
        queue = WorkQueue(args.queue_dir)
        queue._metadata()  # fail fast on a missing/corrupt queue
        requeued = queue.retry_failed()
    except QueueError as exc:
        print(f"repro-power: error: {exc}", file=sys.stderr)
        return 2
    depth = queue.depth()
    print(f"campaign retry-failed: re-queued {requeued} job(s); "
          f"queue now {depth.pending} pending / {depth.claimed} "
          f"claimed / {depth.done} done / {depth.failed} failed")
    return 0


def _run_campaign_gc(args) -> int:
    """``repro campaign gc``: cache eviction by size and/or age."""
    from repro.campaign.cache import ResultCache

    conflicting = [flag for flag, value in (
        ("--circuits", args.circuits), ("--seeds", args.seeds),
        ("--kind", args.kind), ("--name", args.name),
        ("--jobs", args.jobs), ("--manifest", args.manifest),
        ("--enqueue", args.enqueue), ("--lease-ttl", args.lease_ttl),
        ("--no-cache", args.no_cache or None),
        ("--expect-all-cached", args.expect_all_cached or None),
    ) if value is not None]
    if conflicting:
        print(f"repro-power: error: campaign gc does not accept "
              f"{', '.join(conflicting)}", file=sys.stderr)
        return 2
    if args.max_mb is None and args.max_age_days is None:
        print("repro-power: error: campaign gc needs --max-mb N "
              "and/or --max-age-days N", file=sys.stderr)
        return 2
    if args.max_mb is not None and args.max_mb < 0:
        print("repro-power: error: --max-mb must be >= 0",
              file=sys.stderr)
        return 2
    if args.max_age_days is not None and args.max_age_days < 0:
        print("repro-power: error: --max-age-days must be >= 0",
              file=sys.stderr)
        return 2
    cache_dir = args.cache_dir or ".repro-cache"
    cache = ResultCache(cache_dir)
    evicted = 0
    freed = 0
    budget = []
    if args.max_age_days is not None:
        # Age first: size-based LRU then works on what's left.
        n, b = cache.gc_older_than(args.max_age_days * 86400.0)
        evicted += n
        freed += b
        budget.append(f"age {args.max_age_days:g} day(s)")
    if args.max_mb is not None:
        n, b = cache.gc(int(args.max_mb * 1024 * 1024))
        evicted += n
        freed += b
        budget.append(f"budget {args.max_mb:g} MB")
    print(f"campaign gc: evicted {evicted} entry(ies), freed "
          f"{freed / (1024 * 1024):.2f} MB "
          f"(cache {cache_dir}, {', '.join(budget)})")
    return 0


def _run_worker_command(args) -> int:
    """The ``worker`` subcommand: drain one shared work queue.

    SIGTERM is graceful: the worker finishes (or re-queues) the job it
    holds, then exits 0 — an orchestrator scaling workers down never
    loses work (SIGKILL is also safe, via lease expiry, just slower).
    """
    import signal
    import threading

    from repro.campaign.queue import WorkQueue, run_worker
    from repro.errors import QueueError

    if args.poll_s <= 0:
        print("repro-power: error: --poll-s must be > 0",
              file=sys.stderr)
        return 2
    if args.max_jobs is not None and args.max_jobs < 1:
        print("repro-power: error: --max-jobs must be >= 1",
              file=sys.stderr)
        return 2
    if args.max_attempts is not None and args.max_attempts < 1:
        print("repro-power: error: --max-attempts must be >= 1",
              file=sys.stderr)
        return 2
    stop = threading.Event()
    previous = signal.signal(signal.SIGTERM,
                             lambda _signum, _frame: stop.set())
    cache_dir = args.cache_dir or ".repro-cache"
    try:
        stats = run_worker(
            args.queue_dir, cache_dir,
            worker_id=args.worker_id,
            poll_s=args.poll_s,
            wait=args.wait,
            max_jobs=args.max_jobs,
            lease_ttl_s=args.lease_ttl,
            max_attempts=args.max_attempts,
            verbose=not args.quiet,
            should_stop=stop.is_set)
    except QueueError as exc:
        print(f"repro-power: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("repro-power: worker interrupted (claim returned to "
              "the queue)", file=sys.stderr)
        return 130
    finally:
        signal.signal(signal.SIGTERM, previous)
    if stop.is_set() and not args.quiet:
        print("repro-power: worker stopping on SIGTERM (current job "
              "settled)", file=sys.stderr)
    queue = WorkQueue(args.queue_dir)
    depth = queue.depth()
    print(f"worker {stats.worker_id}: {stats.executed} executed, "
          f"{stats.cached} from cache, {stats.failed} failed, "
          f"{stats.requeued} re-queued, {stats.retried} retried in "
          f"{stats.wall_s:.2f}s; "
          f"queue now {depth.pending} pending / {depth.claimed} "
          f"claimed / {depth.done} done / {depth.failed} failed")
    if args.manifest is not None:
        queue.write_manifest(args.manifest)
        print(f"Manifest: {args.manifest}")
    return 1 if stats.failed else 0


def _run_serve_command(args) -> int:
    """The ``serve`` subcommand: blocking HTTP artifact API."""
    import json as _json

    from repro.campaign.cache import ResultCache
    from repro.campaign.queue import WorkQueue
    from repro.campaign.service import ArtifactService, run_server
    from repro.errors import QueueError, ServiceError

    base = {}
    if args.base is not None:
        try:
            base = _json.loads(args.base)
        except ValueError:
            base = None
        if not isinstance(base, dict):
            print("repro-power: error: --base must be a JSON object",
                  file=sys.stderr)
            return 2
    if not 1 <= args.port <= 65535:
        print("repro-power: error: --port must be in 1..65535",
              file=sys.stderr)
        return 2
    queue = None
    if args.queue_dir is not None:
        try:
            queue = WorkQueue.create(args.queue_dir)
        except QueueError as exc:
            print(f"repro-power: error: {exc}", file=sys.stderr)
            return 2
    try:
        service = ArtifactService(
            ResultCache(args.cache_dir or ".repro-cache"),
            queue=queue,
            compute_on_miss=args.compute_on_miss,
            base=base,
            max_connections=args.max_connections,
            request_timeout_s=args.request_timeout)
    except ServiceError as exc:
        print(f"repro-power: error: {exc}", file=sys.stderr)
        return 2
    try:
        run_server(service, args.host, args.port)
    except (ServiceError, OSError) as exc:
        print(f"repro-power: error: {exc}", file=sys.stderr)
        return 2
    return 0


def _run_campaign_command(args, episode_batch: bool | None,
                          fault_plan: bool | None) -> int:
    """The ``campaign`` subcommand (spec -> runner -> status report)."""
    from pathlib import Path

    from repro.campaign.manifest import CampaignSpec, load_spec
    from repro.campaign.runner import run_campaign
    from repro.errors import ConfigError

    if args.spec == "gc":
        return _run_campaign_gc(args)
    if args.spec == "retry-failed":
        return _run_campaign_retry_failed(args)
    if args.queue_dir is not None:
        print("repro-power: error: a second positional argument only "
              "applies to 'campaign retry-failed QUEUE_DIR'",
              file=sys.stderr)
        return 2
    if args.max_mb is not None or args.max_age_days is not None:
        print("repro-power: error: --max-mb/--max-age-days only "
              "apply to 'campaign gc'", file=sys.stderr)
        return 2
    if args.lease_ttl is not None and args.enqueue is None:
        print("repro-power: error: --lease-ttl only applies with "
              "--enqueue", file=sys.stderr)
        return 2

    runtime_base = {}
    if args.backend is not None:
        runtime_base["backend"] = args.backend
    if args.fault_backend is not None:
        runtime_base["fault_backend"] = args.fault_backend
    if args.shards is not None:
        runtime_base["shards"] = args.shards
    if episode_batch is not None:
        runtime_base["episode_batch"] = episode_batch
    if fault_plan is not None:
        runtime_base["fault_plan"] = fault_plan
    if args.stream_budget is not None:
        runtime_base["stream_budget"] = args.stream_budget
    if args.array_namespace is not None:
        runtime_base["array_namespace"] = args.array_namespace

    try:
        if args.spec is not None:
            if args.circuits or args.seeds:
                print("repro-power: error: pass either a spec file or "
                      "--circuits/--seeds, not both", file=sys.stderr)
                return 2
            spec = load_spec(args.spec)
            if runtime_base or args.name is not None \
                    or args.kind is not None:
                spec = CampaignSpec(
                    circuits=spec.circuits, seeds=spec.seeds,
                    overrides=spec.overrides,
                    base={**spec.base, **runtime_base},
                    name=args.name if args.name is not None
                    else spec.name,
                    kind=args.kind if args.kind is not None
                    else spec.kind)
        elif args.circuits or args.kind == "figure2":
            spec = CampaignSpec(
                circuits=tuple(args.circuits) if args.circuits
                else ("figure2",),
                seeds=tuple(args.seeds) if args.seeds else (args.seed,),
                base=runtime_base,
                name=args.name or "campaign",
                kind=args.kind or "flow")
        else:
            print("repro-power: error: campaign needs a spec file, "
                  "--circuits, or --kind figure2", file=sys.stderr)
            return 2
    except ConfigError as exc:
        print(f"repro-power: error: {exc}", file=sys.stderr)
        return 2

    if args.enqueue is not None:
        from repro.campaign.queue import DEFAULT_LEASE_TTL_S, WorkQueue
        from repro.errors import QueueError
        rejected = [flag for flag, value in (
            ("--jobs", args.jobs), ("--manifest", args.manifest),
            ("--no-cache", args.no_cache or None),
            ("--expect-all-cached", args.expect_all_cached or None),
        ) if value is not None]
        if rejected:
            print(f"repro-power: error: --enqueue does not accept "
                  f"{', '.join(rejected)} (workers own execution; "
                  f"pass --cache-dir/--manifest to 'repro-power "
                  f"worker')", file=sys.stderr)
            return 2
        if args.lease_ttl is not None and args.lease_ttl <= 0:
            print("repro-power: error: --lease-ttl must be > 0",
                  file=sys.stderr)
            return 2
        try:
            queue = WorkQueue(args.enqueue)
            enqueued = queue.enqueue(
                spec,
                lease_ttl_s=args.lease_ttl if args.lease_ttl is not None
                else DEFAULT_LEASE_TTL_S)
        except QueueError as exc:
            print(f"repro-power: error: {exc}", file=sys.stderr)
            return 2
        depth = queue.depth()
        print(f"campaign {spec.name!r}: enqueued {enqueued} job(s) "
              f"onto {args.enqueue} ({depth.pending} pending, "
              f"{depth.done} already done); drain with "
              f"'repro-power worker {args.enqueue}'")
        return 0

    cache_dir = None if args.no_cache else \
        (args.cache_dir or ".repro-cache")
    manifest = args.manifest
    if manifest is None and cache_dir is not None:
        manifest = str(Path(cache_dir) / f"{spec.name}.manifest.json")

    try:
        result = run_campaign(spec, jobs=args.jobs or 1,
                              cache_dir=cache_dir,
                              manifest_path=manifest,
                              verbose=not args.quiet)
    except ConfigError as exc:
        print(f"repro-power: error: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    if manifest is not None:
        print(f"Manifest: {manifest}")
    if args.expect_all_cached and result.n_executed:
        print(f"repro-power: error: expected a fully cached campaign "
              f"but {result.n_executed} job(s) executed",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
