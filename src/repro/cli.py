"""Command-line interface: ``python -m repro`` / ``repro-power``.

Subcommands:

* ``table1``  — regenerate the paper's Table I (E1);
* ``figure2`` — regenerate the paper's Figure 2 (E2);
* ``run``     — run the full flow on one circuit and print its summary;
* ``ablation``— run one of the ablation studies (A1-A4);
* ``list``    — list the available benchmark circuits.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.benchgen.loader import (
    available_circuits,
    circuit_provenance,
    load_circuit,
)
from repro.core.config import FlowConfig
from repro.core.flow import ProposedFlow
from repro.experiments.ablations import (
    ablation_ivc_budget,
    ablation_mux_margin,
    ablation_observability,
    ablation_reorder,
    render_rows,
)
from repro.experiments.figure2 import run_figure2
from repro.experiments.table1 import run_table1
from repro.experiments.textio import table1_to_csv, table1_to_markdown

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    from repro.simulation.backends import available_backends

    parser = argparse.ArgumentParser(
        prog="repro-power",
        description=("Reproduction of 'Simultaneous Reduction of Dynamic "
                     "and Static Power in Scan Structures' (DATE 2005)"))
    parser.add_argument("--seed", type=int, default=1,
                        help="master seed for all stochastic steps")
    parser.add_argument("--backend", choices=available_backends(),
                        default=None,
                        help=("simulation backend for all packed "
                              "simulations (results are bit-identical; "
                              "default: $REPRO_SIM_BACKEND or bigint)"))
    parser.add_argument("--fault-backend", choices=available_backends(),
                        default=None,
                        help=("backend for fault simulation specifically "
                              "(bit-identical; default: $REPRO_FAULT_BACKEND, "
                              "else --backend)"))
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help=("worker processes for the 'sharded' fault "
                              "backend (implies --fault-backend sharded; "
                              "default: $REPRO_SIM_SHARDS or cpu count)"))
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="regenerate Table I")
    t1.add_argument("circuits", nargs="*",
                    help="circuit names (default: the tractable subset)")
    t1.add_argument("--format", choices=("text", "csv", "markdown"),
                    default="text")
    t1.add_argument("--quiet", action="store_true",
                    help="suppress per-circuit progress output")
    t1.add_argument("--experiments-md", metavar="PATH", default=None,
                    help="also write the EXPERIMENTS.md report to PATH")

    sub.add_parser("figure2", help="regenerate Figure 2")

    run_p = sub.add_parser("run", help="run the flow on one circuit")
    run_p.add_argument("circuit")
    run_p.add_argument("--no-reorder", action="store_true",
                       help="skip the input-reordering step")
    run_p.add_argument("--no-directive", action="store_true",
                       help="disable the leakage-observability directive")

    ab = sub.add_parser("ablation", help="run an ablation study")
    ab.add_argument("which",
                    choices=("observability", "mux", "reorder", "ivc"))
    ab.add_argument("circuits", nargs="*", default=None)

    sub.add_parser("list", help="list available circuits")
    sub.add_parser("library", help="describe the cell library")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    from repro.errors import SimulationError
    from repro.simulation.backends import (
        resolve_backend,
        resolve_fault_backend,
        set_default_backend,
    )
    try:
        if args.backend is not None:
            set_default_backend(args.backend)
        else:
            resolve_backend(None)  # fail fast on a bad $REPRO_SIM_BACKEND
        # ... and on a bad $REPRO_FAULT_BACKEND (flag values are already
        # argparse-validated).
        engine = resolve_fault_backend(args.fault_backend)
        from repro.simulation.backends import ShardedBackend
        if isinstance(engine, ShardedBackend) and args.shards is None:
            engine.effective_shards(0)  # and on a bad $REPRO_SIM_SHARDS
    except SimulationError as exc:
        print(f"repro-power: error: {exc}", file=sys.stderr)
        return 2
    if args.shards is not None and args.shards < 1:
        print("repro-power: error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.shards is not None and args.fault_backend not in (None, "sharded"):
        print("repro-power: error: --shards only applies to the 'sharded' "
              "fault backend", file=sys.stderr)
        return 2

    if args.command == "list":
        for name in available_circuits():
            print(f"{name:10s} {circuit_provenance(name)}")
        return 0

    if args.command == "figure2":
        print(run_figure2().render())
        return 0

    if args.command == "library":
        from repro.cells.report import describe_library
        print(describe_library())
        return 0

    if args.command == "table1":
        config = FlowConfig(seed=args.seed, backend=args.backend,
                            fault_backend=args.fault_backend,
                            shards=args.shards)
        circuits = args.circuits or None
        run = run_table1(circuits, config, verbose=not args.quiet)
        if args.experiments_md:
            from repro.experiments.figure2 import run_figure2 as _fig2
            from repro.experiments.report_writer import \
                write_experiments_md
            write_experiments_md(run, _fig2(), args.experiments_md)
        if args.format == "csv":
            print(table1_to_csv(run.rows))
        elif args.format == "markdown":
            print(table1_to_markdown(run.rows))
        else:
            print(run.render())
        return 0

    if args.command == "run":
        config = FlowConfig(
            seed=args.seed,
            backend=args.backend,
            fault_backend=args.fault_backend,
            shards=args.shards,
            reorder_inputs=not args.no_reorder,
            use_observability_directive=not args.no_directive)
        result = ProposedFlow(config).run(load_circuit(args.circuit,
                                                       seed=args.seed))
        print(result.summary())
        return 0

    if args.command == "ablation":
        circuits = args.circuits or ["s344", "s382"]
        if args.which == "observability":
            rows = ablation_observability(circuits, seed=args.seed)
            print(render_rows(rows, "A1: observability directive"))
        elif args.which == "mux":
            rows = ablation_mux_margin(circuits, seed=args.seed)
            print(render_rows(rows, "A2: MUX margin sweep"))
        elif args.which == "reorder":
            rows = ablation_reorder(circuits, seed=args.seed)
            print(render_rows(rows, "A3: input reordering"))
        else:
            rows = ablation_ivc_budget(circuits[0], seed=args.seed)
            print(render_rows(rows, "A4: IVC budget sweep"))
        return 0

    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
