"""Dynamic power model and the scan-shift power evaluator (Table I)."""

from repro.power.dynamic import (
    energy_per_cycle_uw_per_hz,
    switching_energy_fj,
    weighted_switching_activity,
)
from repro.power.peak import PeakPowerReport, analyze_peak_power
from repro.power.scanpower import (
    ScanPowerReport,
    ShiftPolicy,
    episode_waveforms,
    evaluate_scan_power,
    per_cycle_energy_fj,
)

__all__ = [
    "switching_energy_fj",
    "energy_per_cycle_uw_per_hz",
    "weighted_switching_activity",
    "ShiftPolicy",
    "ScanPowerReport",
    "evaluate_scan_power",
    "per_cycle_energy_fj",
    "episode_waveforms",
    "PeakPowerReport",
    "analyze_peak_power",
]
