"""Scan-shift power evaluation — the measurement behind Table I.

Given a full-scan design, a test set and a *shift policy* (how primary
inputs and muxed pseudo-inputs are driven while shifting), this module
replays the entire scan episode cycle by cycle:

* per test vector: ``L`` shift cycles (the response of the previous
  vector shifts out while the new one shifts in), then one capture cycle
  in normal mode (multiplexers transparent, PIs at their test values);
* the settled combinational state of every cycle is simulated in one
  packed pass; transitions are weighted by switched capacitance (dynamic,
  eq. 1) and each cycle's gate input patterns are priced with the leakage
  tables (static, eq. 5).

Reported metrics mirror Table I exactly: dynamic as energy/cycle in uW/Hz
(multiply by the shift frequency for watts), static as the mean leakage
power in uW, both for the **combinational part** of the circuit.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

import numpy as np

from repro.cells.capacitance import switched_caps_ff
from repro.cells.library import CellLibrary, default_library
from repro.errors import ScanError
from repro.leakage.estimator import _word_to_bool_array, leakage_power_uw
from repro.power.dynamic import (
    energy_per_cycle_uw_per_hz,
    switching_energy_fj,
)
from repro.scan.testview import ScanDesign, TestVector
from repro.simulation.backends import Backend, resolve_backend
from repro.simulation.cyclesim import simulate_cycles
from repro.simulation.episode import (
    compile_episode_plan,
    episode_batching_enabled,
)
from repro.simulation.values import pack_bits

__all__ = ["ShiftPolicy", "ScanPowerReport", "evaluate_scan_power",
           "per_cycle_energy_fj", "episode_waveforms"]


@dataclasses.dataclass(frozen=True)
class ShiftPolicy:
    """How controlled inputs are driven during shift mode.

    Attributes
    ----------
    name:
        Label for reports ("traditional", "input_control", "proposed").
    pi_values:
        Constant values applied to primary inputs while shifting; ``None``
        leaves the PIs at each test vector's own values (traditional
        scan).  May cover a subset of PIs (the rest hold test values).
    mux_ties:
        Constant presented by the inserted MUX on each muxed pseudo-input
        during shift (empty when no MUXes exist).
    """

    name: str = "traditional"
    pi_values: Mapping[str, int] | None = None
    mux_ties: Mapping[str, int] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class ScanPowerReport:
    """Power measured over one full scan episode (one Table I row cell)."""

    circuit_name: str
    policy_name: str
    n_vectors: int
    n_cycles: int
    dynamic_uw_per_hz: float
    static_uw: float
    total_transitions: int
    mean_leakage_na: float

    def improvement_vs(self, baseline: "ScanPowerReport"
                       ) -> tuple[float, float]:
        """(dynamic %, static %) improvement relative to ``baseline``."""
        def pct(base: float, ours: float) -> float:
            if base == 0:
                return 0.0
            return (base - ours) / base * 100.0
        return (pct(baseline.dynamic_uw_per_hz, self.dynamic_uw_per_hz),
                pct(baseline.static_uw, self.static_uw))


def _policy_pi_bit(policy: ShiftPolicy, pi: str, vector: TestVector) -> int:
    if policy.pi_values is not None and pi in policy.pi_values:
        return policy.pi_values[pi]
    return vector.pi_values[pi]


def _episode_waveforms(design: ScanDesign, vectors: Sequence[TestVector],
                       policy: ShiftPolicy, include_capture: bool,
                       initial_state: Sequence[int] | None
                       ) -> tuple[dict[str, int], int]:
    """Per-line packed waveforms of the whole scan episode (serial path).

    Shift cycles present the policy's constants (PIs, MUX ties) and the
    live chain state on non-muxed pseudo-inputs; capture cycles present
    the test vector itself (MUXes transparent in normal mode).

    This is the legacy per-vector, per-cycle, per-line loop, kept as
    the reference the batched episode compiler
    (:func:`repro.simulation.episode.compile_episode_plan`) is pinned
    against (same words, bit for bit) and as the fallback when episode
    batching is switched off.
    """
    circuit = design.circuit
    chain = design.chain
    if not vectors:
        raise ScanError("empty test set")
    unknown_mux = set(policy.mux_ties) - set(chain.q_lines)
    if unknown_mux:
        raise ScanError(f"mux ties on unknown cells: {sorted(unknown_mux)}")

    state = tuple(initial_state) if initial_state is not None \
        else (0,) * chain.length
    if len(state) != chain.length:
        raise ScanError("initial state length mismatch")

    pi_bits: dict[str, list[int]] = {pi: [] for pi in circuit.inputs}
    q_bits: dict[str, list[int]] = {q: [] for q in chain.q_lines}
    for vector in vectors:
        if len(vector.scan_state) != chain.length:
            raise ScanError("test vector scan state length mismatch")
        shift_states = chain.load_states(state, vector.scan_state)
        for cycle_state in shift_states:
            for pi in circuit.inputs:
                pi_bits[pi].append(_policy_pi_bit(policy, pi, vector))
            for cell, bit in zip(chain.cells, cycle_state):
                tie = policy.mux_ties.get(cell.q)
                q_bits[cell.q].append(bit if tie is None else tie)
        if shift_states[-1] != vector.scan_state:
            raise ScanError("shift protocol failed to load the vector")
        if include_capture:
            for pi in circuit.inputs:
                pi_bits[pi].append(vector.pi_values[pi])
            for cell, bit in zip(chain.cells, vector.scan_state):
                q_bits[cell.q].append(bit)
        state, _po_values = design.capture(vector)

    all_bits = {**pi_bits, **q_bits}
    n_cycles = len(next(iter(all_bits.values())))
    waveforms = {line: pack_bits(bits) for line, bits in all_bits.items()}
    return waveforms, n_cycles


def episode_waveforms(design: ScanDesign, vectors: Sequence[TestVector],
                      policy: ShiftPolicy | None = None,
                      include_capture: bool = True,
                      initial_state: Sequence[int] | None = None,
                      backend: str | Backend | None = None,
                      episode_batch: bool | None = None
                      ) -> tuple[dict[str, int], int]:
    """Public wrapper over the episode waveform builder.

    Returns ``(per-line packed waveforms, n_cycles)`` for the whole scan
    episode — useful for custom analyses (spectra, peak windows, VCD-ish
    dumps) on top of the same shift semantics the evaluator uses.

    ``backend`` selects the engine for the batched compiler's capture
    pre-pass and is **resolved exactly once per call**: a meta backend
    (e.g. ``sharded``) resolves here to one engine instance whose inner
    delegation applies uniformly, never re-resolved per vector — the
    resolve-once convention every public entry point follows.
    ``episode_batch`` (default: ``$REPRO_EPISODE_BATCH``, on) picks the
    batched compiler or the legacy serial loop; both return the same
    words bit for bit.
    """
    policy = policy or ShiftPolicy()
    if episode_batching_enabled(episode_batch):
        plan = compile_episode_plan(
            design, vectors, pi_values=policy.pi_values,
            mux_ties=policy.mux_ties, include_capture=include_capture,
            initial_state=initial_state, backend=resolve_backend(backend))
        return plan.waveforms, plan.n_cycles
    return _episode_waveforms(design, vectors, policy,
                              include_capture, initial_state)


def evaluate_scan_power(design: ScanDesign,
                        vectors: Sequence[TestVector],
                        policy: ShiftPolicy | None = None,
                        library: CellLibrary | None = None,
                        include_capture: bool = True,
                        initial_state: Sequence[int] | None = None,
                        backend: str | Backend | None = None,
                        episode_batch: bool | None = None,
                        stream_budget: int | None = None
                        ) -> ScanPowerReport:
    """Replay a scan test set and measure combinational power.

    Parameters
    ----------
    design:
        The full-scan circuit plus chain.
    vectors:
        Test set in application order; each supplies PI values and the
        chain load state.
    policy:
        Shift-mode drive policy (default: traditional scan).
    include_capture:
        Include each vector's capture cycle in the episode (the mode
        switch transitions are real and are charged to the method causing
        them).
    initial_state:
        Chain contents before the first shift (default all zeros).
    backend:
        Simulation backend for the episode replay (name, instance or
        ``None`` for the session default); affects speed only.  Meta
        backends (e.g. ``sharded``) delegate their plain packed
        simulation to their inner engine, so any registered name works
        here.  Resolved exactly once per call and reused for the
        capture pre-pass and the batch evaluation.
    episode_batch:
        ``True``/``False`` force the batched episode engine on/off;
        ``None`` defers to ``$REPRO_EPISODE_BATCH`` (default on).  The
        two paths are bit-identical; only speed changes.
    stream_budget:
        Out-of-core streaming budget for the batch evaluation
        (``uint64`` elements of one window's state matrix); ``None``
        defers to the session default / ``$REPRO_STREAM_BUDGET``, ``0``
        forces streaming off.  Bit-identical; only peak memory changes.
    """
    policy = policy or ShiftPolicy()
    library = library or default_library()
    circuit = design.circuit
    engine = resolve_backend(backend)

    if episode_batching_enabled(episode_batch):
        plan = compile_episode_plan(
            design, vectors, pi_values=policy.pi_values,
            mux_ties=policy.mux_ties, include_capture=include_capture,
            initial_state=initial_state, backend=engine)
        batch = engine.simulate_episode_batch(plan, library,
                                              collect_leakage=True,
                                              stream_budget=stream_budget)
        n_cycles = batch.n_cycles
        transitions = batch.transitions
        total_transitions = batch.total_transitions
        mean_leak_na = batch.mean_leakage_na
    else:
        waveforms, n_cycles = _episode_waveforms(
            design, vectors, policy, include_capture, initial_state)
        result = simulate_cycles(circuit, waveforms, n_cycles, library,
                                 collect_leakage=True, backend=engine)
        transitions = result.transitions
        total_transitions = result.total_transitions
        mean_leak_na = result.mean_leakage_na
    energy_fj = switching_energy_fj(circuit, transitions, library)
    return ScanPowerReport(
        circuit_name=circuit.name,
        policy_name=policy.name,
        n_vectors=len(vectors),
        n_cycles=n_cycles,
        dynamic_uw_per_hz=energy_per_cycle_uw_per_hz(energy_fj, n_cycles),
        static_uw=leakage_power_uw(mean_leak_na, library.vdd),
        total_transitions=total_transitions,
        mean_leakage_na=mean_leak_na,
    )


def per_cycle_energy_fj(design: ScanDesign,
                        vectors: Sequence[TestVector],
                        policy: ShiftPolicy | None = None,
                        library: CellLibrary | None = None,
                        include_capture: bool = True,
                        backend: str | Backend | None = None,
                        episode_batch: bool | None = None,
                        stream_budget: int | None = None
                        ) -> np.ndarray:
    """Per-cycle-boundary switching energy profile (peak-power studies).

    Memory/time scale with lines x cycles; intended for the smaller
    circuits (ablation benches use it, Table I does not need it).  The
    backend is resolved once per call; ``episode_batch`` and
    ``stream_budget`` follow :func:`evaluate_scan_power` (the profile
    itself still materializes every line's waveform).
    """
    policy = policy or ShiftPolicy()
    library = library or default_library()
    circuit = design.circuit
    engine = resolve_backend(backend)
    if episode_batching_enabled(episode_batch):
        plan = compile_episode_plan(
            design, vectors, pi_values=policy.pi_values,
            mux_ties=policy.mux_ties, include_capture=include_capture,
            initial_state=None, backend=engine)
        batch = engine.simulate_episode_batch(
            plan, library, collect_leakage=False, keep_waveforms=True,
            stream_budget=stream_budget)
        n_cycles, line_waveforms = batch.n_cycles, batch.waveforms
    else:
        waveforms, n_cycles = _episode_waveforms(
            design, vectors, policy, include_capture, None)
        sim = simulate_cycles(circuit, waveforms, n_cycles, library,
                              collect_leakage=False, keep_waveforms=True,
                              backend=engine)
        line_waveforms = sim.waveforms
    caps = switched_caps_ff(circuit, library)
    profile = np.zeros(max(n_cycles - 1, 0), dtype=np.float64)
    assert line_waveforms is not None
    boundary_mask = (1 << max(n_cycles - 1, 0)) - 1
    for line, word in line_waveforms.items():
        toggles = (word ^ (word >> 1)) & boundary_mask
        if toggles == 0:
            continue
        bits = _word_to_bool_array(toggles, n_cycles - 1)
        profile += bits * library.switching_energy_fj(caps.get(line, 0.0))
    return profile
