"""Peak-power analysis of scan episodes.

The paper's related work (ref [6], Sankaralingam & Touba) targets *peak*
power during scan — droop and di/dt failures care about the worst cycle,
not the average.  This module layers peak statistics over the per-cycle
energy profile so the proposed structure's effect on peaks can be
studied alongside Table I's averages (the blocking MUXes flatten shift
cycles dramatically; capture cycles remain).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.cells.library import CellLibrary, default_library
from repro.power.scanpower import ShiftPolicy, per_cycle_energy_fj
from repro.scan.testview import ScanDesign, TestVector

__all__ = ["PeakPowerReport", "analyze_peak_power"]


@dataclasses.dataclass
class PeakPowerReport:
    """Peak statistics of one scan episode.

    Energies are per cycle boundary (fJ); ``violations`` counts cycles
    above ``budget_fj`` when a budget was given.
    """

    circuit_name: str
    policy_name: str
    n_boundaries: int
    peak_fj: float
    mean_fj: float
    p99_fj: float
    quiet_boundaries: int
    budget_fj: float | None = None
    violations: int = 0

    @property
    def peak_to_mean(self) -> float:
        """Crest factor of the episode (0 when nothing switches)."""
        if self.mean_fj == 0:
            return 0.0
        return self.peak_fj / self.mean_fj

    def describe(self) -> str:
        parts = [
            f"{self.circuit_name}/{self.policy_name}: "
            f"peak {self.peak_fj:.1f} fJ, mean {self.mean_fj:.1f} fJ "
            f"(crest {self.peak_to_mean:.1f}), "
            f"p99 {self.p99_fj:.1f} fJ, "
            f"{self.quiet_boundaries}/{self.n_boundaries} quiet",
        ]
        if self.budget_fj is not None:
            parts.append(
                f"{self.violations} cycles above {self.budget_fj:.1f} fJ")
        return "; ".join(parts)


def analyze_peak_power(design: ScanDesign,
                       vectors: Sequence[TestVector],
                       policy: ShiftPolicy | None = None,
                       library: CellLibrary | None = None,
                       budget_fj: float | None = None,
                       include_capture: bool = True) -> PeakPowerReport:
    """Replay the episode and report peak statistics.

    Costs one waveform-retaining simulation (lines x cycles memory);
    intended for small/medium circuits and ablation studies.
    """
    policy = policy or ShiftPolicy()
    library = library or default_library()
    profile = per_cycle_energy_fj(design, vectors, policy, library,
                                  include_capture)
    if len(profile) == 0:
        return PeakPowerReport(
            circuit_name=design.circuit.name,
            policy_name=policy.name,
            n_boundaries=0, peak_fj=0.0, mean_fj=0.0, p99_fj=0.0,
            quiet_boundaries=0, budget_fj=budget_fj, violations=0)
    violations = int(np.sum(profile > budget_fj)) \
        if budget_fj is not None else 0
    return PeakPowerReport(
        circuit_name=design.circuit.name,
        policy_name=policy.name,
        n_boundaries=len(profile),
        peak_fj=float(profile.max()),
        mean_fj=float(profile.mean()),
        p99_fj=float(np.percentile(profile, 99)),
        quiet_boundaries=int(np.sum(profile == 0.0)),
        budget_fj=budget_fj,
        violations=violations,
    )
