"""Dynamic (switching) power accounting — paper equation (1).

Dynamic energy is ``0.5 * C * VDD^2`` per output transition, with ``C``
the switched capacitance (fanout pins + wire + the cell's internal
capacitance).  Table I reports the frequency-normalised value ("must be
multiplied by the working frequency to give the actual dynamic power"),
i.e. the **average switching energy per clock cycle** expressed in uW/Hz
(numerically: joules).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.cells.capacitance import switched_caps_ff
from repro.cells.library import CellLibrary, default_library
from repro.netlist.circuit import Circuit

__all__ = [
    "switching_energy_fj",
    "energy_per_cycle_uw_per_hz",
    "weighted_switching_activity",
]

#: 1 fJ per cycle expressed in uW/Hz (1e-15 J * 1e6 uW/W).
_FJ_TO_UW_PER_HZ = 1e-9


def switching_energy_fj(circuit: Circuit, transitions: Mapping[str, int],
                        library: CellLibrary | None = None,
                        lines: Iterable[str] | None = None) -> float:
    """Total switching energy (fJ) of the given per-line transition counts.

    ``lines`` restricts accounting (default: every counted line). Only
    capacitance attached to the combinational netlist is considered —
    matching the paper's "power dissipated in the combinational part".
    """
    library = library or default_library()
    caps = switched_caps_ff(circuit, library)
    selected = transitions if lines is None else {
        line: transitions[line] for line in lines if line in transitions}
    energy = 0.0
    for line, count in selected.items():
        if count == 0:
            continue
        energy += count * library.switching_energy_fj(caps.get(line, 0.0))
    return energy


def energy_per_cycle_uw_per_hz(total_energy_fj: float,
                               n_cycles: int) -> float:
    """Convert total energy over an episode into Table I's uW/Hz metric."""
    if n_cycles <= 0:
        return 0.0
    return total_energy_fj / n_cycles * _FJ_TO_UW_PER_HZ


def weighted_switching_activity(circuit: Circuit,
                                transitions: Mapping[str, int],
                                library: CellLibrary | None = None
                                ) -> float:
    """Capacitance-weighted transition count (fF-transitions).

    The classic WSA metric: like :func:`switching_energy_fj` but without
    the ``0.5 * VDD^2`` scale, handy for technology-independent
    comparisons.
    """
    library = library or default_library()
    caps = switched_caps_ff(circuit, library)
    return sum(count * caps.get(line, 0.0)
               for line, count in transitions.items())
