"""Experiment harnesses regenerating the paper's tables and figures."""

from repro.experiments.ablations import (
    AblationRow,
    ablation_ivc_budget,
    ablation_mux_margin,
    ablation_observability,
    ablation_reorder,
    render_rows,
)
from repro.experiments.figure2 import Figure2Run, run_figure2
from repro.experiments.report_writer import (
    render_experiments_md,
    write_experiments_md,
)
from repro.experiments.results import PAPER_TABLE1, Table1Row, paper_row
from repro.experiments.table1 import (
    DEFAULT_CIRCUITS,
    Table1Run,
    default_table1_circuits,
    run_table1,
)
from repro.experiments.textio import table1_to_csv, table1_to_markdown

__all__ = [
    "Table1Row",
    "PAPER_TABLE1",
    "paper_row",
    "Table1Run",
    "run_table1",
    "DEFAULT_CIRCUITS",
    "default_table1_circuits",
    "Figure2Run",
    "run_figure2",
    "AblationRow",
    "ablation_observability",
    "ablation_mux_margin",
    "ablation_reorder",
    "ablation_ivc_budget",
    "render_rows",
    "table1_to_csv",
    "table1_to_markdown",
    "render_experiments_md",
    "write_experiments_md",
]
