"""Ablation experiments A1-A4 over the design choices DESIGN.md calls out.

* **A1** — leakage-observability directive on/off in the blocking search;
* **A2** — MUX acceptance margin sweep (coverage vs power trade-off);
* **A3** — contribution of commutative-gate input reordering;
* **A4** — random IVC fill budget sweep (ref [14]'s "far less than the
  total possible vectors" claim).

Each function runs the full flow under modified configurations and
returns simple row dicts; the benches and the CLI render them.

A1-A3 are grids of independent flow runs, so they execute through the
campaign runner (:func:`repro.campaign.runner.run_flow_jobs`): pass
``jobs > 1`` to fan the grid out over a persistent worker pool and
``cache_dir`` to memoize configuration points — a re-run of an
unchanged ablation completes without a single flow execution.  Rows
are bit-identical regardless of ``jobs`` or cache state.  A4 replays
the IVC fill in-process against one base flow and stays serial.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence
from typing import Any

from repro.benchgen.loader import load_circuit
from repro.core.config import FlowConfig
from repro.core.flow import ProposedFlow
from repro.leakage.ivc import random_fill_search
from repro.utils.tables import format_table

__all__ = [
    "AblationRow",
    "ablation_observability",
    "ablation_mux_margin",
    "ablation_reorder",
    "ablation_ivc_budget",
    "render_rows",
]


@dataclasses.dataclass(frozen=True)
class AblationRow:
    """One configuration point of an ablation."""

    circuit: str
    variant: str
    dynamic_uw_per_hz: float
    static_uw: float
    detail: str = ""


def render_rows(rows: Sequence[AblationRow], title: str) -> str:
    table = [
        [r.circuit, r.variant, f"{r.dynamic_uw_per_hz:.3e}",
         f"{r.static_uw:.2f}", r.detail]
        for r in rows
    ]
    return title + "\n" + format_table(
        ["circuit", "variant", "dynamic uW/Hz", "static uW", "detail"],
        table)


def _run(name: str, config: FlowConfig) -> tuple:
    result = ProposedFlow(config).run(load_circuit(name, seed=1))
    report = result.reports["proposed"]
    return result, report


#: One ablation grid point: (circuit, variant label, config overrides,
#: detail renderer over the flow artefact).
_Point = tuple[str, str, dict[str, Any],
               Callable[[dict[str, Any]], str]]


def _grid_rows(points: Sequence[_Point], seed: int, jobs: int,
               cache_dir: str | None) -> list[AblationRow]:
    """Run an ablation grid through the campaign runner.

    Serial (``jobs=1``, no cache) and parallel/cached paths share one
    executor and artefact builder, so rows are identical by
    construction.  Ablations historically load circuits with seed 1
    (``circuit_seed=1``) while the flow seed varies.
    """
    from repro.campaign.cache import ResultCache
    from repro.campaign.manifest import CampaignJob
    from repro.campaign.runner import run_flow_jobs

    job_list = [
        CampaignJob(job_id=f"{name}:{variant}", circuit=name, seed=seed,
                    circuit_seed=1, config_kwargs=dict(overrides))
        for name, variant, overrides, _detail in points
    ]
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    artefacts, _records, _wall, _worker = run_flow_jobs(
        job_list, jobs=jobs, cache=cache)
    rows: list[AblationRow] = []
    for (name, variant, _overrides, detail), artefact in zip(points,
                                                             artefacts):
        proposed = artefact["reports"]["proposed"]
        rows.append(AblationRow(
            circuit=name,
            variant=variant,
            dynamic_uw_per_hz=proposed["dynamic_uw_per_hz"],
            static_uw=proposed["static_uw"],
            detail=detail(artefact),
        ))
    return rows


def ablation_observability(circuits: Sequence[str],
                           seed: int = 1, jobs: int = 1,
                           cache_dir: str | None = None
                           ) -> list[AblationRow]:
    """A1: directive on vs off (decisions fall back to structural order)."""
    points: list[_Point] = [
        (name, "directed" if directive else "undirected",
         {"use_observability_directive": directive},
         lambda art: f"{art['detail']['n_blocked']} blocked")
        for name in circuits
        for directive in (True, False)
    ]
    return _grid_rows(points, seed, jobs, cache_dir)


def ablation_mux_margin(circuits: Sequence[str],
                        margins_ps: Sequence[float] = (0.0, 20.0, 50.0,
                                                       100.0),
                        seed: int = 1, jobs: int = 1,
                        cache_dir: str | None = None
                        ) -> list[AblationRow]:
    """A2: demand extra slack before accepting a MUX (coverage sweep)."""
    points: list[_Point] = [
        (name, f"margin={margin:g}ps",
         {"mux_delay_margin_ps": margin},
         lambda art: f"coverage {art['detail']['mux_coverage']:.0%}")
        for name in circuits
        for margin in margins_ps
    ]
    return _grid_rows(points, seed, jobs, cache_dir)


def ablation_reorder(circuits: Sequence[str],
                     seed: int = 1, jobs: int = 1,
                     cache_dir: str | None = None) -> list[AblationRow]:
    """A3: with vs without the input-reordering step."""
    points: list[_Point] = [
        (name, "reorder" if reorder else "no-reorder",
         {"reorder_inputs": reorder},
         lambda art: f"{art['detail']['n_swapped']} gates swapped")
        for name in circuits
        for reorder in (True, False)
    ]
    return _grid_rows(points, seed, jobs, cache_dir)


def ablation_ivc_budget(circuit: str,
                        budgets: Sequence[int] = (1, 4, 16, 64, 256),
                        seed: int = 1) -> list[AblationRow]:
    """A4: leakage of the IVC fill vs number of random trials.

    Runs the flow once, then replays the don't-care fill with varying
    budgets against the same fixed pattern assignment (in-process —
    the replays share the base flow's state, so A4 has no campaign
    path).
    """
    base_config = FlowConfig(seed=seed)
    result, _report = _run(circuit, base_config)
    mapped = result.circuit
    fixed = result.pattern.assignment
    controlled = set(mapped.inputs) | set(result.addmux.muxable)
    free = sorted(controlled - set(fixed))
    sources = sorted(set(mapped.dff_outputs) - set(result.addmux.muxable))

    from repro.cells.library import default_library
    from repro.leakage.estimator import leakage_power_uw

    vdd = default_library().vdd
    rows: list[AblationRow] = []
    for budget in budgets:
        ivc = random_fill_search(
            mapped, fixed=fixed, free_lines=free, n_trials=budget,
            seed=seed, noise_lines=sources,
            n_noise=base_config.ivc_noise_samples)
        rows.append(AblationRow(
            circuit=circuit,
            variant=f"trials={budget}",
            dynamic_uw_per_hz=0.0,
            static_uw=leakage_power_uw(ivc.leakage_na, vdd),
            detail=f"{len(free)} free lines",
        ))
    return rows
