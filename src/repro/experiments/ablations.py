"""Ablation experiments A1-A4 over the design choices DESIGN.md calls out.

* **A1** — leakage-observability directive on/off in the blocking search;
* **A2** — MUX acceptance margin sweep (coverage vs power trade-off);
* **A3** — contribution of commutative-gate input reordering;
* **A4** — random IVC fill budget sweep (ref [14]'s "far less than the
  total possible vectors" claim).

Each function runs the full flow under modified configurations and
returns simple row dicts; the benches and the CLI render them.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.benchgen.loader import load_circuit
from repro.core.config import FlowConfig
from repro.core.flow import ProposedFlow
from repro.leakage.ivc import random_fill_search
from repro.utils.tables import format_table

__all__ = [
    "AblationRow",
    "ablation_observability",
    "ablation_mux_margin",
    "ablation_reorder",
    "ablation_ivc_budget",
    "render_rows",
]


@dataclasses.dataclass(frozen=True)
class AblationRow:
    """One configuration point of an ablation."""

    circuit: str
    variant: str
    dynamic_uw_per_hz: float
    static_uw: float
    detail: str = ""


def render_rows(rows: Sequence[AblationRow], title: str) -> str:
    table = [
        [r.circuit, r.variant, f"{r.dynamic_uw_per_hz:.3e}",
         f"{r.static_uw:.2f}", r.detail]
        for r in rows
    ]
    return title + "\n" + format_table(
        ["circuit", "variant", "dynamic uW/Hz", "static uW", "detail"],
        table)


def _run(name: str, config: FlowConfig) -> tuple:
    result = ProposedFlow(config).run(load_circuit(name, seed=1))
    report = result.reports["proposed"]
    return result, report


def ablation_observability(circuits: Sequence[str],
                           seed: int = 1) -> list[AblationRow]:
    """A1: directive on vs off (decisions fall back to structural order)."""
    rows: list[AblationRow] = []
    for name in circuits:
        for directive in (True, False):
            config = FlowConfig(seed=seed,
                                use_observability_directive=directive)
            result, report = _run(name, config)
            rows.append(AblationRow(
                circuit=name,
                variant="directed" if directive else "undirected",
                dynamic_uw_per_hz=report.dynamic_uw_per_hz,
                static_uw=report.static_uw,
                detail=f"{len(result.pattern.blocked_gates)} blocked",
            ))
    return rows


def ablation_mux_margin(circuits: Sequence[str],
                        margins_ps: Sequence[float] = (0.0, 20.0, 50.0,
                                                       100.0),
                        seed: int = 1) -> list[AblationRow]:
    """A2: demand extra slack before accepting a MUX (coverage sweep)."""
    rows: list[AblationRow] = []
    for name in circuits:
        for margin in margins_ps:
            config = FlowConfig(seed=seed, mux_delay_margin_ps=margin)
            result, report = _run(name, config)
            rows.append(AblationRow(
                circuit=name,
                variant=f"margin={margin:g}ps",
                dynamic_uw_per_hz=report.dynamic_uw_per_hz,
                static_uw=report.static_uw,
                detail=f"coverage {result.addmux.coverage:.0%}",
            ))
    return rows


def ablation_reorder(circuits: Sequence[str],
                     seed: int = 1) -> list[AblationRow]:
    """A3: with vs without the input-reordering step."""
    rows: list[AblationRow] = []
    for name in circuits:
        for reorder in (True, False):
            config = FlowConfig(seed=seed, reorder_inputs=reorder)
            result, report = _run(name, config)
            swaps = len(result.reorder.swapped_gates) if result.reorder \
                else 0
            rows.append(AblationRow(
                circuit=name,
                variant="reorder" if reorder else "no-reorder",
                dynamic_uw_per_hz=report.dynamic_uw_per_hz,
                static_uw=report.static_uw,
                detail=f"{swaps} gates swapped",
            ))
    return rows


def ablation_ivc_budget(circuit: str,
                        budgets: Sequence[int] = (1, 4, 16, 64, 256),
                        seed: int = 1) -> list[AblationRow]:
    """A4: leakage of the IVC fill vs number of random trials.

    Runs the flow once, then replays the don't-care fill with varying
    budgets against the same fixed pattern assignment.
    """
    base_config = FlowConfig(seed=seed)
    result, _report = _run(circuit, base_config)
    mapped = result.circuit
    fixed = result.pattern.assignment
    controlled = set(mapped.inputs) | set(result.addmux.muxable)
    free = sorted(controlled - set(fixed))
    sources = sorted(set(mapped.dff_outputs) - set(result.addmux.muxable))

    from repro.cells.library import default_library
    from repro.leakage.estimator import leakage_power_uw

    vdd = default_library().vdd
    rows: list[AblationRow] = []
    for budget in budgets:
        ivc = random_fill_search(
            mapped, fixed=fixed, free_lines=free, n_trials=budget,
            seed=seed, noise_lines=sources,
            n_noise=base_config.ivc_noise_samples)
        rows.append(AblationRow(
            circuit=circuit,
            variant=f"trials={budget}",
            dynamic_uw_per_hz=0.0,
            static_uw=leakage_power_uw(ivc.leakage_na, vdd),
            detail=f"{len(free)} free lines",
        ))
    return rows
