"""Experiment E2: regenerate the paper's Figure 2.

Figure 2 tabulates the leakage current of a NAND2 gate per input pattern
in 45 nm technology (78 / 73 / 264 / 408 nA).  The harness evaluates the
calibrated analytical model for NAND2 — plus the neighbouring cells the
paper's tables would have contained — and prints model-vs-paper values.
"""

from __future__ import annotations

import dataclasses

from repro.cells.library import CellLibrary, default_library
from repro.netlist.gates import GateType
from repro.spice.constants import PAPER_NAND2_LEAKAGE_NA
from repro.utils.tables import format_table

__all__ = ["Figure2Run", "run_figure2"]


@dataclasses.dataclass
class Figure2Run:
    """Model leakage tables with the paper's NAND2 anchor values."""

    nand2: dict[tuple[int, ...], float]
    paper_nand2: dict[tuple[int, ...], float]
    extra_cells: dict[str, dict[tuple[int, ...], float]]

    def max_relative_error(self) -> float:
        """Worst |model - paper| / paper over the four NAND2 patterns."""
        return max(
            abs(self.nand2[p] - target) / target
            for p, target in self.paper_nand2.items())

    def render(self) -> str:
        rows = []
        for pattern in sorted(self.paper_nand2):
            label = "".join(str(b) for b in pattern)
            model = self.nand2[pattern]
            target = self.paper_nand2[pattern]
            rows.append([f"A,B = {label}", f"{model:.1f}",
                         f"{target:.1f}",
                         f"{(model - target) / target * 100:+.2f}%"])
        parts = ["NAND2 leakage per input pattern (nA), 45 nm / 0.9 V:"]
        parts.append(format_table(
            ["pattern", "model", "paper Fig.2", "error"], rows))
        for cell, table in self.extra_cells.items():
            cell_rows = [
                ["".join(str(b) for b in pattern), f"{leak:.1f}"]
                for pattern, leak in sorted(table.items())
            ]
            parts.append("")
            parts.append(f"{cell} leakage table (nA):")
            parts.append(format_table(["pattern", "model"], cell_rows))
        return "\n".join(parts)


def run_figure2(library: CellLibrary | None = None) -> Figure2Run:
    """Evaluate the calibrated model against Figure 2."""
    library = library or default_library()
    nand2 = dict(library.leakage_table(GateType.NAND, 2))
    extra = {
        "INV": dict(library.leakage_table(GateType.NOT, 1)),
        "NOR2": dict(library.leakage_table(GateType.NOR, 2)),
        "NAND3": dict(library.leakage_table(GateType.NAND, 3)),
    }
    return Figure2Run(
        nand2=nand2,
        paper_nand2=dict(PAPER_NAND2_LEAKAGE_NA),
        extra_cells=extra,
    )
