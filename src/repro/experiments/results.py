"""Result records and paper reference data for the experiment harnesses."""

from __future__ import annotations

import dataclasses

__all__ = ["Table1Row", "PAPER_TABLE1", "paper_row"]


@dataclasses.dataclass(frozen=True)
class Table1Row:
    """One row of Table I (ours or the paper's).

    Dynamic values are uW/Hz (energy per cycle); static values are uW;
    improvements are percentages as printed in the paper.
    """

    circuit: str
    trad_dynamic: float
    trad_static: float
    ic_dynamic: float
    ic_static: float
    prop_dynamic: float
    prop_static: float
    imp_trad_dynamic: float
    imp_trad_static: float
    imp_ic_dynamic: float
    imp_ic_static: float

    @classmethod
    def from_reports(cls, circuit: str, trad, ic, prop) -> "Table1Row":
        """Build a row from three :class:`ScanPowerReport` objects."""
        dyn_t, stat_t = prop.improvement_vs(trad)
        dyn_i, stat_i = prop.improvement_vs(ic)
        return cls(
            circuit=circuit,
            trad_dynamic=trad.dynamic_uw_per_hz,
            trad_static=trad.static_uw,
            ic_dynamic=ic.dynamic_uw_per_hz,
            ic_static=ic.static_uw,
            prop_dynamic=prop.dynamic_uw_per_hz,
            prop_static=prop.static_uw,
            imp_trad_dynamic=dyn_t,
            imp_trad_static=stat_t,
            imp_ic_dynamic=dyn_i,
            imp_ic_static=stat_i,
        )


#: The paper's Table I, transcribed verbatim (DATE 2005).
#:
#: Transcription note: the s1494 row is internally inconsistent in the
#: source text — the raw dynamic columns (3.56E-8 vs 3.52E-8) imply a
#: 1.1% improvement while the printed percentage is 9.52%.  The proposed
#: dynamic value was most likely 3.22E-8 in print (which matches both
#: percentages); we keep the digits as transcribed and treat the printed
#: percentages as authoritative for shape comparisons.
PAPER_TABLE1: dict[str, Table1Row] = {
    row.circuit: row for row in [
        Table1Row("s344", 5.88e-8, 27.99, 5.72e-8, 27.50, 3.24e-8, 23.89,
                  44.82, 14.65, 43.23, 13.12),
        Table1Row("s382", 6.43e-8, 27.58, 5.51e-8, 26.69, 2.38e-8, 24.42,
                  62.90, 11.46, 56.73, 8.50),
        Table1Row("s444", 8.00e-8, 33.72, 6.92e-8, 33.30, 2.44e-8, 27.99,
                  69.44, 17.00, 64.67, 15.95),
        Table1Row("s510", 8.46e-8, 47.93, 8.18e-8, 47.50, 8.22e-8, 45.96,
                  2.92, 4.11, -0.41, 3.24),
        Table1Row("s641", 5.69e-8, 59.07, 1.77e-8, 56.97, 1.78e-8, 48.97,
                  68.80, 17.10, -0.5, 14.05),
        Table1Row("s713", 6.30e-8, 66.15, 1.85e-8, 64.90, 1.82e-8, 52.10,
                  71.06, 21.23, 1.25, 19.71),
        Table1Row("s1196", 3.10e-8, 115.54, 3.06e-8, 117.75, 2.52e-8, 95.78,
                  18.61, 17.09, 17.50, 18.65),
        Table1Row("s1238", 3.19e-8, 121.56, 3.39e-8, 124.75, 2.59e-8, 96.38,
                  18.64, 20.70, 23.63, 22.74),
        Table1Row("s1423", 2.24e-7, 128.22, 1.93e-7, 130.23, 5.43e-8, 117.0,
                  75.77, 9.02, 71.83, 10.43),
        Table1Row("s1494", 3.56e-7, 177.52, 3.48e-7, 179.86, 3.52e-7, 164.87,
                  9.52, 7.12, 7.45, 8.33),
        Table1Row("s5378", 8.90e-7, 327.52, 1.29e-8, 332.02, 1.17e-8, 315.0,
                  98.68, 3.82, 9.50, 5.12),
        Table1Row("s9234", 1.50e-6, 819.98, 1.68e-8, 854.52, 1.57e-8, 772.36,
                  98.95, 5.80, 6.96, 9.61),
    ]
}


def paper_row(circuit: str) -> Table1Row | None:
    """The paper's row for ``circuit``, if it is in Table I."""
    return PAPER_TABLE1.get(circuit)
