"""Experiment E1: regenerate the paper's Table I.

For each circuit: run the full proposed flow (which also evaluates the
traditional-scan and input-control [8] baselines on the same ATPG test
set) and collect one :class:`~repro.experiments.results.Table1Row`.
Rendering places our measured values next to the paper's reference
numbers so shape comparisons (who wins, by roughly what factor) are
immediate.

The default circuit list covers the small and medium Table I rows; set
``REPRO_FULL_TABLE1=1`` (or pass ``circuits=...``) to run all twelve.
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections.abc import Sequence

from repro.benchgen.iscas89 import TABLE1_CIRCUITS
from repro.benchgen.loader import circuit_provenance, load_circuit
from repro.core.config import FlowConfig
from repro.core.flow import FlowResult, ProposedFlow
from repro.experiments.results import PAPER_TABLE1, Table1Row
from repro.utils.tables import format_table

__all__ = ["Table1Run", "run_table1", "DEFAULT_CIRCUITS",
           "default_table1_circuits"]

#: Small/medium rows: tractable in seconds each on a laptop.
DEFAULT_CIRCUITS: tuple[str, ...] = (
    "s344", "s382", "s444", "s510", "s641", "s713",
    "s1196", "s1238", "s1423", "s1494",
)

ENV_FULL = "REPRO_FULL_TABLE1"


def default_table1_circuits() -> tuple[str, ...]:
    """Default circuit list, honouring ``REPRO_FULL_TABLE1``."""
    if os.environ.get(ENV_FULL, "") not in ("", "0"):
        return TABLE1_CIRCUITS
    return DEFAULT_CIRCUITS


@dataclasses.dataclass
class Table1Run:
    """The regenerated table plus per-circuit flow artefacts."""

    rows: list[Table1Row]
    flow_results: dict[str, FlowResult]
    provenance: dict[str, str]
    runtime_s: dict[str, float]
    #: Engine record ("sim"/"fault" backend names) — results are
    #: bit-identical across engines, this documents what produced the run.
    backends: dict[str, str] = dataclasses.field(default_factory=dict)

    def render(self, include_paper: bool = True) -> str:
        """Fixed-width text rendering (mirrors Table I's columns)."""
        headers = [
            "Circuit", "Trad dyn", "Trad stat", "IC dyn", "IC stat",
            "Prop dyn", "Prop stat", "vsTrad dyn%", "vsTrad stat%",
            "vsIC dyn%", "vsIC stat%",
        ]
        lines = []
        table_rows = []
        for row in self.rows:
            table_rows.append([
                row.circuit,
                f"{row.trad_dynamic:.2e}", f"{row.trad_static:.2f}",
                f"{row.ic_dynamic:.2e}", f"{row.ic_static:.2f}",
                f"{row.prop_dynamic:.2e}", f"{row.prop_static:.2f}",
                f"{row.imp_trad_dynamic:.2f}", f"{row.imp_trad_static:.2f}",
                f"{row.imp_ic_dynamic:.2f}", f"{row.imp_ic_static:.2f}",
            ])
            paper = PAPER_TABLE1.get(row.circuit)
            if include_paper and paper is not None:
                table_rows.append([
                    "  (paper)",
                    f"{paper.trad_dynamic:.2e}",
                    f"{paper.trad_static:.2f}",
                    f"{paper.ic_dynamic:.2e}", f"{paper.ic_static:.2f}",
                    f"{paper.prop_dynamic:.2e}",
                    f"{paper.prop_static:.2f}",
                    f"{paper.imp_trad_dynamic:.2f}",
                    f"{paper.imp_trad_static:.2f}",
                    f"{paper.imp_ic_dynamic:.2f}",
                    f"{paper.imp_ic_static:.2f}",
                ])
        lines.append(format_table(headers, table_rows))
        lines.append("")
        lines.append("Provenance: " + ", ".join(
            f"{name}={src}" for name, src in self.provenance.items()))
        if self.backends:
            lines.append("Backends: " + ", ".join(
                f"{kind}={name}" for kind, name in self.backends.items()))
        return "\n".join(lines)


def run_table1(circuits: Sequence[str] | None = None,
               config: FlowConfig | None = None,
               verbose: bool = False) -> Table1Run:
    """Run experiment E1 over ``circuits`` (default: the tractable set)."""
    circuits = list(circuits) if circuits is not None \
        else list(default_table1_circuits())
    config = config or FlowConfig(seed=1)
    flow = ProposedFlow(config)
    from repro.simulation.backends import (
        default_backend_name,
        default_fault_backend_name,
    )
    fault_spec = config.fault_simulation_backend()
    backends = {
        "sim": config.backend or default_backend_name(),
        "fault": getattr(fault_spec, "name", None) or fault_spec or
        default_fault_backend_name(),
    }

    rows: list[Table1Row] = []
    results: dict[str, FlowResult] = {}
    provenance: dict[str, str] = {}
    runtime: dict[str, float] = {}
    for name in circuits:
        start = time.perf_counter()
        circuit = load_circuit(name, seed=config.seed or 1)
        result = flow.run(circuit)
        elapsed = time.perf_counter() - start
        rows.append(Table1Row.from_reports(
            name,
            result.reports["traditional"],
            result.reports["input_control"],
            result.reports["proposed"],
        ))
        results[name] = result
        provenance[name] = circuit_provenance(name)
        runtime[name] = elapsed
        if verbose:
            print(result.summary())
            print(f"  [{elapsed:.1f}s]", flush=True)
    return Table1Run(rows=rows, flow_results=results,
                     provenance=provenance, runtime_s=runtime,
                     backends=backends)
