"""Experiment E1: regenerate the paper's Table I.

For each circuit: run the full proposed flow (which also evaluates the
traditional-scan and input-control [8] baselines on the same ATPG test
set) and collect one :class:`~repro.experiments.results.Table1Row`.
Rendering places our measured values next to the paper's reference
numbers so shape comparisons (who wins, by roughly what factor) are
immediate.

The default circuit list covers the small and medium Table I rows; set
``REPRO_FULL_TABLE1=1`` (or pass ``circuits=...``) to run all twelve.

Circuits are independent, so the experiment is a natural campaign:
``jobs > 1`` fans them out over a persistent worker pool and
``cache_dir`` memoizes per-circuit artefacts content-addressed on
(netlist, config, code) — both via :mod:`repro.campaign`.  Rows and
renders are bit-identical across ``jobs`` counts and cache states; the
campaign path only skips the heavyweight per-circuit
:class:`~repro.core.flow.FlowResult` objects (``flow_results`` stays
empty there, as they cannot ride through JSON).
"""

from __future__ import annotations

import dataclasses
import os
from collections.abc import Sequence

from repro.benchgen.iscas89 import TABLE1_CIRCUITS
from repro.benchgen.loader import circuit_provenance, load_circuit
from repro.core.config import FlowConfig
from repro.core.flow import FlowResult, ProposedFlow
from repro.experiments.results import PAPER_TABLE1, Table1Row
from repro.obs.trace import span
from repro.utils.tables import format_table

__all__ = ["Table1Run", "run_table1", "DEFAULT_CIRCUITS",
           "default_table1_circuits"]

#: Small/medium rows: tractable in seconds each on a laptop.
DEFAULT_CIRCUITS: tuple[str, ...] = (
    "s344", "s382", "s444", "s510", "s641", "s713",
    "s1196", "s1238", "s1423", "s1494",
)

ENV_FULL = "REPRO_FULL_TABLE1"


def default_table1_circuits() -> tuple[str, ...]:
    """Default circuit list, honouring ``REPRO_FULL_TABLE1``."""
    if os.environ.get(ENV_FULL, "") not in ("", "0"):
        return TABLE1_CIRCUITS
    return DEFAULT_CIRCUITS


@dataclasses.dataclass
class Table1Run:
    """The regenerated table plus per-circuit flow artefacts."""

    rows: list[Table1Row]
    flow_results: dict[str, FlowResult]
    provenance: dict[str, str]
    #: Per-circuit compute seconds (monotonic clock).  For cache hits
    #: this is the *historical* compute time of the run that produced
    #: the artefact.
    runtime_s: dict[str, float]
    #: Engine record ("sim"/"fault" backend names) — results are
    #: bit-identical across engines, this documents what produced the run.
    backends: dict[str, str] = dataclasses.field(default_factory=dict)
    #: Monotonic wall-clock seconds of the whole experiment.
    wall_s: float = 0.0
    #: Aggregate compute seconds of the flows that actually executed
    #: (cache hits excluded) — ``worker_s / wall_s`` is the honest
    #: parallel speedup of the run.
    worker_s: float = 0.0
    #: How many circuits came from the campaign cache.
    cache_hits: int = 0

    def render(self, include_paper: bool = True) -> str:
        """Fixed-width text rendering (mirrors Table I's columns)."""
        headers = [
            "Circuit", "Trad dyn", "Trad stat", "IC dyn", "IC stat",
            "Prop dyn", "Prop stat", "vsTrad dyn%", "vsTrad stat%",
            "vsIC dyn%", "vsIC stat%",
        ]
        lines = []
        table_rows = []
        for row in self.rows:
            table_rows.append([
                row.circuit,
                f"{row.trad_dynamic:.2e}", f"{row.trad_static:.2f}",
                f"{row.ic_dynamic:.2e}", f"{row.ic_static:.2f}",
                f"{row.prop_dynamic:.2e}", f"{row.prop_static:.2f}",
                f"{row.imp_trad_dynamic:.2f}", f"{row.imp_trad_static:.2f}",
                f"{row.imp_ic_dynamic:.2f}", f"{row.imp_ic_static:.2f}",
            ])
            paper = PAPER_TABLE1.get(row.circuit)
            if include_paper and paper is not None:
                table_rows.append([
                    "  (paper)",
                    f"{paper.trad_dynamic:.2e}",
                    f"{paper.trad_static:.2f}",
                    f"{paper.ic_dynamic:.2e}", f"{paper.ic_static:.2f}",
                    f"{paper.prop_dynamic:.2e}",
                    f"{paper.prop_static:.2f}",
                    f"{paper.imp_trad_dynamic:.2f}",
                    f"{paper.imp_trad_static:.2f}",
                    f"{paper.imp_ic_dynamic:.2f}",
                    f"{paper.imp_ic_static:.2f}",
                ])
        lines.append(format_table(headers, table_rows))
        lines.append("")
        lines.append("Provenance: " + ", ".join(
            f"{name}={src}" for name, src in self.provenance.items()))
        if self.backends:
            lines.append("Backends: " + ", ".join(
                f"{kind}={name}" for kind, name in self.backends.items()))
        return "\n".join(lines)

    def timing_summary(self) -> str:
        """One line of wall vs aggregate-worker time (honest speedup)."""
        speedup = self.worker_s / self.wall_s if self.wall_s > 0 else 0.0
        return (f"wall {self.wall_s:.2f}s, worker {self.worker_s:.2f}s "
                f"({speedup:.2f}x), {self.cache_hits} cached")


def _record_backends(config: FlowConfig) -> dict[str, str]:
    from repro.simulation.backends import (
        default_backend_name,
        default_fault_backend_name,
    )
    fault_spec = config.fault_simulation_backend()
    return {
        "sim": config.backend or default_backend_name(),
        "fault": getattr(fault_spec, "name", None) or fault_spec or
        default_fault_backend_name(),
    }


def run_table1(circuits: Sequence[str] | None = None,
               config: FlowConfig | None = None,
               verbose: bool = False,
               jobs: int | None = None,
               cache_dir: str | None = None) -> Table1Run:
    """Run experiment E1 over ``circuits`` (default: the tractable set).

    ``jobs`` > 1 runs the circuits as a parallel campaign on a
    persistent worker pool; ``cache_dir`` additionally memoizes the
    per-circuit artefacts (see the module docstring).  Rows and renders
    are bit-identical across all combinations.
    """
    circuits = list(circuits) if circuits is not None \
        else list(default_table1_circuits())
    config = config or FlowConfig(seed=1)
    backends = _record_backends(config)

    if (jobs or 1) > 1 or cache_dir is not None:
        return _run_table1_campaign(circuits, config, verbose,
                                    jobs or 1, cache_dir, backends)

    flow = ProposedFlow(config)
    rows: list[Table1Row] = []
    results: dict[str, FlowResult] = {}
    provenance: dict[str, str] = {}
    runtime: dict[str, float] = {}
    # Timing is the spans' own measurement (one time.monotonic() pair
    # each): the reported runtime_s/wall_s and a --trace capture of
    # the same run come from the same clock reads.
    with span("table1.run", circuits=len(circuits)) as wall_span:
        for name in circuits:
            with span("table1.circuit", circuit=name) as sp:
                circuit = load_circuit(name, seed=config.seed or 1)
                result = flow.run(circuit)
            elapsed = sp.dur_s
            rows.append(Table1Row.from_reports(
                name,
                result.reports["traditional"],
                result.reports["input_control"],
                result.reports["proposed"],
            ))
            results[name] = result
            provenance[name] = circuit_provenance(name)
            runtime[name] = elapsed
            if verbose:
                print(result.summary())
                print(f"  [{elapsed:.1f}s]", flush=True)
    return Table1Run(rows=rows, flow_results=results,
                     provenance=provenance, runtime_s=runtime,
                     backends=backends, wall_s=wall_span.dur_s,
                     worker_s=sum(runtime.values()))


def _run_table1_campaign(circuits: list[str], config: FlowConfig,
                         verbose: bool, jobs: int,
                         cache_dir: str | None,
                         backends: dict[str, str]) -> Table1Run:
    """Campaign path: same rows, computed on the campaign runner."""
    from repro.campaign.cache import ResultCache
    from repro.campaign.manifest import CampaignJob, config_kwargs
    from repro.campaign.runner import row_from_artefact, run_flow_jobs

    base = config_kwargs(config)
    job_list = [
        CampaignJob(job_id=name, circuit=name, seed=config.seed,
                    circuit_seed=config.seed or 1, config_kwargs=base)
        for name in circuits
    ]
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    artefacts, records, wall_s, worker_s = run_flow_jobs(
        job_list, jobs=jobs, cache=cache, verbose=verbose)
    return Table1Run(
        rows=[row_from_artefact(a) for a in artefacts],
        flow_results={},
        provenance={a["circuit"]: a["provenance"] for a in artefacts},
        runtime_s={a["circuit"]: a["elapsed_s"] for a in artefacts},
        backends=backends,
        wall_s=wall_s,
        worker_s=worker_s,
        cache_hits=sum(1 for r in records if r.source == "cache"),
    )
