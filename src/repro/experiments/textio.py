"""Serialisation of experiment outputs (CSV / markdown)."""

from __future__ import annotations

import csv
import dataclasses
import io
from collections.abc import Sequence

from repro.experiments.results import Table1Row
from repro.utils.tables import format_markdown_table

__all__ = ["table1_to_csv", "table1_to_markdown"]

_FIELDS = [f.name for f in dataclasses.fields(Table1Row)]


def table1_to_csv(rows: Sequence[Table1Row]) -> str:
    """CSV text of a regenerated Table I (header + one line per circuit)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_FIELDS)
    for row in rows:
        writer.writerow([getattr(row, name) for name in _FIELDS])
    return buffer.getvalue()


def table1_to_markdown(rows: Sequence[Table1Row]) -> str:
    """GitHub-flavoured markdown rendering of a regenerated Table I."""
    headers = ["Circuit", "Trad dyn (uW/Hz)", "Trad stat (uW)",
               "IC dyn", "IC stat", "Prop dyn", "Prop stat",
               "vs trad dyn %", "vs trad stat %",
               "vs IC dyn %", "vs IC stat %"]
    body = [
        [row.circuit, f"{row.trad_dynamic:.2e}", f"{row.trad_static:.2f}",
         f"{row.ic_dynamic:.2e}", f"{row.ic_static:.2f}",
         f"{row.prop_dynamic:.2e}", f"{row.prop_static:.2f}",
         f"{row.imp_trad_dynamic:.2f}", f"{row.imp_trad_static:.2f}",
         f"{row.imp_ic_dynamic:.2f}", f"{row.imp_ic_static:.2f}"]
        for row in rows
    ]
    return format_markdown_table(headers, body)
