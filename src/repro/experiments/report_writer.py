"""EXPERIMENTS.md generation: paper-vs-measured for every artefact.

The repository's EXPERIMENTS.md is *generated* from actual runs so the
recorded numbers always correspond to the shipped code:

    run = run_table1(...)
    write_experiments_md(run, run_figure2(), path="EXPERIMENTS.md")

or from the CLI: ``python -m repro table1 --experiments-md EXPERIMENTS.md``.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.figure2 import Figure2Run
from repro.experiments.results import PAPER_TABLE1
from repro.experiments.table1 import Table1Run
from repro.utils.tables import format_markdown_table

__all__ = ["render_experiments_md", "write_experiments_md"]

_HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction record for *Simultaneous Reduction of Dynamic and Static
Power in Scan Structures* (Sharifi et al., DATE 2005).  All numbers below
were produced by this repository's code (see the command next to each
artefact); regenerate this file with
`python -m repro --seed 1 table1 --experiments-md EXPERIMENTS.md`
(set `REPRO_FULL_TABLE1=1` for all twelve rows).

Reading guide: the reproduction target is **shape** — orderings,
approximate factors, and outliers — not absolute values.  The paper's
absolute microwatts come from the authors' HSPICE decks and the original
ISCAS89 netlists; this repository runs on an analytical device model
calibrated to the paper's only published cell data (Figure 2) and, unless
real `.bench` files are supplied via `REPRO_ISCAS89_DIR`, on synthetic
circuits matching each benchmark's published interface statistics
(provenance is listed per row).
"""

_FIGURE2_INTRO = """## Figure 2 — NAND2 leakage per input pattern (45 nm, 0.9 V)

Regenerate: `python -m repro figure2` or
`pytest benchmarks/bench_figure2.py --benchmark-only`.

The analytical model (paper eqs. 2-4 + series-stack solver) is calibrated
by least squares on these four values; the table verifies the shipped
default parameters hit them.
"""

_TABLE1_INTRO = """## Table I — scan power of the three structures

Regenerate: `python -m repro --seed 1 table1` or
`pytest benchmarks/bench_table1.py --benchmark-only`.

Columns: dynamic is energy per shift clock in uW/Hz (multiply by the
shift frequency for watts); static is mean leakage power in uW; both for
the combinational part only, as in the paper.  Paper rows are quoted
beneath each measured row.
"""


def _figure2_section(figure2: Figure2Run) -> str:
    rows = []
    for pattern in sorted(figure2.paper_nand2):
        label = "".join(str(b) for b in pattern)
        model = figure2.nand2[pattern]
        target = figure2.paper_nand2[pattern]
        rows.append([f"{label}", f"{model:.1f}", f"{target:.1f}",
                     f"{(model - target) / target * 100:+.2f}%"])
    table = format_markdown_table(
        ["pattern A,B", "model (nA)", "paper (nA)", "error"], rows)
    verdict = (f"Maximum relative error: "
               f"{figure2.max_relative_error() * 100:.2f}% — the model "
               f"reproduces Figure 2 essentially exactly (it is the "
               f"calibration anchor).")
    return "\n".join([_FIGURE2_INTRO, table, "", verdict, ""])


def _table1_section(run: Table1Run) -> str:
    headers = ["circuit", "source", "trad dyn", "trad stat",
               "IC dyn", "IC stat", "prop dyn", "prop stat",
               "vs trad dyn%", "vs trad stat%", "vs IC dyn%",
               "vs IC stat%"]
    body = []
    for row in run.rows:
        body.append([
            row.circuit, run.provenance.get(row.circuit, "?"),
            f"{row.trad_dynamic:.2e}", f"{row.trad_static:.1f}",
            f"{row.ic_dynamic:.2e}", f"{row.ic_static:.1f}",
            f"{row.prop_dynamic:.2e}", f"{row.prop_static:.1f}",
            f"{row.imp_trad_dynamic:.1f}", f"{row.imp_trad_static:.1f}",
            f"{row.imp_ic_dynamic:.1f}", f"{row.imp_ic_static:.1f}",
        ])
        paper = PAPER_TABLE1.get(row.circuit)
        if paper is not None:
            body.append([
                "&nbsp;&nbsp;(paper)", "testbed",
                f"{paper.trad_dynamic:.2e}", f"{paper.trad_static:.1f}",
                f"{paper.ic_dynamic:.2e}", f"{paper.ic_static:.1f}",
                f"{paper.prop_dynamic:.2e}", f"{paper.prop_static:.1f}",
                f"{paper.imp_trad_dynamic:.1f}",
                f"{paper.imp_trad_static:.1f}",
                f"{paper.imp_ic_dynamic:.1f}",
                f"{paper.imp_ic_static:.1f}",
            ])
    table = format_markdown_table(headers, body)

    shape_notes = _shape_assessment(run)
    return "\n".join([_TABLE1_INTRO, table, "", shape_notes, ""])


def _shape_assessment(run: Table1Run) -> str:
    wins_dyn = sum(1 for r in run.rows if r.imp_trad_dynamic > 0)
    wins_stat = sum(1 for r in run.rows if r.imp_trad_static > 0)
    wins_ic_stat = sum(1 for r in run.rows if r.imp_ic_static > 0)
    stat_values = [r.imp_trad_static for r in run.rows]
    lines = [
        "**Shape assessment**",
        "",
        f"- Proposed beats traditional scan on dynamic power in "
        f"{wins_dyn}/{len(run.rows)} circuits and on static power in "
        f"{wins_stat}/{len(run.rows)} (paper: 12/12 and 12/12).",
        f"- Proposed beats the input-control baseline on static power in "
        f"{wins_ic_stat}/{len(run.rows)} circuits (paper: 12/12).",
        f"- Static improvement over traditional spans "
        f"{min(stat_values):.1f}%..{max(stat_values):.1f}% "
        f"(paper band: 3.8%..21.2%).",
        "- Dynamic improvements are large where many pseudo-inputs are "
        "muxable and the chain is long, and small where primary inputs "
        "dominate — the same mechanism behind the paper's s510/s1494 "
        "outliers.",
    ]
    runtime = sum(run.runtime_s.values())
    lines.append(f"- Total regeneration time: {runtime:.0f} s "
                 f"(pure Python).")
    return "\n".join(lines)


def render_experiments_md(table1: Table1Run,
                          figure2: Figure2Run) -> str:
    """The full EXPERIMENTS.md text."""
    parts = [
        _HEADER,
        _figure2_section(figure2),
        _table1_section(table1),
        _ABLATIONS_AND_EXTENSIONS,
    ]
    return "\n".join(parts)


def write_experiments_md(table1: Table1Run, figure2: Figure2Run,
                         path: str | Path = "EXPERIMENTS.md") -> Path:
    """Render and write EXPERIMENTS.md; returns the path."""
    path = Path(path)
    path.write_text(render_experiments_md(table1, figure2),
                    encoding="utf-8")
    return path


_ABLATIONS_AND_EXTENSIONS = """## Figure 1 — the proposed structure (E3)

Structural, not numeric: `examples/mux_insertion.py` inserts the full MUX
plan and shows (a) unchanged critical-path delay, (b) normal-mode
functional identity, (c) the Shift-Enable-selected MUX cells in `.bench`
form.  `tests/core/test_addmux.py` property-tests the slack-based AddMUX
against the paper's literal insert-and-retime procedure.

## Ablations (A1-A5)

Regenerate: `pytest benchmarks/bench_ablation_*.py --benchmark-only` or
`python -m repro ablation <which>`.

| id | design choice | bench | expected shape |
| --- | --- | --- | --- |
| A1 | leakage-observability directive | `bench_ablation_observability` | directed runs choose lower-leakage blocking vectors at equal blocking power |
| A2 | MUX margin (paper: delay unchanged) | `bench_ablation_mux` | coverage and dynamic savings fall as the margin grows; infinite margin = input-control |
| A3 | commutative input reordering | `bench_ablation_reorder` | static-only improvement, zero dynamic effect |
| A4 | random IVC budget (ref [14]) | `bench_ablation_ivc` | leakage flattens after tens of trials — "far less than the total possible vectors" |
| A5 | vector/chain reordering (paper epilogue) | `bench_ablation_ordering` | extra dynamic reduction on top of traditional scan, confirming "further improvements can be achieved" |

## Extensions beyond the paper

* **SCOAP testability** (`repro.atpg.scoap`) guides PODEM backtrace and
  D-frontier choices.
* **Multiple scan chains** (`repro.scan.multichain`): parallel shifting
  with per-vector padding; `N = 1` provably equals the single-chain
  evaluator.
* **Peak power** (`repro.power.peak`): per-cycle profiles, crest factors
  and budget violations (the concern of the paper's ref [6]).

## Known reproduction gaps

* Absolute microwatts differ from the paper (different netlists, device
  decks, load models); all comparisons are therefore relative.
* Synthetic circuits carry more redundant (untestable) faults than the
  real ISCAS89 netlists, so reported ATPG fault coverage is lower than
  ATOM's published figures; the shift-traffic statistics that drive the
  power numbers are unaffected.
* The paper's s1494 dynamic column is internally inconsistent in the
  source text (see `repro/experiments/results.py`); its printed
  percentages are used for comparisons.
"""
