"""Generic topological ordering with cycle diagnostics.

The netlist package uses this on the gate dependency graph; it is kept
generic (works on any node/edge description) so the timing and simulation
packages can reuse it for derived graphs.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable, Hashable

from repro.errors import CombinationalLoopError

__all__ = ["topological_order"]


def topological_order(
    nodes: Iterable[Hashable],
    predecessors: Callable[[Hashable], Iterable[Hashable]],
) -> list:
    """Return ``nodes`` in an order where predecessors come first.

    Kahn's algorithm.  ``predecessors(n)`` must yield only nodes that are in
    ``nodes`` (external sources should be filtered by the caller).

    Raises
    ------
    CombinationalLoopError
        If the graph restricted to ``nodes`` contains a cycle; the exception
        carries the nodes left unsorted (a superset of the cycle).
    """
    node_list = list(nodes)
    node_set = set(node_list)
    indegree: dict = {n: 0 for n in node_list}
    successors: dict = {n: [] for n in node_list}
    for node in node_list:
        for pred in predecessors(node):
            if pred in node_set:
                indegree[node] += 1
                successors[pred].append(node)

    ready = deque(n for n in node_list if indegree[n] == 0)
    order: list = []
    while ready:
        node = ready.popleft()
        order.append(node)
        for succ in successors[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)

    if len(order) != len(node_list):
        stuck = [str(n) for n in node_list if indegree[n] > 0]
        raise CombinationalLoopError(stuck)
    return order
