"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

import re

__all__ = ["check_name", "check_positive", "check_probability"]

# ISCAS89 line names in the wild: alphanumerics plus a few punctuation
# characters ("G17", "II151", "P_0", "n_23<3>", "a.b").  We accept anything
# printable that contains no whitespace, parentheses, comma or '=' (which
# would break the .bench grammar).
_NAME_FORBIDDEN = re.compile(r"[\s(),=#]")


def check_name(name: str, what: str = "line name") -> str:
    """Validate a netlist identifier and return it.

    Raises ``ValueError`` for empty names or names that could not survive a
    ``.bench`` round trip.
    """
    if not isinstance(name, str):
        raise ValueError(f"{what} must be a string, got {type(name).__name__}")
    if not name:
        raise ValueError(f"{what} must be non-empty")
    match = _NAME_FORBIDDEN.search(name)
    if match:
        raise ValueError(
            f"{what} {name!r} contains forbidden character {match.group()!r}")
    return name


def check_positive(value: float, what: str) -> float:
    """Require ``value > 0`` and return it."""
    if not value > 0:
        raise ValueError(f"{what} must be > 0, got {value!r}")
    return value


def check_probability(value: float, what: str) -> float:
    """Require ``0 <= value <= 1`` and return it."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{what} must be in [0, 1], got {value!r}")
    return value
