"""Tiny timing helpers shared by the bench suite and perf smoke tests."""

from __future__ import annotations

import time
from collections.abc import Callable
from typing import Any

__all__ = ["best_of"]


def best_of(n_runs: int, fn: Callable[[], Any]) -> float:
    """Wall-clock seconds of the fastest of ``n_runs`` calls to ``fn``.

    Minimum (not mean) because scheduling noise on shared machines only
    ever adds time; the fastest observation is the best estimate of the
    true cost.
    """
    times = []
    for _ in range(n_runs):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)
