"""Tiny timing helpers shared by the bench suite and perf smoke tests."""

from __future__ import annotations

import time
from collections.abc import Callable
from typing import Any

__all__ = ["best_of", "Stopwatch"]


class Stopwatch:
    """Monotonic wall-clock stopwatch (``time.monotonic`` based).

    The experiment harnesses use it for honest wall-vs-worker time
    accounting: the monotonic clock never jumps backwards under NTP
    adjustments, so recorded durations are always non-negative and
    comparable across a long campaign.  Started on construction.
    """

    def __init__(self) -> None:
        self._start = time.monotonic()

    def restart(self) -> None:
        """Reset the start mark to now."""
        self._start = time.monotonic()

    @property
    def elapsed_s(self) -> float:
        """Seconds since construction / the last :meth:`restart`."""
        return time.monotonic() - self._start

    def split_s(self) -> float:
        """Elapsed seconds, then restart (per-item loop timing)."""
        now = time.monotonic()
        elapsed = now - self._start
        self._start = now
        return elapsed


def best_of(n_runs: int, fn: Callable[[], Any]) -> float:
    """Wall-clock seconds of the fastest of ``n_runs`` calls to ``fn``.

    Minimum (not mean) because scheduling noise on shared machines only
    ever adds time; the fastest observation is the best estimate of the
    true cost.
    """
    times = []
    for _ in range(n_runs):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)
