"""Small shared utilities: seeded RNG handling, topological orders, tables.

Nothing in here knows about circuits; the submodules are dependency-free
helpers used across the library.
"""

from repro.utils.rng import derive_seed, make_rng
from repro.utils.tables import format_table, format_markdown_table
from repro.utils.timing import best_of
from repro.utils.topo import topological_order
from repro.utils.validation import (
    check_name,
    check_positive,
    check_probability,
)

__all__ = [
    "best_of",
    "derive_seed",
    "make_rng",
    "format_table",
    "format_markdown_table",
    "topological_order",
    "check_name",
    "check_positive",
    "check_probability",
]
