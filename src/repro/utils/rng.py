"""Deterministic random-number helpers.

Every stochastic component of the library (synthetic benchmark generation,
Monte-Carlo observability, random don't-care fill, random ATPG phase) takes
an explicit seed.  These helpers centralise two recurring needs:

* turning an arbitrary ``seed`` argument (``None`` | int | Generator) into a
  :class:`numpy.random.Generator`;
* deriving stable per-purpose child seeds from a master seed and a string
  label, so that, e.g., the generator used for circuit ``s344`` never shifts
  when an unrelated component consumes more random numbers.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "derive_seed"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, or an
        existing ``Generator`` which is returned unchanged (shared state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(master: int, label: str) -> int:
    """Derive a stable 63-bit child seed from ``master`` and ``label``.

    The derivation hashes both inputs, so child streams are statistically
    independent and insensitive to call order.

    >>> derive_seed(1, "a") == derive_seed(1, "a")
    True
    >>> derive_seed(1, "a") != derive_seed(1, "b")
    True
    """
    digest = hashlib.sha256(f"{master}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF
