"""Stable content hashing for cross-process cache keys.

Python's built-in ``hash`` is salted per process, so nothing here uses
it.  These helpers give process-independent hex digests:

* :func:`canonical_json` / :func:`stable_digest` — canonical-JSON
  hashing of plain data (dict key order never matters);
* :func:`package_fingerprint` — a digest over every ``.py`` source file
  of an installed package, so content-addressed caches are invalidated
  when the code that produced an artefact changes.
"""

from __future__ import annotations

import functools
import hashlib
import importlib
import json
from pathlib import Path
from typing import Any

__all__ = ["canonical_json", "stable_digest", "package_fingerprint"]


def _jsonify(obj: Any) -> Any:
    """Fallback encoder: enums (anything with ``.value``) by value."""
    value = getattr(obj, "value", None)
    if value is not None:
        return value
    raise TypeError(
        f"object of type {type(obj).__name__} is not hashable as "
        f"canonical JSON")


def canonical_json(payload: Any) -> str:
    """Deterministic JSON text for ``payload``.

    Keys are sorted and separators fixed, so two structurally equal
    payloads always serialize to the same bytes regardless of insertion
    order or platform.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=_jsonify)


def stable_digest(payload: Any) -> str:
    """SHA-256 hex digest of ``payload``'s canonical JSON."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


@functools.lru_cache(maxsize=None)
def package_fingerprint(package: str = "repro") -> str:
    """Digest of all ``.py`` sources under ``package``.

    File contents and package-relative paths both feed the digest, so
    edits, renames, additions and deletions all change it; timestamps
    do not.  Memoized per process (source trees do not change under a
    running campaign).
    """
    module = importlib.import_module(package)
    if module.__file__ is None:  # pragma: no cover - namespace package
        raise ValueError(f"package {package!r} has no source directory")
    root = Path(module.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()
