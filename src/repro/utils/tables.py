"""Plain-text and markdown table rendering for experiment reports.

The experiment harnesses print tables whose rows mirror the paper's
Table I; these helpers keep the formatting logic in one place.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_markdown_table", "format_cell"]


def format_cell(value: object, float_format: str = "{:.4g}") -> str:
    """Render one table cell: floats via ``float_format``, rest via str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def _stringify(headers: Sequence[str], rows: Sequence[Sequence[object]],
               float_format: str) -> tuple[list[str], list[list[str]]]:
    header_cells = [str(h) for h in headers]
    row_cells = [[format_cell(v, float_format) for v in row] for row in rows]
    for row in row_cells:
        if len(row) != len(header_cells):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(header_cells)}")
    return header_cells, row_cells


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 float_format: str = "{:.4g}") -> str:
    """Render an aligned fixed-width text table.

    >>> print(format_table(["a", "b"], [[1, 2.5], ["x", 3]]))
    a  b
    -  ---
    1  2.5
    x  3
    """
    header_cells, row_cells = _stringify(headers, rows, float_format)
    widths = [len(h) for h in header_cells]
    for row in row_cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = [render_row(header_cells)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in row_cells)
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str],
                          rows: Sequence[Sequence[object]],
                          float_format: str = "{:.4g}") -> str:
    """Render a GitHub-flavoured markdown table."""
    header_cells, row_cells = _stringify(headers, rows, float_format)
    lines = ["| " + " | ".join(header_cells) + " |"]
    lines.append("|" + "|".join(" --- " for _ in header_cells) + "|")
    for row in row_cells:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
