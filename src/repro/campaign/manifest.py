"""Campaign specs, job expansion and the resumable run manifest.

A :class:`CampaignSpec` is the declarative description of a sweep:
circuits x seeds x config overrides on top of a base
:class:`~repro.core.config.FlowConfig`.  :meth:`CampaignSpec.expand`
turns it into a deterministic, ordered list of :class:`CampaignJob`\\ s
(circuit-major, then seed, then override index) — result ordering is a
function of the spec alone, never of worker scheduling.

The :class:`Manifest` is the audit log of one campaign: one
:class:`JobRecord` per job with status, provenance (freshly run vs
cache hit), wall time and cache key, written atomically after every
job completion.  Resumability itself lives in the content-addressed
cache — a re-run recomputes each job's key and skips everything the
cache already holds — so the manifest can be deleted freely without
losing progress; it exists to make a campaign's history inspectable
(and uploadable as a CI artifact).
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Any

import repro.chaos as chaos
from repro.chaos import retry_call
from repro.core.config import FlowConfig
from repro.errors import ConfigError
from repro.utils.hashing import stable_digest

__all__ = ["CampaignSpec", "CampaignJob", "JobRecord", "Manifest",
           "load_spec"]


@dataclasses.dataclass(frozen=True)
class CampaignJob:
    """One expanded (circuit, seed, config) point of a campaign."""

    job_id: str
    circuit: str
    seed: int
    #: Seed for the synthetic-netlist loader; mirrors the experiment
    #: harnesses (``run_table1`` loads with the flow seed, ablations
    #: always load with seed 1).
    circuit_seed: int
    config_kwargs: dict[str, Any] = dataclasses.field(
        default_factory=dict)

    def flow_config(self) -> FlowConfig:
        """The job's :class:`FlowConfig` (seed applied last)."""
        kwargs = dict(self.config_kwargs)
        known = {field.name for field in dataclasses.fields(FlowConfig)}
        unknown = set(kwargs) - known
        if unknown:
            raise ConfigError(
                f"unknown FlowConfig field(s) in campaign config: "
                f"{', '.join(sorted(unknown))}")
        atpg = kwargs.get("atpg")
        if isinstance(atpg, dict):
            from repro.atpg.generate import AtpgConfig
            kwargs["atpg"] = AtpgConfig(**atpg)
        kwargs["seed"] = self.seed
        return FlowConfig(**kwargs)


def config_kwargs(config: FlowConfig) -> dict[str, Any]:
    """``config`` as JSON-serializable ``FlowConfig`` kwargs."""
    payload = dataclasses.asdict(config)
    if payload.get("atpg") is None:
        payload.pop("atpg", None)
    return payload


#: Job kinds a campaign spec may declare: ``flow`` runs the full
#: proposed flow per (circuit, seed, config) point; ``figure2``
#: regenerates the paper's Figure-2 leakage tables (circuit-free — the
#: circuits axis is a label only, defaulting to ``("figure2",)``).
SPEC_KINDS = ("flow", "figure2")


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """Declarative sweep: circuits x seeds x config overrides."""

    circuits: tuple[str, ...]
    seeds: tuple[int, ...] = (1,)
    #: Each override dict patches ``base``; one job per grid point.
    overrides: tuple[dict[str, Any], ...] = ({},)
    #: Base ``FlowConfig`` kwargs shared by every job.
    base: dict[str, Any] = dataclasses.field(default_factory=dict)
    name: str = "campaign"
    #: What each job computes; see :data:`SPEC_KINDS`.
    kind: str = "flow"

    def __post_init__(self) -> None:
        if self.kind not in SPEC_KINDS:
            raise ConfigError(
                f"unknown campaign kind {self.kind!r}; "
                f"available: {', '.join(SPEC_KINDS)}")
        if not self.circuits:
            raise ConfigError("campaign spec needs at least one circuit")
        if self.kind == "figure2":
            # run_figure2() depends on the default library only: a grid
            # would execute the identical computation once per point,
            # and a circuit name would mislabel the job and manifest.
            if len(self.circuits) > 1 or len(self.seeds) > 1 \
                    or len(self.overrides) > 1:
                raise ConfigError(
                    "figure2 campaigns have no circuit/seed/override "
                    "axes (the leakage tables depend only on the cell "
                    "library)")
            if self.circuits != ("figure2",):
                raise ConfigError(
                    "figure2 campaigns take no circuit; omit "
                    "'circuits' (it defaults to [\"figure2\"], a "
                    "label only)")
        if not self.seeds:
            raise ConfigError("campaign spec needs at least one seed")
        if not self.overrides:
            raise ConfigError(
                "campaign spec needs at least one override point "
                "(use {} for the base config)")
        # seeds are an expansion axis, never a config field: a 'seed'
        # buried in base/overrides would be silently overwritten by
        # the job seed and collapse an intended sweep
        if "seed" in self.base or \
                any("seed" in override for override in self.overrides):
            raise ConfigError(
                "put seeds in the campaign spec's 'seeds' axis, not in "
                "'base'/'overrides' (the per-job seed always wins)")
        # duplicate grid points would produce duplicate job ids: the
        # manifest (keyed by job id) would collapse them while the
        # runner executed the same flow twice
        from repro.utils.hashing import canonical_json
        for axis, values in (("circuits", self.circuits),
                             ("seeds", self.seeds),
                             ("overrides",
                              tuple(canonical_json(o)
                                    for o in self.overrides))):
            if len(set(values)) != len(values):
                raise ConfigError(
                    f"campaign spec has duplicate entries on the "
                    f"{axis!r} axis")

    def expand(self) -> list[CampaignJob]:
        """Deterministic job list: circuit-major, then seed, then
        override index."""
        jobs: list[CampaignJob] = []
        multi_cfg = len(self.overrides) > 1
        multi_seed = len(self.seeds) > 1
        for circuit in self.circuits:
            for seed in self.seeds:
                for index, override in enumerate(self.overrides):
                    parts = [circuit]
                    if multi_seed:
                        parts.append(f"seed{seed}")
                    if multi_cfg:
                        parts.append(f"cfg{index}")
                    jobs.append(CampaignJob(
                        job_id="/".join(parts),
                        circuit=circuit,
                        seed=seed,
                        circuit_seed=seed or 1,
                        config_kwargs={**self.base, **override},
                    ))
        return jobs

    def digest(self) -> str:
        """Stable content hash of the spec (manifest ownership check)."""
        return stable_digest(self.to_dict())

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "circuits": list(self.circuits),
            "seeds": list(self.seeds),
            "overrides": [dict(o) for o in self.overrides],
            "base": dict(self.base),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CampaignSpec":
        unknown = set(payload) - {"name", "kind", "circuits", "seeds",
                                  "overrides", "base"}
        if unknown:
            raise ConfigError(
                f"unknown campaign spec field(s): "
                f"{', '.join(sorted(unknown))}")
        kind = payload.get("kind", "flow")
        circuits = payload.get("circuits")
        if circuits is None:
            # figure2 jobs are circuit-free; the axis is just a label.
            if kind == "figure2":
                circuits = ("figure2",)
            else:
                raise ConfigError("campaign spec is missing 'circuits'")
        return cls(
            circuits=tuple(circuits),
            seeds=tuple(payload.get("seeds", (1,))),
            overrides=tuple(dict(o)
                            for o in payload.get("overrides", ({},))),
            base=dict(payload.get("base", {})),
            name=payload.get("name", "campaign"),
            kind=kind,
        )


def load_spec(path: str | Path) -> CampaignSpec:
    """Load a JSON campaign spec file (see README "Campaigns")."""
    path = Path(path)
    try:
        with path.open() as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ConfigError(f"cannot read campaign spec: {exc}") from None
    except ValueError as exc:
        raise ConfigError(
            f"campaign spec {path} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ConfigError(f"campaign spec {path} must be a JSON object")
    return CampaignSpec.from_dict(payload)


# ---------------------------------------------------------------------- #
# manifest
# ---------------------------------------------------------------------- #

#: Job lifecycle states recorded in the manifest.
STATUSES = ("pending", "running", "done", "failed")

#: How a finished job's artefact was obtained.
SOURCES = ("run", "cache")


@dataclasses.dataclass
class JobRecord:
    """Status + provenance of one campaign job."""

    job_id: str
    circuit: str
    seed: int
    config_hash: str
    cache_key: str | None = None
    status: str = "pending"
    source: str | None = None
    #: Compute seconds of the job itself (worker-side monotonic clock,
    #: load included); independent of scheduling position, so slow
    #: jobs are findable from the manifest even in parallel runs.
    wall_s: float = 0.0
    error: str | None = None
    #: Per-phase compute seconds (``repro.obs`` span names -> total
    #: duration) collected while the job executed; ``None`` for cache
    #: hits and records written before the observability layer.
    phases: dict[str, float] | None = None

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobRecord":
        return cls(**payload)


class Manifest:
    """Atomic JSON journal of one campaign run.

    The file is rewritten (temp file + ``os.replace``) after every
    recorded job, so a killed run leaves a consistent manifest listing
    exactly the jobs that finished.
    """

    VERSION = 1

    def __init__(self, path: str | Path, spec_digest: str):
        self.path = Path(path)
        self.spec_digest = spec_digest
        self.records: dict[str, JobRecord] = {}

    @classmethod
    def open(cls, path: str | Path, spec_digest: str) -> "Manifest":
        """Load the manifest at ``path``, keeping prior records only
        when they belong to the same spec (digest match); a different
        or unreadable manifest is replaced, not merged."""
        manifest = cls(path, spec_digest)
        try:
            with manifest.path.open() as handle:
                payload = json.load(handle)
            if (payload.get("version") == cls.VERSION
                    and payload.get("spec_digest") == spec_digest):
                manifest.records = {
                    rec["job_id"]: JobRecord.from_dict(rec)
                    for rec in payload.get("jobs", [])
                }
        except (OSError, ValueError, KeyError, TypeError):
            pass
        return manifest

    def record(self, record: JobRecord, save: bool = True) -> None:
        """Insert/update one job record (and checkpoint to disk)."""
        self.records[record.job_id] = record
        if save:
            self.save()

    def stats(self) -> dict[str, int]:
        """Counts by status plus cache-hit/fresh-run totals."""
        stats = {status: 0 for status in STATUSES}
        stats["cached"] = 0
        stats["executed"] = 0
        for record in self.records.values():
            stats[record.status] = stats.get(record.status, 0) + 1
            if record.status == "done":
                if record.source == "cache":
                    stats["cached"] += 1
                else:
                    stats["executed"] += 1
        return stats

    def save(self) -> None:
        """Atomically rewrite the manifest file (retried on transient
        I/O failure — the manifest checkpoints after every job, so one
        flaky write must not kill a campaign)."""
        payload = {
            "version": self.VERSION,
            "spec_digest": self.spec_digest,
            "jobs": [self.records[job_id].to_dict()
                     for job_id in sorted(self.records)],
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        retry_call(lambda: self._save_once(payload),
                   site="manifest.write")

    def _save_once(self, payload: dict[str, Any]) -> None:
        chaos.point("manifest.write")
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=".tmp-manifest-", suffix=".json")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:  # pragma: no cover - already replaced/gone
                pass
            raise
