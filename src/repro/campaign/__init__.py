"""Campaign orchestration: pools, result cache, resumable sweeps.

The campaign layer sits between the flow (:mod:`repro.core.flow`) and
the experiment harnesses (:mod:`repro.experiments`):

* :mod:`repro.campaign.pool` — a persistent, non-daemonic worker pool,
  pre-warmed once and shared by campaign jobs and the ``sharded``
  fault backend (``ShardedBackend(pool=...)``);
* :mod:`repro.campaign.cache` — a content-addressed on-disk artefact
  cache keyed by (circuit fingerprint, canonical config hash, code
  fingerprint);
* :mod:`repro.campaign.manifest` — campaign specs, deterministic job
  expansion and the per-job status manifest;
* :mod:`repro.campaign.runner` — the executor tying them together with
  deterministic result ordering regardless of worker count.

See README "Campaigns" for the spec format and resume semantics.
"""

from repro.campaign.cache import ResultCache
from repro.campaign.manifest import (
    CampaignJob,
    CampaignSpec,
    JobRecord,
    Manifest,
    load_spec,
)
from repro.campaign.pool import (
    WorkerPool,
    WorkerPoolError,
    active_shared_pool,
    ensure_shared_pool,
    shutdown_shared_pool,
)
from repro.campaign.runner import (
    FIGURE2_ARTEFACT_KIND,
    FLOW_ARTEFACT_KIND,
    CampaignResult,
    figure2_from_artefact,
    run_campaign,
    run_flow_jobs,
)

__all__ = [
    "FIGURE2_ARTEFACT_KIND",
    "FLOW_ARTEFACT_KIND",
    "CampaignJob",
    "CampaignResult",
    "CampaignSpec",
    "figure2_from_artefact",
    "JobRecord",
    "Manifest",
    "ResultCache",
    "WorkerPool",
    "WorkerPoolError",
    "active_shared_pool",
    "ensure_shared_pool",
    "load_spec",
    "run_campaign",
    "run_flow_jobs",
    "shutdown_shared_pool",
]
