"""Campaign orchestration: pools, result cache, resumable sweeps.

The campaign layer sits between the flow (:mod:`repro.core.flow`) and
the experiment harnesses (:mod:`repro.experiments`):

* :mod:`repro.campaign.pool` — a persistent, non-daemonic worker pool,
  pre-warmed once and shared by campaign jobs and the ``sharded``
  fault backend (``ShardedBackend(pool=...)``);
* :mod:`repro.campaign.cache` — a content-addressed on-disk artefact
  cache keyed by (circuit fingerprint, canonical config hash, code
  fingerprint);
* :mod:`repro.campaign.manifest` — campaign specs, deterministic job
  expansion and the per-job status manifest;
* :mod:`repro.campaign.runner` — the executor tying them together with
  deterministic result ordering regardless of worker count;
* :mod:`repro.campaign.queue` — the filesystem-backed multi-host work
  queue (claim-by-rename leases) behind ``repro worker``;
* :mod:`repro.campaign.service` — the ``repro serve`` HTTP artifact
  API answering experiment queries from the cache.

See README "Campaigns" and "Artifact service & distributed workers"
for the spec format, resume semantics and the service endpoints.
"""

from repro.campaign.cache import ResultCache
from repro.campaign.manifest import (
    CampaignJob,
    CampaignSpec,
    JobRecord,
    Manifest,
    load_spec,
)
from repro.campaign.pool import (
    WorkerPool,
    WorkerPoolError,
    active_shared_pool,
    ensure_shared_pool,
    shutdown_shared_pool,
)
from repro.campaign.queue import (
    ClaimedJob,
    QueueDepth,
    WorkerStats,
    WorkQueue,
    run_worker,
)
from repro.campaign.runner import (
    FIGURE2_ARTEFACT_KIND,
    FLOW_ARTEFACT_KIND,
    CampaignResult,
    execute_job,
    figure2_from_artefact,
    job_identity,
    run_campaign,
    run_flow_jobs,
)
from repro.campaign.service import (
    ArtifactService,
    ServiceMetrics,
    ServiceServer,
    run_server,
)

__all__ = [
    "FIGURE2_ARTEFACT_KIND",
    "FLOW_ARTEFACT_KIND",
    "ArtifactService",
    "CampaignJob",
    "CampaignResult",
    "CampaignSpec",
    "ClaimedJob",
    "JobRecord",
    "Manifest",
    "QueueDepth",
    "ResultCache",
    "ServiceMetrics",
    "ServiceServer",
    "WorkQueue",
    "WorkerPool",
    "WorkerPoolError",
    "WorkerStats",
    "active_shared_pool",
    "ensure_shared_pool",
    "execute_job",
    "figure2_from_artefact",
    "job_identity",
    "load_spec",
    "run_campaign",
    "run_flow_jobs",
    "run_server",
    "run_worker",
    "shutdown_shared_pool",
]
