"""Persistent process pool shared by campaigns and the sharded backend.

``multiprocessing.Pool`` is deliberately not used: its workers are
daemonic, which forbids them from having children of their own — but a
campaign job legitimately wants to fan its *fault lists* out over the
``sharded`` backend while the job itself runs on a pool worker.
:class:`WorkerPool` spawns plain non-daemon processes once, keeps them
alive across any number of :meth:`~WorkerPool.map` calls, and preserves
submission order in the returned results regardless of which worker
finished first.

Workers are pre-warmed at :meth:`~WorkerPool.start`: the initializer
imports the simulation substrate so the per-task cost is pure work, not
interpreter warm-up.  On fork platforms the children additionally
inherit every cache the parent had populated at start time
(copy-on-write).

A process-wide *shared* pool can be installed with
:func:`ensure_shared_pool`; consumers that can profit from live workers
but cannot carry a pool through their configuration (notably
:class:`~repro.simulation.backends.ShardedBackend`, whose config
travels as plain JSON) pick it up via :func:`active_shared_pool`.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.util  # noqa: F401  (see _close_live_pools)
import os
import pickle
import queue as queue_mod
import traceback
from collections.abc import Callable, Iterable
from typing import Any

from repro.errors import SimulationError
from repro.obs.trace import flush as _trace_flush
from repro.obs.trace import propagation_context, span, using_context

__all__ = [
    "WorkerPool",
    "WorkerPoolError",
    "default_pool_size",
    "ensure_shared_pool",
    "active_shared_pool",
    "shutdown_shared_pool",
]


class WorkerPoolError(SimulationError):
    """A pool worker failed (task exception or worker death)."""


def default_pool_size() -> int:
    """Worker count default: usable CPUs of this process."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _warm_worker() -> None:
    """Default initializer: pay module import cost once per worker."""
    import repro.simulation.backends  # noqa: F401  (import is the point)


def _worker_main(task_queue, result_queue,
                 initializer: Callable[[], None] | None) -> None:
    """Worker loop: run tasks until the ``None`` sentinel arrives.

    Payloads cross the queues pre-pickled (bytes): ``mp.Queue`` pickles
    asynchronously in a feeder thread and silently *drops* items that
    fail to pickle, which would hang the parent's ``map`` forever.
    Explicit pickling turns an unpicklable task result into an ordinary
    relayed error instead.
    """
    if initializer is not None:
        initializer()
    while True:
        job = task_queue.get()
        if job is None:
            break
        idx, fn, arg, ctx = pickle.loads(job)
        try:
            with using_context(ctx), span("pool.task", task=idx):
                result = fn(arg)
            payload = pickle.dumps((idx, True, result))
        except BaseException as exc:  # noqa: BLE001 - relayed to parent
            payload = pickle.dumps((idx, False,
                                    f"{type(exc).__name__}: {exc}\n"
                                    f"{traceback.format_exc()}"))
        result_queue.put(payload)
    _trace_flush()


#: Every started pool, so the atexit hook can join stray non-daemon
#: workers (which would otherwise block interpreter shutdown).
#: Deliberately *strong* references: a started pool whose last user
#: reference is dropped without close() must stay reachable here —
#: a WeakSet would forget exactly the stray pools this registry
#: exists to clean up, and the interpreter would hang at exit joining
#: their workers.  close() is the only way out of the registry.
_LIVE_POOLS: "set[WorkerPool]" = set()


# Registration order matters: multiprocessing.util registers its own
# atexit hook (which *joins* every live non-daemon child) when the
# util module is first imported.  The explicit import above forces
# that to happen before this registration, so LIFO ordering runs
# _close_live_pools first — our sentinels reach the workers before
# multiprocessing blocks waiting for them.  Registered the other way
# round, a started-but-unclosed pool deadlocks the interpreter at
# exit (workers wait for tasks, parent waits for workers).
@atexit.register
def _close_live_pools() -> None:  # pragma: no cover - interpreter exit
    for pool in list(_LIVE_POOLS):
        pool.close()


class WorkerPool:
    """A persistent, non-daemonic process pool.

    Parameters
    ----------
    processes:
        Worker count (default: :func:`default_pool_size`).
    initializer:
        Callable run once in each worker before any task (default
        warms the simulation substrate imports).
    start_method:
        ``multiprocessing`` start method; ``None`` uses the platform
        default (fork on Linux — workers then inherit the parent's
        warmed caches copy-on-write).

    Usable as a context manager; :meth:`start` is lazy, so constructing
    a pool is free until the first :meth:`map`.
    """

    def __init__(self, processes: int | None = None,
                 initializer: Callable[[], None] | None = _warm_worker,
                 start_method: str | None = None):
        if processes is not None and processes < 1:
            raise WorkerPoolError("pool needs at least one process")
        self.processes = processes or default_pool_size()
        self._initializer = initializer
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: list = []
        self._task_queue = None
        self._result_queue = None
        self._owner_pid: int | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def started(self) -> bool:
        """True once workers have been spawned (and not yet closed)."""
        return bool(self._workers)

    @property
    def owned(self) -> bool:
        """True when this process started the pool.

        A forked child (e.g. a pool worker running a campaign job)
        inherits the parent's pool object; using it there would push
        tasks into the parent's queues and corrupt the parent's
        in-flight map.  Everything that dispatches work checks this.
        """
        return self.started and self._owner_pid == os.getpid()

    def start(self) -> "WorkerPool":
        """Spawn and pre-warm the workers (idempotent)."""
        if self.started:
            if not self.owned:
                raise WorkerPoolError(
                    "pool was started by another process (inherited "
                    "across fork); create a fresh WorkerPool here")
            return self
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        for i in range(self.processes):
            worker = self._ctx.Process(
                target=_worker_main,
                args=(self._task_queue, self._result_queue,
                      self._initializer),
                name=f"repro-pool-{i}",
                daemon=False)
            worker.start()
            self._workers.append(worker)
        self._owner_pid = os.getpid()
        _LIVE_POOLS.add(self)
        return self

    def close(self) -> None:
        """Stop the workers and release the queues (idempotent).

        In a process that merely inherited a started pool across fork,
        only the local references are dropped — the owner's workers and
        queues are left untouched.
        """
        if not self.started:
            return
        if not self.owned:
            self._workers = []
            self._task_queue = None
            self._result_queue = None
            self._owner_pid = None
            _LIVE_POOLS.discard(self)
            return
        for _ in self._workers:
            self._task_queue.put(None)
        for worker in self._workers:
            worker.join(timeout=10.0)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
                worker.join(timeout=2.0)
        for q in (self._task_queue, self._result_queue):
            q.close()
            q.join_thread()
        self._workers = []
        self._task_queue = None
        self._result_queue = None
        self._owner_pid = None
        _LIVE_POOLS.discard(self)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "started" if self.started else "idle"
        return f"<WorkerPool processes={self.processes} {state}>"

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any],
            on_result: Callable[[int, Any], None] | None = None
            ) -> list[Any]:
        """Run ``fn`` over ``items`` on the workers; ordered results.

        Results are returned in submission order regardless of worker
        scheduling.  ``on_result(index, result)`` fires as each result
        arrives (out of order) — campaign runners use it to checkpoint
        caches and manifests incrementally, so an interrupted run
        resumes from every job that already finished.

        All submitted tasks are drained before an error is raised —
        whether a task failed remotely or ``on_result`` itself raised —
        so a failed map leaves the pool clean and reusable (no stale
        results to poison the next map).  The first failed task's
        remote traceback is carried in the :class:`WorkerPoolError`; a
        callback exception is re-raised as-is after the drain.
        """
        self.start()
        items = list(items)
        if not items:
            return []
        with span("pool.map", tasks=len(items),
                  processes=self.processes):
            # captured inside the span so worker tasks parent under it
            ctx = propagation_context()
            for idx, item in enumerate(items):
                # pre-pickled: raises synchronously on an unpicklable
                # task instead of hanging (see _worker_main)
                self._task_queue.put(pickle.dumps((idx, fn, item, ctx)))
            results: list[Any] = [None] * len(items)
            errors: list[tuple[int, str]] = []
            callback_error: BaseException | None = None
            received = 0
            while received < len(items):
                try:
                    idx, ok, payload = pickle.loads(
                        self._result_queue.get(timeout=1.0))
                except queue_mod.Empty:
                    dead = [w for w in self._workers if not w.is_alive()]
                    if dead:
                        names = ", ".join(
                            f"{w.name} (exitcode {w.exitcode})"
                            for w in dead)
                        self.close()
                        raise WorkerPoolError(
                            f"worker died mid-task: {names}") from None
                    continue
                received += 1
                if ok:
                    results[idx] = payload
                    if on_result is not None and callback_error is None:
                        try:
                            on_result(idx, payload)
                        except BaseException as exc:  # noqa: BLE001
                            callback_error = exc  # keep draining first
                else:
                    errors.append((idx, payload))
            if callback_error is not None:
                raise callback_error
            if errors:
                errors.sort()
                idx, remote = errors[0]
                raise WorkerPoolError(
                    f"{len(errors)}/{len(items)} pool task(s) failed; "
                    f"first (task {idx}):\n{remote}")
        return results


# ---------------------------------------------------------------------- #
# process-wide shared pool
# ---------------------------------------------------------------------- #

_SHARED: WorkerPool | None = None


def ensure_shared_pool(processes: int | None = None) -> WorkerPool:
    """Start (or reuse) the process-wide shared pool.

    An existing shared pool is reused as-is even if ``processes``
    differs — resizing would silently drop warmed workers; call
    :func:`shutdown_shared_pool` first to change the size.
    """
    global _SHARED
    if _SHARED is None:
        _SHARED = WorkerPool(processes=processes)
    return _SHARED.start()


def active_shared_pool() -> WorkerPool | None:
    """The shared pool if one is started *by this process*, else
    ``None``.

    Never starts a pool: consumers (e.g. the sharded fault backend)
    only *opportunistically* reuse live workers someone else owns.
    The ownership check matters under fork: a pool worker inherits the
    parent's started pool object, and dispatching into it from the
    child would corrupt the parent's in-flight map — inherited pools
    are therefore invisible here (the child falls back to its own
    per-call workers).
    """
    if _SHARED is not None and _SHARED.owned:
        return _SHARED
    return None


def shutdown_shared_pool() -> None:
    """Close and forget the shared pool (no-op when absent)."""
    global _SHARED
    if _SHARED is not None:
        _SHARED.close()
        _SHARED = None
