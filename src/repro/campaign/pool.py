"""Persistent process pool shared by campaigns and the sharded backend.

``multiprocessing.Pool`` is deliberately not used: its workers are
daemonic, which forbids them from having children of their own — but a
campaign job legitimately wants to fan its *fault lists* out over the
``sharded`` backend while the job itself runs on a pool worker.
:class:`WorkerPool` spawns plain non-daemon processes once, keeps them
alive across any number of :meth:`~WorkerPool.map` calls, and preserves
submission order in the returned results regardless of which worker
finished first.

Workers are pre-warmed at :meth:`~WorkerPool.start`: the initializer
imports the simulation substrate so the per-task cost is pure work, not
interpreter warm-up.  On fork platforms the children additionally
inherit every cache the parent had populated at start time
(copy-on-write).

A process-wide *shared* pool can be installed with
:func:`ensure_shared_pool`; consumers that can profit from live workers
but cannot carry a pool through their configuration (notably
:class:`~repro.simulation.backends.ShardedBackend`, whose config
travels as plain JSON) pick it up via :func:`active_shared_pool`.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.util  # noqa: F401  (see _close_live_pools)
import os
import pickle
import traceback
from collections.abc import Callable, Iterable
from typing import Any

import repro.chaos as chaos
from repro.errors import SimulationError
from repro.obs.metrics import get_registry
from repro.obs.trace import flush as _trace_flush
from repro.obs.trace import (
    propagation_context,
    record_event,
    span,
    using_context,
)

__all__ = [
    "WorkerPool",
    "WorkerPoolError",
    "default_pool_size",
    "ensure_shared_pool",
    "active_shared_pool",
    "shutdown_shared_pool",
]


class WorkerPoolError(SimulationError):
    """A pool worker failed (task exception or worker death)."""


def default_pool_size() -> int:
    """Worker count default: usable CPUs of this process."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _warm_worker() -> None:
    """Default initializer: pay module import cost once per worker."""
    import repro.simulation.backends  # noqa: F401  (import is the point)


def _respawn_counter():
    """Get-or-create survives registry resets between tests."""
    return get_registry().counter(
        "repro_pool_respawns_total",
        "Dead pool workers replaced by the map supervisor.")


def _worker_main(task_queue, result_queue,
                 initializer: Callable[[], None] | None) -> None:
    """Worker loop: run tasks until the ``None`` sentinel arrives.

    Payloads cross the queues pre-pickled (bytes): ``mp.Queue`` pickles
    asynchronously in a feeder thread and silently *drops* items that
    fail to pickle, which would hang the parent's ``map`` forever.
    Explicit pickling turns an unpicklable task result into an ordinary
    relayed error instead.

    Each dequeued task is **announced** — ``("start", epoch, idx,
    worker)`` — before it runs, so the parent knows which task died
    with a worker and can re-dispatch exactly that one; completions
    are ``("done", epoch, idx, ok, payload, worker)``.  The epoch tags
    results with the map that submitted them, so a task re-executed
    after a death can never poison a later map.

    ``result_queue`` is a ``SimpleQueue`` deliberately: its ``put``
    writes synchronously in the calling thread, so an announcement
    that returned is *guaranteed delivered* even if the worker dies an
    instant later (``mp.Queue``'s feeder thread would lose it to a
    hard ``os._exit``, degrading every crash to the slow bulk
    re-dispatch fallback).
    """
    if initializer is not None:
        initializer()
    # Spawn-started children re-resolve $REPRO_CHAOS themselves (fork
    # children inherit the parent's installed policy copy-on-write).
    chaos.sync_from_session()
    name = multiprocessing.current_process().name
    # Decorrelate this worker's injection streams from its siblings
    # (and from any state a fork inherited) while staying a pure
    # function of (policy seed, worker name) — without this, every
    # respawned fork would replay the exact draw that killed its
    # predecessor and crash-loop the pool deterministically.
    chaos.rescope(name)
    while True:
        job = task_queue.get()
        if job is None:
            break
        epoch, idx, fn, arg, ctx = pickle.loads(job)
        result_queue.put(pickle.dumps(("start", epoch, idx, name)))
        try:
            # Injected after the announcement: a chaos-killed task is
            # always precisely recoverable by the map supervisor.
            chaos.point("pool.task.kill")
            chaos.point("pool.task.hang")
            chaos.point("pool.task.slow")
            with using_context(ctx), span("pool.task", task=idx):
                result = fn(arg)
            payload = pickle.dumps(
                ("done", epoch, idx, True, result, name))
        except BaseException as exc:  # noqa: BLE001 - relayed to parent
            payload = pickle.dumps(
                ("done", epoch, idx, False,
                 f"{type(exc).__name__}: {exc}\n"
                 f"{traceback.format_exc()}", name))
        result_queue.put(payload)
    _trace_flush()


#: Every started pool, so the atexit hook can join stray non-daemon
#: workers (which would otherwise block interpreter shutdown).
#: Deliberately *strong* references: a started pool whose last user
#: reference is dropped without close() must stay reachable here —
#: a WeakSet would forget exactly the stray pools this registry
#: exists to clean up, and the interpreter would hang at exit joining
#: their workers.  close() is the only way out of the registry.
_LIVE_POOLS: "set[WorkerPool]" = set()


# Registration order matters: multiprocessing.util registers its own
# atexit hook (which *joins* every live non-daemon child) when the
# util module is first imported.  The explicit import above forces
# that to happen before this registration, so LIFO ordering runs
# _close_live_pools first — our sentinels reach the workers before
# multiprocessing blocks waiting for them.  Registered the other way
# round, a started-but-unclosed pool deadlocks the interpreter at
# exit (workers wait for tasks, parent waits for workers).
@atexit.register
def _close_live_pools() -> None:  # pragma: no cover - interpreter exit
    for pool in list(_LIVE_POOLS):
        pool.close()


class WorkerPool:
    """A persistent, non-daemonic process pool.

    Parameters
    ----------
    processes:
        Worker count (default: :func:`default_pool_size`).
    initializer:
        Callable run once in each worker before any task (default
        warms the simulation substrate imports).
    start_method:
        ``multiprocessing`` start method; ``None`` uses the platform
        default (fork on Linux — workers then inherit the parent's
        warmed caches copy-on-write).
    max_restarts:
        Pool-lifetime budget of supervised worker **respawns**: a
        worker found dead mid-:meth:`map` is replaced and its
        in-flight task re-dispatched, up to this many times (default
        ``4 * processes``).  Beyond the budget the pool closes and
        raises — a crash-looping task must not burn workers forever.

    Usable as a context manager; :meth:`start` is lazy, so constructing
    a pool is free until the first :meth:`map`.
    """

    #: Result-queue poll interval: how long a quiet map waits before
    #: checking its workers for deaths.
    _POLL_S = 0.2

    #: Result-queue poll timeouts with no progress before the map
    #: supervisor re-dispatches every unfinished task (covers the
    #: narrow window where a worker dies after dequeuing a task but
    #: before announcing it; duplicates are deduplicated by index).
    _STALL_ROUNDS = 10

    def __init__(self, processes: int | None = None,
                 initializer: Callable[[], None] | None = _warm_worker,
                 start_method: str | None = None,
                 max_restarts: int | None = None):
        if processes is not None and processes < 1:
            raise WorkerPoolError("pool needs at least one process")
        if max_restarts is not None and max_restarts < 0:
            raise WorkerPoolError("max_restarts must be >= 0")
        self.processes = processes or default_pool_size()
        self.max_restarts = (max_restarts if max_restarts is not None
                             else 4 * self.processes)
        self._initializer = initializer
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: list = []
        self._task_queue = None
        self._result_queue = None
        self._owner_pid: int | None = None
        self._spawned = 0   # worker name counter (unique across respawns)
        self._restarts = 0  # respawns performed (pool lifetime)
        self._epoch = 0     # map generation tag

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def started(self) -> bool:
        """True once workers have been spawned (and not yet closed)."""
        return bool(self._workers)

    @property
    def owned(self) -> bool:
        """True when this process started the pool.

        A forked child (e.g. a pool worker running a campaign job)
        inherits the parent's pool object; using it there would push
        tasks into the parent's queues and corrupt the parent's
        in-flight map.  Everything that dispatches work checks this.
        """
        return self.started and self._owner_pid == os.getpid()

    def start(self) -> "WorkerPool":
        """Spawn and pre-warm the workers (idempotent)."""
        if self.started:
            if not self.owned:
                raise WorkerPoolError(
                    "pool was started by another process (inherited "
                    "across fork); create a fresh WorkerPool here")
            return self
        self._task_queue = self._ctx.Queue()
        # SimpleQueue: synchronous put (see _worker_main on why).
        self._result_queue = self._ctx.SimpleQueue()
        for _ in range(self.processes):
            self._spawn_worker()
        self._owner_pid = os.getpid()
        _LIVE_POOLS.add(self)
        return self

    def _spawn_worker(self):
        """Start one worker on the shared queues (unique name)."""
        worker = self._ctx.Process(
            target=_worker_main,
            args=(self._task_queue, self._result_queue,
                  self._initializer),
            name=f"repro-pool-{self._spawned}",
            daemon=False)
        self._spawned += 1
        worker.start()
        self._workers.append(worker)
        return worker

    def close(self) -> None:
        """Stop the workers and release the queues (idempotent).

        In a process that merely inherited a started pool across fork,
        only the local references are dropped — the owner's workers and
        queues are left untouched.
        """
        if not self.started:
            return
        if not self.owned:
            self._workers = []
            self._task_queue = None
            self._result_queue = None
            self._owner_pid = None
            _LIVE_POOLS.discard(self)
            return
        for _ in self._workers:
            self._task_queue.put(None)
        for worker in self._workers:
            worker.join(timeout=10.0)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
                worker.join(timeout=2.0)
        self._task_queue.close()
        self._task_queue.join_thread()
        self._result_queue.close()  # SimpleQueue: no feeder to join
        self._workers = []
        self._task_queue = None
        self._result_queue = None
        self._owner_pid = None
        _LIVE_POOLS.discard(self)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "started" if self.started else "idle"
        return f"<WorkerPool processes={self.processes} {state}>"

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any],
            on_result: Callable[[int, Any], None] | None = None
            ) -> list[Any]:
        """Run ``fn`` over ``items`` on the workers; ordered results.

        Results are returned in submission order regardless of worker
        scheduling.  ``on_result(index, result)`` fires as each result
        arrives (out of order) — campaign runners use it to checkpoint
        caches and manifests incrementally, so an interrupted run
        resumes from every job that already finished.

        All submitted tasks are drained before an error is raised —
        whether a task failed remotely or ``on_result`` itself raised —
        so a failed map leaves the pool clean and reusable (no stale
        results to poison the next map).  The first failed task's
        remote traceback is carried in the :class:`WorkerPoolError`; a
        callback exception is re-raised as-is after the drain.

        Dead workers are **supervised**: a worker that dies mid-map is
        respawned (bounded by ``max_restarts``) and its announced
        in-flight task re-dispatched, so a crashed worker costs one
        task re-execution, not the whole map.  Tasks must therefore be
        idempotent — true of everything the pool runs (content-
        addressed campaign jobs, pure fault-simulation shards).  Only
        an exhausted restart budget closes the pool and raises.
        """
        self.start()
        items = list(items)
        if not items:
            return []
        self._epoch += 1
        epoch = self._epoch
        with span("pool.map", tasks=len(items),
                  processes=self.processes):
            # captured inside the span so worker tasks parent under it
            ctx = propagation_context()
            # pre-pickled: raises synchronously on an unpicklable task
            # instead of hanging (see _worker_main); retained so a
            # dead worker's task can be re-dispatched verbatim
            payloads = [pickle.dumps((epoch, idx, fn, item, ctx))
                        for idx, item in enumerate(items)]
            for payload in payloads:
                self._task_queue.put(payload)
            results: list[Any] = [None] * len(items)
            done = [False] * len(items)
            errors: list[tuple[int, str]] = []
            in_flight: dict[str, int] = {}
            callback_error: BaseException | None = None
            completed = 0
            stalls = 0
            lost_unannounced = False
            while completed < len(items):
                message = self._poll_result(self._POLL_S)
                if message is None:
                    stalls += 1
                    lost_unannounced |= self._reap_dead(
                        payloads, done, in_flight)
                    if lost_unannounced and stalls >= self._STALL_ROUNDS:
                        # A worker died between dequeuing a task and
                        # announcing it: the exact victim is unknowable,
                        # so re-dispatch everything unfinished (the
                        # done[] dedup makes duplicates harmless).
                        for idx, settled in enumerate(done):
                            if not settled:
                                self._task_queue.put(payloads[idx])
                        lost_unannounced = False
                        stalls = 0
                    continue
                stalls = 0
                if message[0] == "start":
                    _kind, msg_epoch, idx, name = message
                    if msg_epoch == epoch:
                        in_flight[name] = idx
                    continue
                _kind, msg_epoch, idx, ok, payload, name = message
                if in_flight.get(name) == idx:
                    del in_flight[name]
                if msg_epoch != epoch or done[idx]:
                    continue  # stale map, or a re-dispatch duplicate
                done[idx] = True
                completed += 1
                if ok:
                    results[idx] = payload
                    if on_result is not None and callback_error is None:
                        try:
                            on_result(idx, payload)
                        except BaseException as exc:  # noqa: BLE001
                            callback_error = exc  # keep draining first
                else:
                    errors.append((idx, payload))
            if callback_error is not None:
                raise callback_error
            if errors:
                errors.sort()
                idx, remote = errors[0]
                raise WorkerPoolError(
                    f"{len(errors)}/{len(items)} pool task(s) failed; "
                    f"first (task {idx}):\n{remote}")
        return results

    def _poll_result(self, timeout_s: float):
        """One result-queue message, or ``None`` after ``timeout_s``.

        ``SimpleQueue`` has no timed ``get``; its reader connection
        does support a timed ``poll``, and this pool's parent is the
        queue's only reader, so poll-then-get cannot race.
        """
        if not self._result_queue._reader.poll(timeout_s):
            return None
        return pickle.loads(self._result_queue.get())

    def _reap_dead(self, payloads: list[bytes], done: list[bool],
                   in_flight: dict[str, int]) -> bool:
        """Respawn dead workers, re-dispatch their announced tasks.

        Returns ``True`` when a worker died holding *no* announced
        task (idle, or inside the dequeue-to-announce window) — the
        map supervisor then falls back to bulk re-dispatch after a
        stall.  Exhausting the restart budget closes the pool and
        raises: supervision is for crashes, not crash loops.
        """
        dead = [w for w in self._workers if not w.is_alive()]
        if not dead:
            return False
        unannounced = False
        for worker in dead:
            if self._restarts >= self.max_restarts:
                names = ", ".join(
                    f"{w.name} (exitcode {w.exitcode})" for w in dead)
                self.close()
                raise WorkerPoolError(
                    f"worker died mid-task: {names} (respawn budget "
                    f"of {self.max_restarts} exhausted)") from None
            self._workers.remove(worker)
            self._restarts += 1
            replacement = self._spawn_worker()
            _respawn_counter().inc()
            record_event("pool.respawn", 0.0, worker=worker.name,
                         exitcode=worker.exitcode,
                         replacement=replacement.name)
            idx = in_flight.pop(worker.name, None)
            if idx is not None and not done[idx]:
                self._task_queue.put(payloads[idx])
            elif idx is None:
                unannounced = True
        return unannounced


# ---------------------------------------------------------------------- #
# process-wide shared pool
# ---------------------------------------------------------------------- #

_SHARED: WorkerPool | None = None


def ensure_shared_pool(processes: int | None = None) -> WorkerPool:
    """Start (or reuse) the process-wide shared pool.

    An existing shared pool is reused as-is even if ``processes``
    differs — resizing would silently drop warmed workers; call
    :func:`shutdown_shared_pool` first to change the size.
    """
    global _SHARED
    if _SHARED is None:
        _SHARED = WorkerPool(processes=processes)
    return _SHARED.start()


def active_shared_pool() -> WorkerPool | None:
    """The shared pool if one is started *by this process*, else
    ``None``.

    Never starts a pool: consumers (e.g. the sharded fault backend)
    only *opportunistically* reuse live workers someone else owns.
    The ownership check matters under fork: a pool worker inherits the
    parent's started pool object, and dispatching into it from the
    child would corrupt the parent's in-flight map — inherited pools
    are therefore invisible here (the child falls back to its own
    per-call workers).
    """
    if _SHARED is not None and _SHARED.owned:
        return _SHARED
    return None


def shutdown_shared_pool() -> None:
    """Close and forget the shared pool (no-op when absent)."""
    global _SHARED
    if _SHARED is not None:
        _SHARED.close()
        _SHARED = None
